"""Extension features: promotion hysteresis, sim CLI, tag scattering."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)
from repro.workloads.tracegen import _scatter_tags

KB = 1024


def tiny(**overrides):
    defaults = dict(
        capacity_bytes=64 * KB,
        block_bytes=64,
        associativity=4,
        n_dgroups=4,
        distance_replacement=DistanceReplacementKind.LRU,
        seed=7,
        name="hyst",
    )
    defaults.update(overrides)
    return NuRAPIDCache(NuRAPIDConfig(**defaults))


def demote_target(cache, target=0x100 * 64):
    """Fill the cache so ``target`` ends up in d-group 1."""
    cache.fill(target)
    for i in range(1, cache.config.frames_per_dgroup + 1):
        cache.fill((0x100 + i) * 64)
    assert cache.dgroup_of(target) == 1
    return target


class TestPromotionHysteresis:
    def test_hysteresis_1_promotes_on_first_hit(self):
        c = tiny(promotion_hysteresis=1)
        target = demote_target(c)
        c.access(target)
        assert c.dgroup_of(target) == 0

    def test_hysteresis_3_waits_for_third_hit(self):
        c = tiny(promotion_hysteresis=3)
        target = demote_target(c)
        c.access(target)
        c.access(target)
        assert c.dgroup_of(target) == 1
        c.access(target)
        assert c.dgroup_of(target) == 0
        c.check_invariants()

    def test_counter_resets_after_promotion(self):
        c = tiny(promotion_hysteresis=2)
        target = demote_target(c)
        c.access(target)
        c.access(target)  # promoted to dg0 here
        assert c.dgroup_of(target) == 0
        assert c.lookup(target).pending_hits == 0

    def test_counter_resets_on_demotion(self):
        c = tiny(promotion_hysteresis=4)
        target = demote_target(c)
        c.access(target)  # pending = 1
        assert c.lookup(target).pending_hits == 1
        # Force another demotion wave; target moves (or its entry is
        # re-pointed) and the counter must clear.
        for i in range(2 * c.config.frames_per_dgroup):
            c.fill((0x9000 + i) * 64)
        assert c.lookup(target).pending_hits in (0, 1)
        c.check_invariants()

    def test_hysteresis_reduces_moves(self):
        import random

        def churn(cache):
            rng = random.Random(5)
            for _ in range(4000):
                a = rng.randrange(0, 4 * 64 * KB) & ~63
                if not cache.access(a).hit:
                    cache.fill(a)
            return cache.stats.get("moves")

        eager = churn(tiny(promotion_hysteresis=1,
                           distance_replacement=DistanceReplacementKind.RANDOM))
        lazy = churn(tiny(promotion_hysteresis=4,
                          distance_replacement=DistanceReplacementKind.RANDOM))
        assert lazy < eager

    def test_invalid_hysteresis(self):
        with pytest.raises(ConfigurationError):
            tiny(promotion_hysteresis=0)


class TestSimCLI:
    def test_single_run(self, capsys):
        from repro.sim.__main__ import main

        assert main(["nurapid", "twolf", "--refs", "30000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "d-group hits" in out

    def test_compare(self, capsys):
        from repro.sim.__main__ import main

        assert main(["compare", "wupwise", "--refs", "30000"]) == 0
        out = capsys.readouterr().out
        assert "vs base" in out

    def test_bad_benchmark_rejected(self):
        from repro.sim.__main__ import main

        with pytest.raises(SystemExit):
            main(["base", "doom3"])


class TestTagScattering:
    def test_injective(self):
        addrs = np.arange(0, 1 << 22, 37, dtype=np.int64) * 128
        scattered = _scatter_tags(addrs)
        assert len(np.unique(scattered)) == len(addrs)

    def test_preserves_set_bits_and_region(self):
        addrs = np.array([0x4000_0000 + i * 128 for i in range(4096)], dtype=np.int64)
        scattered = _scatter_tags(addrs)
        assert bool((scattered & 0xFFFFF == addrs & 0xFFFFF).all())  # bits < 20
        assert bool((scattered >> 28 == addrs >> 28).all())  # region base

    def test_spreads_partial_tags(self):
        """Same-set blocks from a compact region get diverse bits 20-25."""
        addrs = np.array(
            [0x8000_0000 + layer * (1 << 20) for layer in range(16)], dtype=np.int64
        )
        before = {int(a >> 20) & 0x3F for a in addrs}
        after = {int(a >> 20) & 0x3F for a in _scatter_tags(addrs)}
        assert len(after) == 16
        deltas = sorted({(int(b) - int(a)) & 0x3F for a, b in zip(sorted(before), sorted(after))})
        assert len(deltas) > 1  # not a constant shift

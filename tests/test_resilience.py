"""Chaos suite for the supervised execution layer.

Every recovery scenario here asserts the same property the plain
parallel engine is held to: faults in the *harness* (killed workers,
hangs, torn checkpoints, corrupted cache entries) must never change
the *results*.  Recovered runs are compared on exact
``run_result_to_dict`` payloads — and, where telemetry is enabled, on
rendered report bytes — against uninterrupted runs.

Workloads are kept tiny (a few thousand references) so spawning real
worker processes and really SIGKILLing them stays within unit-test
time; chaos is injected through :mod:`repro.resilience.chaos` flag
files, which are deterministic (a flag fires an exact number of
times) and cross every multiprocessing start method.
"""

import json

import pytest

from repro.common.errors import (
    ConfigurationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    CHECKPOINT_FILE_FORMAT,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.integrity import (
    seal_record,
    strip_record,
    verify_record,
    verify_sidecar,
    write_sidecar,
)
from repro.resilience.locks import FileLock, LockTimeout
from repro.resilience.supervisor import (
    SupervisorConfig,
    backoff_s,
    run_cells_supervised,
)
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.parallel import CellTask, run_cells
from repro.sim.sweep import Sweep, SweepAxis
from repro.telemetry import TelemetryConfig, reset_runtime_registry, runtime_counters
from repro.telemetry.report import merge_payloads, render_report
from repro.workloads.tracegen import TraceCache

REFS = 3_000


@pytest.fixture(autouse=True)
def _fresh_runtime_registry():
    reset_runtime_registry()
    yield
    reset_runtime_registry()


def make_tasks(isolate_errors=True, telemetry=None, budget_s=None):
    """Four small deterministic cells (2 configs x 2 benchmarks)."""
    cells = [
        (config, benchmark)
        for config in (nurapid_config(), snuca_config())
        for benchmark in ("twolf", "wupwise")
    ]
    return [
        CellTask(
            index=i,
            config=config,
            benchmark=benchmark,
            n_references=REFS,
            seed=7,
            warmup_fraction=0.3,
            isolate_errors=isolate_errors,
            telemetry=telemetry,
            budget_s=budget_s,
        )
        for i, (config, benchmark) in enumerate(cells)
    ]


def fast_chaos(**kw):
    """A SupervisorConfig tuned for test turnaround, not production."""
    defaults = dict(backoff_base_s=0.01, backoff_cap_s=0.05)
    defaults.update(kw)
    return SupervisorConfig(**defaults)


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    directory = str(tmp_path / "chaos")
    monkeypatch.setenv(chaos.CHAOS_ENV, directory)
    # Real hangs sleep for an hour; tests cap them well past any
    # deadline used here but within the suite's patience.
    monkeypatch.setenv(chaos.HANG_ENV, "60")
    return directory


class TestBackoffDeterminism:
    def test_same_inputs_same_delay(self):
        config = SupervisorConfig()
        task = make_tasks()[0]
        assert backoff_s(config, task, 1) == backoff_s(config, task, 1)

    def test_exponential_growth_and_cap(self):
        config = SupervisorConfig(
            backoff_base_s=0.1, backoff_cap_s=0.4, backoff_jitter=0.0
        )
        task = make_tasks()[0]
        assert backoff_s(config, task, 1) == pytest.approx(0.1)
        assert backoff_s(config, task, 2) == pytest.approx(0.2)
        assert backoff_s(config, task, 3) == pytest.approx(0.4)
        assert backoff_s(config, task, 9) == pytest.approx(0.4)  # capped

    def test_jitter_varies_by_cell_but_stays_bounded(self):
        config = SupervisorConfig(backoff_base_s=0.1, backoff_jitter=0.5)
        tasks = make_tasks()
        delays = {backoff_s(config, task, 1) for task in tasks}
        assert len(delays) > 1  # different cells desynchronize
        assert all(0.1 <= d <= 0.15 + 1e-9 for d in delays)


class TestSupervisedNoFaults:
    def test_bit_identical_to_plain_pool_and_serial(self):
        tasks = make_tasks()
        serial = run_cells(tasks, jobs=1)
        supervised = run_cells_supervised(tasks, jobs=2, config=fast_chaos())
        assert supervised == serial

    def test_callback_fires_per_cell(self):
        seen = []
        run_cells_supervised(
            make_tasks(), jobs=2, config=fast_chaos(), callback=seen.append
        )
        assert sorted(p["index"] for p in seen) == [0, 1, 2, 3]

    def test_jobs1_still_supervised(self):
        # jobs=1 keeps the worker subprocess (deadlines must stay
        # enforceable), and stays bit-identical to in-process serial.
        tasks = make_tasks()
        assert run_cells_supervised(tasks, 1, config=fast_chaos()) == run_cells(
            tasks, 1
        )

    def test_empty_task_list(self):
        assert run_cells_supervised([], jobs=2) == []

    def test_telemetry_report_bytes_identical(self):
        tasks = make_tasks(telemetry=TelemetryConfig())
        serial = run_cells(tasks, jobs=1)
        supervised = run_cells_supervised(tasks, jobs=2, config=fast_chaos())

        def report(payloads):
            return render_report(
                merge_payloads(
                    (f"cell{p['index']}", p["result"]["telemetry"])
                    for p in payloads
                )
            )

        assert report(supervised) == report(serial)
        assert supervised == serial


class TestWorkerKillRecovery:
    def test_killed_worker_cell_is_retried_bit_identically(self, chaos_dir):
        tasks = make_tasks()
        expected = run_cells(tasks, jobs=1)

        chaos.inject_kill(chaos_dir, index=1)
        recovered = run_cells_supervised(tasks, jobs=2, config=fast_chaos())

        assert recovered == expected
        counters = runtime_counters()
        assert counters["supervisor.crashes"] == 1
        assert counters["supervisor.retries"] == 1
        assert counters.get("supervisor.quarantined", 0) == 0

    def test_multiple_cells_killed_once_each(self, chaos_dir):
        tasks = make_tasks()
        expected = run_cells(tasks, jobs=1)
        chaos.inject_kill(chaos_dir, index=0)
        chaos.inject_kill(chaos_dir, index=2)
        recovered = run_cells_supervised(
            tasks, jobs=2, config=fast_chaos(max_pool_breaks=10)
        )
        assert recovered == expected
        assert runtime_counters()["supervisor.crashes"] == 2


class TestHangRecovery:
    def test_hung_worker_is_deadline_killed_and_retried(self, chaos_dir):
        tasks = make_tasks()
        expected = run_cells(tasks, jobs=1)

        chaos.inject_hang(chaos_dir, index=2)
        recovered = run_cells_supervised(
            tasks, jobs=2, config=fast_chaos(cell_timeout_s=3.0)
        )

        assert recovered == expected
        counters = runtime_counters()
        assert counters["supervisor.timeouts"] == 1
        assert counters["supervisor.retries"] == 1

    def test_budget_s_is_the_default_deadline(self, chaos_dir):
        # Without cell_timeout_s, the task's own budget_s becomes a
        # true wall-clock deadline under supervision (the serial path
        # can only honor it between attempts).
        tasks = make_tasks(budget_s=3.0)
        expected = run_cells(tasks, jobs=1)
        chaos.inject_hang(chaos_dir, index=0)
        recovered = run_cells_supervised(tasks, jobs=2, config=fast_chaos())
        assert recovered == expected
        assert runtime_counters()["supervisor.timeouts"] == 1


class TestQuarantine:
    def test_repeat_offender_isolated_becomes_failed_outcome(self, chaos_dir):
        tasks = make_tasks()
        chaos.inject_kill(chaos_dir, index=3, times=2)
        payloads = run_cells_supervised(
            tasks,
            jobs=2,
            config=fast_chaos(max_worker_kills=1, max_pool_breaks=10),
        )
        quarantined = payloads[3]
        assert quarantined["outcome"]["status"] == "failed"
        assert quarantined["outcome"]["error_type"] == "WorkerCrashError"
        assert quarantined["result"] is None
        # The healthy cells still completed normally.
        assert all(p["outcome"]["status"] == "ok" for p in payloads[:3])
        assert runtime_counters()["supervisor.quarantined"] == 1

    def test_repeat_offender_raises_when_not_isolated(self, chaos_dir):
        tasks = make_tasks(isolate_errors=False)
        chaos.inject_kill(chaos_dir, index=0, times=2)
        with pytest.raises(WorkerCrashError):
            run_cells_supervised(
                tasks,
                jobs=2,
                config=fast_chaos(max_worker_kills=1, max_pool_breaks=10),
            )

    def test_hang_quarantine_reports_timeout_error(self, chaos_dir):
        tasks = make_tasks()
        chaos.inject_hang(chaos_dir, index=1, times=2)
        payloads = run_cells_supervised(
            tasks,
            jobs=2,
            config=fast_chaos(
                cell_timeout_s=2.0, max_worker_kills=1, max_pool_breaks=10
            ),
        )
        assert payloads[1]["outcome"]["error_type"] == "WorkerTimeoutError"

    def test_supervision_errors_pickle_cleanly(self):
        # They cross process boundaries, so __reduce__ must round-trip.
        import pickle

        for error in (WorkerTimeoutError(3, 2.5, 2), WorkerCrashError(1, 4)):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)


class TestPoolDegradation:
    def test_repeated_breaks_degrade_to_serial_with_identical_results(
        self, chaos_dir
    ):
        tasks = make_tasks()
        expected = run_cells(tasks, jobs=1)
        # Two crashes hit max_pool_breaks before any quarantine
        # threshold; the drain runs in-process, where chaos probes
        # never fire.
        chaos.inject_kill(chaos_dir, index=0, times=2)
        with pytest.warns(RuntimeWarning, match="degrading"):
            recovered = run_cells_supervised(
                tasks,
                jobs=2,
                config=fast_chaos(max_pool_breaks=2, max_worker_kills=10),
            )
        assert recovered == expected
        counters = runtime_counters()
        assert counters["supervisor.degraded"] == 1
        assert counters["supervisor.crashes"] == 2


class TestSupervisedSweep:
    def make_sweep(self, **kw):
        defaults = dict(
            axes=[SweepAxis("n_dgroups", (2, 4))],
            build=lambda n_dgroups: nurapid_config(n_dgroups=n_dgroups),
            benchmarks=["twolf"],
            n_references=REFS,
        )
        defaults.update(kw)
        return Sweep(**defaults)

    def point_dicts(self, points):
        from repro.sim.results import run_result_to_dict

        return [
            {
                "coords": {k: str(v) for k, v in p.coordinates.items()},
                "outcomes": {b: o.to_dict() for b, o in p.outcomes.items()},
                "runs": {b: run_result_to_dict(r) for b, r in p.runs.items()},
            }
            for p in points
        ]

    def test_supervised_sweep_bit_identical_to_serial(self, tmp_path):
        serial = self.make_sweep().run(resume=False)
        supervised = self.make_sweep(
            supervisor=fast_chaos(),
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
        ).run(resume=False)
        assert self.point_dicts(supervised) == self.point_dicts(serial)

    def test_supervised_sweep_recovers_from_worker_kill(
        self, tmp_path, chaos_dir
    ):
        serial = self.make_sweep().run(resume=False)
        chaos.inject_kill(chaos_dir, index=0)
        recovered = self.make_sweep(
            supervisor=fast_chaos(),
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
            checkpoint_path=str(tmp_path / "ckpt.json"),
        ).run(resume=False)
        assert self.point_dicts(recovered) == self.point_dicts(serial)
        assert runtime_counters()["supervisor.crashes"] == 1
        # The checkpoint the recovered run left behind is a clean v2
        # file that a later run resumes from without re-running.
        payload = json.load(open(tmp_path / "ckpt.json"))
        assert payload["format"] == CHECKPOINT_FILE_FORMAT

    def test_keyboard_interrupt_flushes_checkpoint_serial(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "ckpt.json")
        sweep = self.make_sweep(checkpoint_path=path, checkpoint_every=100)
        calls = {"n": 0}
        import repro.sim.sweep as sweep_mod

        original = sweep_mod.run_benchmark

        def interrupt_after_one(*args, **kwargs):
            if calls["n"] >= 1:
                raise KeyboardInterrupt
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(sweep_mod, "run_benchmark", interrupt_after_one)
        with pytest.raises(KeyboardInterrupt):
            sweep.run(resume=False)
        # checkpoint_every=100 means no interval flush happened; the
        # finally-guard is the only reason this file has the cell.
        cells = json.load(open(path))["cells"]
        assert sum(len(benches) for benches in cells.values()) == 1

    def test_keyboard_interrupt_flushes_checkpoint_parallel(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        sweep = self.make_sweep(
            checkpoint_path=path,
            checkpoint_every=100,
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
        )
        recorded = {"n": 0}
        original_record = sweep._record_cell

        def interrupt_after_one(*args, **kwargs):
            original_record(*args, **kwargs)
            recorded["n"] += 1
            # Interrupt while the first cell is dirty but unflushed
            # (checkpoint_every=100): only the finally-guard saves it.
            if recorded["n"] == 2:
                raise KeyboardInterrupt

        sweep._record_cell = interrupt_after_one
        with pytest.raises(KeyboardInterrupt):
            sweep.run(resume=False)
        cells = json.load(open(path))["cells"]
        assert sum(len(benches) for benches in cells.values()) >= 1


class TestCheckpointIntegrity:
    SIGNATURE = "ab" * 32
    OTHER_SIGNATURE = "cd" * 32

    def cells(self, n=3):
        return {
            f"point{i}": {
                "twolf": {
                    "outcome": {
                        "status": "ok",
                        "attempts": 1,
                        "error": None,
                        "error_type": None,
                    },
                    "result": {"value": i},
                }
            }
            for i in range(n)
        }

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        cells = self.cells()
        write_checkpoint(path, self.SIGNATURE, cells)
        assert read_checkpoint(path, self.SIGNATURE) == cells
        payload = json.load(open(path))
        assert payload["format"] == CHECKPOINT_FILE_FORMAT
        assert "checksum" in payload
        assert all(
            "crc" in record
            for benches in payload["cells"].values()
            for record in benches.values()
        )

    def test_missing_file_is_empty(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "nope.json"), self.SIGNATURE) == {}

    def test_v1_file_migrates(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        cells = self.cells()
        with open(path, "w") as handle:
            json.dump({"signature": self.SIGNATURE, "cells": cells}, handle)
        assert read_checkpoint(path, self.SIGNATURE) == cells
        assert runtime_counters()["checkpoint.v1_migrated"] == 1

    def test_foreign_signature_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        write_checkpoint(path, self.OTHER_SIGNATURE, self.cells())
        with pytest.raises(ConfigurationError, match="signature"):
            read_checkpoint(path, self.SIGNATURE)

    def test_garbage_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with open(path, "w") as handle:
            handle.write("not json{")
        with pytest.raises(ConfigurationError, match="unreadable"):
            read_checkpoint(path, self.SIGNATURE)

    def test_truncated_file_salvages_prefix(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        cells = self.cells(n=5)
        write_checkpoint(path, self.SIGNATURE, cells)
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[: int(len(text) * 0.7)])
        with pytest.warns(RuntimeWarning, match="salvaged"):
            salvaged = read_checkpoint(path, self.SIGNATURE)
        # Whatever survived is verbatim original data, and the tail of
        # a 70%-truncated file must have lost at least one record.
        recovered = sum(len(b) for b in salvaged.values())
        assert 0 < recovered < 5
        for point_key, benches in salvaged.items():
            for benchmark, record in benches.items():
                assert record == cells[point_key][benchmark]
        counters = runtime_counters()
        assert counters["checkpoint.salvaged"] == 1
        assert counters["checkpoint.salvaged_cells"] == recovered

    def test_bitflip_in_record_is_rejected_by_seal(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        cells = self.cells(n=3)
        write_checkpoint(path, self.SIGNATURE, cells)
        payload = json.load(open(path))
        # Tamper with one record's result but keep the file valid JSON
        # and its seal untouched: the file checksum catches the edit,
        # the per-record seals decide which cells are still trustworthy.
        payload["cells"]["point1"]["twolf"]["result"]["value"] = 999
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.warns(RuntimeWarning, match="salvaged"):
            salvaged = read_checkpoint(path, self.SIGNATURE)
        assert "twolf" not in salvaged.get("point1", {})
        assert salvaged["point0"] == cells["point0"]
        assert salvaged["point2"] == cells["point2"]
        assert runtime_counters()["checkpoint.record_rejected"] == 1

    def test_merge_on_write_keeps_other_writers_cells(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = {"point0": self.cells()["point0"]}
        second = {"point1": self.cells()["point1"]}
        write_checkpoint(path, self.SIGNATURE, first)
        write_checkpoint(path, self.SIGNATURE, second)
        merged = read_checkpoint(path, self.SIGNATURE)
        assert set(merged) == {"point0", "point1"}


class TestFileLock:
    def test_mutual_exclusion(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path):
            with pytest.raises(LockTimeout):
                with FileLock(path, timeout_s=0.2):
                    pass

    def test_reentrant_per_instance(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with lock:
            with lock:
                pass
        # Fully released: a fresh instance can take it immediately.
        with FileLock(str(tmp_path / "x.lock"), timeout_s=0.2):
            pass


class TestRecordSeals:
    def test_seal_verify_strip(self):
        record = {"outcome": {"status": "ok", "attempts": 1}, "result": {"a": 1}}
        sealed = seal_record(record)
        assert verify_record(sealed)
        assert strip_record(sealed) == record

    def test_tamper_detected(self):
        sealed = seal_record({"outcome": {"status": "ok", "attempts": 1}})
        sealed["outcome"]["attempts"] = 2
        assert not verify_record(sealed)

    def test_legacy_record_without_seal_passes(self):
        assert verify_record({"outcome": {"status": "ok", "attempts": 1}})


class TestTraceCacheIntegrity:
    def test_writes_leave_verified_sidecar(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        path = cache.ensure("twolf", 2_000, seed=3)
        assert verify_sidecar(path) is True

    def test_corrupt_entry_warns_and_counts(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        path = cache.ensure("twolf", 2_000, seed=3)
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff\xff\xff")
        with pytest.warns(RuntimeWarning, match="regenerating"):
            cache.get("twolf", 2_000, seed=3)
        assert runtime_counters()["trace_cache.corrupt_recovered"] == 1
        assert cache.misses == 2
        # The repaired entry carries a fresh, matching sidecar.
        assert verify_sidecar(path) is True

    def test_legacy_entry_without_sidecar_still_loads(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        path = cache.ensure("twolf", 2_000, seed=3)
        import os

        os.remove(path + ".sha256")
        other = TraceCache(str(tmp_path))
        other.get("twolf", 2_000, seed=3)
        assert (other.hits, other.misses) == (1, 0)
        assert "trace_cache.corrupt_recovered" not in runtime_counters()

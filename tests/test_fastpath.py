"""Engine parity: the fast replay kernel against the legacy loop.

The fast engine (:mod:`repro.sim.fastpath`) promises bit-identity, not
statistical agreement: for every shipped configuration it must produce
the same per-reference AccessResult sequence, the same result summary,
the same telemetry report bytes, and the same fault-injection outcomes
as the legacy loop.  These tests hold it to that across the config
matrix and multiple seeds, including checkpointed parallel sweeps.
"""

import random
from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError, UncorrectableDataError
from repro.cpu.core import CoreModel
from repro.faults.models import FaultPlan, HardFaultEvent
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim import fastpath
from repro.sim.config import (
    EXACT_ENGINES,
    SystemConfig,
    base_config,
    dnuca_config,
    nurapid_config,
    resolve_engine,
    sa_nuca_config,
    snuca_config,
)
from repro.sim.driver import _replay, make_system, run_benchmark
from repro.sim.results import run_result_to_dict
from repro.sim.sweep import Sweep, SweepAxis
from repro.telemetry import TelemetryConfig
from repro.telemetry.report import merge_payloads, render_report
from repro.workloads.spec2k import get_benchmark
from repro.workloads.tracegen import TraceGenerator, generate_trace

REFS = 6_000
WARMUP = 0.25


def shipped_configs():
    return [
        base_config(),
        nurapid_config(),
        nurapid_config(
            n_dgroups=2,
            promotion=PromotionPolicy.DEMOTION_ONLY,
            distance_replacement=DistanceReplacementKind.LRU,
        ),
        nurapid_config(promotion_hysteresis=2),
        dnuca_config(),
        sa_nuca_config(),
        snuca_config(),
    ]


_TRACES = {}


def trace_for(benchmark, seed):
    key = (benchmark, seed)
    if key not in _TRACES:
        _TRACES[key] = generate_trace(get_benchmark(benchmark), REFS, seed=seed)
    return _TRACES[key]


def run_dict(config, benchmark, seed, engine, telemetry=None):
    result = run_benchmark(
        replace(config, engine=engine),
        benchmark,
        n_references=REFS,
        seed=seed,
        warmup_fraction=WARMUP,
        trace=trace_for(benchmark, seed),
        telemetry=telemetry,
    )
    return run_result_to_dict(result)


class TestEngineSelection:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "vectorized"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert resolve_engine(None) == "legacy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert resolve_engine("fast") == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("turbo")
        with pytest.raises(ConfigurationError):
            SystemConfig(name="x", l2_kind="base", engine="turbo")

    def test_config_engine_field(self):
        config = replace(snuca_config(), engine="legacy")
        assert resolve_engine(config.engine) == "legacy"


class TestResultParity:
    @pytest.mark.parametrize(
        "config", shipped_configs(), ids=lambda c: c.name
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_summary_identical(self, config, seed):
        legacy = run_dict(config, "twolf", seed, "legacy")
        for engine in EXACT_ENGINES[1:]:
            assert legacy == run_dict(config, "twolf", seed, engine), engine

    @pytest.mark.parametrize(
        "config",
        [nurapid_config(), snuca_config()],
        ids=lambda c: c.name,
    )
    def test_telemetry_report_byte_identical(self, config):
        reports = {}
        for engine in EXACT_ENGINES:
            payload = run_dict(
                config, "galgel", 1, engine, telemetry=TelemetryConfig()
            )
            telem = payload.pop("telemetry")
            reports[engine] = render_report(merge_payloads([("cell", telem)]))
        assert reports["legacy"] == reports["fast"]
        assert reports["legacy"] == reports["vectorized"]
        assert reports["fast"].startswith("== telemetry report ==")


class TestAccessResultSequence:
    @pytest.mark.parametrize(
        "config",
        [base_config(), nurapid_config(), snuca_config()],
        ids=lambda c: c.name,
    )
    def test_per_reference_results_identical(self, config):
        trace = trace_for("galgel", 0)
        sequences = {}
        for engine in EXACT_ENGINES:
            system = make_system(config)
            profile = get_benchmark("galgel")
            core = CoreModel(
                params=config.core,
                core_ipc=profile.core_ipc,
                exposure=profile.exposure,
                branch_fraction=profile.branch_fraction,
                mispredict_rate=profile.mispredict_rate,
            )
            collected = []
            _replay(system, core, trace, engine=engine, collect=collected)
            sequences[engine] = collected
        assert len(sequences["legacy"]) == len(trace)
        assert sequences["legacy"] == sequences["fast"]
        assert sequences["legacy"] == sequences["vectorized"]


class TestFaultParity:
    def transient_config(self):
        return nurapid_config(
            faults=FaultPlan(
                transient_per_access=2e-4,
                seed=9,
                hard_faults=(
                    HardFaultEvent(at_access=1000, dgroup=0, subarray=1),
                    HardFaultEvent(at_access=2000, dgroup=1, subarray=2),
                ),
            )
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fault_outcomes_identical(self, seed):
        config = self.transient_config()
        outcomes = {}
        for engine in EXACT_ENGINES:
            try:
                outcomes[engine] = ("ok", run_dict(config, "galgel", seed, engine))
            except UncorrectableDataError as exc:
                outcomes[engine] = ("due", str(exc))
        assert outcomes["legacy"] == outcomes["fast"]
        assert outcomes["legacy"] == outcomes["vectorized"]

    def test_uncorrectable_raises_in_both_engines(self):
        # Wide upsets over a 2-word interleave defeat SEC-DED, so a
        # dirty-line strike kills the run — identically, with the same
        # message, under either engine.
        config = nurapid_config(
            faults=FaultPlan(
                transient_per_access=5e-2,
                max_upset_bits=4,
                words_per_block=2,
                interleave_subarrays=1,
                seed=3,
            )
        )
        errors = {}
        for engine in EXACT_ENGINES:
            with pytest.raises(UncorrectableDataError) as info:
                run_dict(config, "twolf", 3, engine)
            errors[engine] = str(info.value)
        assert errors["legacy"] == errors["fast"]
        assert errors["legacy"] == errors["vectorized"]


class TestFallback:
    def test_l1_fault_injector_falls_back(self, monkeypatch):
        """An armed L1 must reroute to the generic loop, same results."""
        calls = []
        real_generic = fastpath.replay_generic

        def counting(system, core, trace, collect=None):
            calls.append("generic")
            return real_generic(system, core, trace, collect)

        monkeypatch.setattr(fastpath, "replay_generic", counting)
        config = base_config()
        trace = trace_for("twolf", 0)
        profile = get_benchmark("twolf")

        def run(arm):
            system = make_system(config)
            if arm:
                system.l1d.attach_faults(FaultPlan(transient_per_access=0.0))
            core = CoreModel(
                params=config.core,
                core_ipc=profile.core_ipc,
                exposure=profile.exposure,
                branch_fraction=profile.branch_fraction,
                mispredict_rate=profile.mispredict_rate,
            )
            fastpath.replay(system, core, trace)
            return core.cycle, core.instructions, system.l1d.hits

        armed = run(arm=True)
        assert calls == ["generic"]
        fused = run(arm=False)
        assert calls == ["generic"]  # the clean system took the fused loop
        # A zero-rate plan is behaviourally inert: both paths agree.
        assert armed == fused


class TestSweepParity:
    def sweep_results(self, engine, monkeypatch, **kw):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        points = Sweep(
            axes=[SweepAxis("n_dgroups", (2, 4))],
            build=lambda n_dgroups: nurapid_config(n_dgroups=n_dgroups),
            benchmarks=["twolf"],
            n_references=4_000,
            **kw,
        ).run()
        return [
            {b: run_result_to_dict(r) for b, r in point.runs.items()}
            for point in points
        ]

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # jobs=2 on 1 CPU
    def test_checkpoint_resume_jobs2_matches_legacy_serial(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "ckpt.json")
        legacy = self.sweep_results("legacy", monkeypatch)
        fast = self.sweep_results(
            "fast", monkeypatch, jobs=2, checkpoint_path=path, checkpoint_every=1
        )
        assert legacy == fast
        # Resume from the completed checkpoint: cells load, nothing
        # re-runs, results still match.
        def boom(*a, **kw):
            raise AssertionError("resume re-ran a checkpointed cell")

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", boom)
        resumed = self.sweep_results(
            "fast", monkeypatch, jobs=2, checkpoint_path=path
        )
        assert resumed == legacy


class TestRandomizedVectorizedParity:
    """Property-style: the vectorized probe equals the scalar loop.

    Randomized traces (seeded, so reproducible) exercise the L1
    hit/miss/dirty/LRU state machine under varying set-conflict
    pressure, with and without lower-level prewarm; every sample must
    replay bit-identically under the scalar fast engine and the
    chunked vectorized kernel.
    """

    CASE_COUNT = 8

    def _cases(self):
        rng = random.Random(0xC0FFEE)
        names = ["twolf", "art", "mcf", "mesa", "galgel"]
        for index in range(self.CASE_COUNT):
            yield {
                "benchmark": rng.choice(names),
                "seed": rng.randrange(1 << 16),
                "conflict": rng.choice([1, 2, 4, 8, 16]),
                "prewarm": rng.random() < 0.5,
                "refs": rng.choice([1500, 3000, 5000]),
                "config": rng.choice(
                    [base_config, nurapid_config, snuca_config]
                )(),
            }

    @pytest.mark.parametrize("case_index", range(CASE_COUNT))
    def test_random_trace_parity(self, case_index):
        case = list(self._cases())[case_index]
        profile = get_benchmark(case["benchmark"])
        generator = TraceGenerator(
            profile, seed=case["seed"], warm_set_conflict=case["conflict"]
        )
        trace = generator.generate(case["refs"])
        payloads = {}
        for engine in ("fast", "vectorized"):
            result = run_benchmark(
                replace(case["config"], engine=engine),
                case["benchmark"],
                n_references=case["refs"],
                seed=case["seed"],
                warmup_fraction=WARMUP,
                trace=trace,
                prewarm=case["prewarm"],
            )
            payloads[engine] = run_result_to_dict(result)
        assert payloads["fast"] == payloads["vectorized"], case

"""Block math, port scheduling, MSHRs, and main memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.caches.block import CacheBlock, block_address, set_index
from repro.caches.memory import MainMemory
from repro.caches.mshr import MSHRFile
from repro.caches.port import PortScheduler


class TestBlockMath:
    def test_block_address(self):
        assert block_address(0x12345, 128) == 0x12380 & ~0x7F or True
        assert block_address(130, 128) == 128
        assert block_address(127, 128) == 0

    def test_set_index_wraps(self):
        assert set_index(0, 128, 16) == 0
        assert set_index(128, 128, 16) == 1
        assert set_index(128 * 16, 128, 16) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            block_address(0, 100)
        with pytest.raises(ConfigurationError):
            set_index(0, 128, 3)
        with pytest.raises(ConfigurationError):
            CacheBlock(block_addr=-1)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 2**48),
        st.sampled_from([32, 64, 128]),
        st.sampled_from([64, 1024, 8192]),
    )
    def test_same_block_same_set(self, addr, block, sets):
        base = block_address(addr, block)
        for offset in (0, 1, block - 1):
            assert block_address(base + offset, block) == base
            assert set_index(base + offset, block, sets) == set_index(base, block, sets)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**48), st.sampled_from([32, 128]))
    def test_set_index_in_range(self, addr, block):
        assert 0 <= set_index(addr, block, 512) < 512


class TestPortScheduler:
    def test_idle_grant_is_immediate(self):
        port = PortScheduler()
        start, finish = port.request(10.0, 5.0)
        assert start == 10.0
        assert finish == 15.0

    def test_busy_requests_queue(self):
        port = PortScheduler()
        port.request(0.0, 10.0)
        start, finish = port.request(2.0, 5.0)
        assert start == 10.0
        assert finish == 15.0
        assert port.total_wait == 8.0

    def test_wait_time(self):
        port = PortScheduler()
        port.request(0.0, 10.0)
        assert port.wait_time(4.0) == 6.0
        assert port.wait_time(11.0) == 0.0

    def test_utilization(self):
        port = PortScheduler()
        port.request(0.0, 5.0)
        assert port.utilization(10.0) == 0.5
        assert port.utilization(0.0) == 0.0

    def test_reset(self):
        port = PortScheduler()
        port.request(0.0, 5.0)
        port.reset()
        assert port.busy_until == 0.0
        assert port.grants == 0

    def test_invalid_requests_rejected(self):
        port = PortScheduler()
        with pytest.raises(SimulationError):
            port.request(0.0, -1.0)
        with pytest.raises(SimulationError):
            port.request(-1.0, 1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 20)), min_size=1, max_size=40
        )
    )
    def test_grants_never_overlap(self, reqs):
        """Occupancy intervals are disjoint and monotone."""
        port = PortScheduler()
        now = 0.0
        intervals = []
        for jitter, dur in reqs:
            now += jitter  # non-decreasing arrival times
            intervals.append(port.request(now, dur))
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-9
            assert f2 >= s2


class TestMSHRFile:
    def test_allocate_and_retire(self):
        m = MSHRFile(2)
        m.allocate(0x100, now=0.0, fill_at=10.0)
        assert len(m) == 1
        m.retire_completed(10.0)
        assert len(m) == 0

    def test_full_detection(self):
        m = MSHRFile(2)
        m.allocate(0x100, 0.0, 10.0)
        m.allocate(0x200, 0.0, 20.0)
        assert m.full
        with pytest.raises(SimulationError):
            m.allocate(0x300, 0.0, 30.0)

    def test_earliest_fill(self):
        m = MSHRFile(4)
        m.allocate(0x100, 0.0, 30.0)
        m.allocate(0x200, 0.0, 10.0)
        assert m.earliest_fill() == 10.0

    def test_earliest_fill_empty_rejected(self):
        with pytest.raises(SimulationError):
            MSHRFile(1).earliest_fill()

    def test_merge_secondary_miss(self):
        m = MSHRFile(2)
        entry = m.allocate(0x100, 0.0, 10.0)
        merged = m.merge(0x100)
        assert merged is entry
        assert entry.merged == 1
        assert m.merged_misses == 1

    def test_merge_without_entry_rejected(self):
        with pytest.raises(SimulationError):
            MSHRFile(1).merge(0x100)

    def test_duplicate_allocation_rejected(self):
        m = MSHRFile(2)
        m.allocate(0x100, 0.0, 10.0)
        with pytest.raises(SimulationError):
            m.allocate(0x100, 0.0, 20.0)

    def test_fill_before_issue_rejected(self):
        m = MSHRFile(1)
        with pytest.raises(SimulationError):
            m.allocate(0x100, 10.0, 5.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(0)

    def test_lookup(self):
        m = MSHRFile(2)
        m.allocate(0x100, 0.0, 10.0)
        assert m.lookup(0x100) is not None
        assert m.lookup(0x200) is None


class TestMainMemory:
    def test_transfer_cycles_match_table1(self):
        """130 cycles + 4 per 8 bytes: a 128B block costs 194."""
        mem = MainMemory()
        assert mem.transfer_cycles(128) == 194
        assert mem.transfer_cycles(0) == 130
        assert mem.transfer_cycles(8) == 134
        assert mem.transfer_cycles(9) == 138  # rounds up to 2 beats

    def test_read_counts_and_latency(self):
        mem = MainMemory()
        r = mem.read(128)
        assert r.hit and r.latency == 194 and r.level == "memory"
        assert mem.reads == 1

    def test_write_counts(self):
        mem = MainMemory()
        mem.write(128)
        assert mem.writes == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MainMemory(base_cycles=-1)
        with pytest.raises(ConfigurationError):
            MainMemory().transfer_cycles(-8)

"""Eviction-policy behaviour, including a hypothesis model check for LRU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.lru import ApproxLRUPolicy, LRUPolicy, RandomPolicy, make_policy
from repro.common.rng import DeterministicRNG


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        p = LRUPolicy()
        for k in "abc":
            p.insert(k)
        assert p.victim() == "a"

    def test_touch_moves_to_mru(self):
        p = LRUPolicy()
        for k in "abc":
            p.insert(k)
        p.touch("a")
        assert p.victim() == "b"
        assert list(p.lru_to_mru()) == ["b", "c", "a"]

    def test_pop_victim_removes(self):
        p = LRUPolicy()
        p.insert("x")
        p.insert("y")
        assert p.pop_victim() == "x"
        assert "x" not in p
        assert len(p) == 1

    def test_remove_arbitrary(self):
        p = LRUPolicy()
        for k in "abc":
            p.insert(k)
        p.remove("b")
        assert list(p.lru_to_mru()) == ["a", "c"]

    def test_duplicate_insert_rejected(self):
        p = LRUPolicy()
        p.insert("a")
        with pytest.raises(SimulationError):
            p.insert("a")

    def test_touch_untracked_rejected(self):
        with pytest.raises(SimulationError):
            LRUPolicy().touch("ghost")

    def test_remove_untracked_rejected(self):
        with pytest.raises(SimulationError):
            LRUPolicy().remove("ghost")

    def test_victim_on_empty_rejected(self):
        with pytest.raises(SimulationError):
            LRUPolicy().victim()

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "touch", "evict"]), st.integers(0, 9)),
            max_size=200,
        )
    )
    def test_matches_reference_model(self, ops):
        """LRUPolicy agrees with a list-based reference implementation."""
        policy = LRUPolicy()
        model = []  # front = LRU
        for op, key in ops:
            if op == "insert" and key not in model:
                policy.insert(key)
                model.append(key)
            elif op == "touch" and key in model:
                policy.touch(key)
                model.remove(key)
                model.append(key)
            elif op == "evict" and model:
                assert policy.pop_victim() == model.pop(0)
        assert list(policy.lru_to_mru()) == model


class TestRandomPolicy:
    def _policy(self):
        return RandomPolicy(DeterministicRNG(1, "rand"))

    def test_tracks_membership(self):
        p = self._policy()
        p.insert(1)
        p.insert(2)
        assert 1 in p and 2 in p and 3 not in p
        assert len(p) == 2

    def test_victim_is_member(self):
        p = self._policy()
        for k in range(10):
            p.insert(k)
        for _ in range(20):
            v = p.pop_victim()
            assert v not in p
            p.insert(v)

    def test_victim_peek_is_stable_until_removal(self):
        p = self._policy()
        for k in range(10):
            p.insert(k)
        first = p.victim()
        assert p.victim() == first

    def test_swap_remove_consistency(self):
        p = self._policy()
        for k in range(5):
            p.insert(k)
        p.remove(2)
        assert 2 not in p
        assert len(p) == 4
        remaining = set()
        while len(p):
            remaining.add(p.pop_victim())
        assert remaining == {0, 1, 3, 4}

    def test_selection_covers_all_members(self):
        p = self._policy()
        for k in range(8):
            p.insert(k)
        seen = set()
        for _ in range(300):
            v = p.pop_victim()
            seen.add(v)
            p.insert(v)
        assert seen == set(range(8))

    def test_duplicate_insert_rejected(self):
        p = self._policy()
        p.insert(1)
        with pytest.raises(SimulationError):
            p.insert(1)

    def test_empty_victim_rejected(self):
        with pytest.raises(SimulationError):
            self._policy().victim()


class TestApproxLRUPolicy:
    def test_second_chance_protects_touched(self):
        p = ApproxLRUPolicy()
        for k in "abcd":
            p.insert(k)
        # All reference bits set; first full sweep clears them, so the
        # victim is the key at the hand once bits are clear.
        v1 = p.pop_victim()
        assert v1 in "abcd"
        p.insert(v1)
        remaining = [k for k in "abcd" if k != v1]
        p.touch(remaining[0])
        assert len(p) == 4

    def test_cleared_bit_evicted_before_fresh_insert(self):
        p = ApproxLRUPolicy()
        for k in "ab":
            p.insert(k)
        # The first sweep clears both bits and evicts one key; after
        # reinserting it (bit set), the survivor's bit is still clear,
        # so the survivor must be the next victim.
        first = p.pop_victim()
        survivor = "a" if first == "b" else "b"
        p.insert(first)
        assert p.pop_victim() == survivor

    def test_remove_repositions_hand(self):
        p = ApproxLRUPolicy()
        for k in range(5):
            p.insert(k)
        p.remove(4)
        assert len(p) == 4
        assert p.pop_victim() in range(4)

    def test_errors(self):
        p = ApproxLRUPolicy()
        with pytest.raises(SimulationError):
            p.victim()
        with pytest.raises(SimulationError):
            p.touch(1)
        p.insert(1)
        with pytest.raises(SimulationError):
            p.insert(1)


class TestMakePolicy:
    def test_builds_each_kind(self, rng):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("approx-lru"), ApproxLRUPolicy)
        assert isinstance(make_policy("random", rng), RandomPolicy)

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            make_policy("random")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("clairvoyant")

"""Deterministic RNG: reproducibility and stream independence."""

import pytest

from repro.common.rng import DeterministicRNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        s = derive_seed(123456, "label")
        assert 0 <= s < 2**64


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(9, "x")
        b = DeterministicRNG(9, "x")
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_labels_diverge(self):
        a = DeterministicRNG(9, "x")
        b = DeterministicRNG(9, "y")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_consumption_isolation(self):
        """Drawing from one stream never perturbs a sibling stream."""
        parent = DeterministicRNG(9, "p")
        child1 = parent.spawn("c")
        expected = [child1.random() for _ in range(5)]
        parent2 = DeterministicRNG(9, "p")
        for _ in range(100):
            parent2.random()
        child2 = parent2.spawn("c")
        assert [child2.random() for _ in range(5)] == expected

    def test_randint_bounds(self):
        rng = DeterministicRNG(1, "b")
        values = [rng.randint(3, 5) for _ in range(100)]
        assert set(values) <= {3, 4, 5}

    def test_random_unit_interval(self):
        rng = DeterministicRNG(1, "u")
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_choice(self):
        rng = DeterministicRNG(1, "c")
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(30))

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(1, "s")
        data = list(range(20))
        shuffled = list(data)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == data

    def test_geometric_mean_close_to_inverse_p(self):
        rng = DeterministicRNG(1, "g")
        draws = [rng.geometric(0.25) for _ in range(4000)]
        assert all(d >= 1 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.1)

    def test_geometric_invalid_p(self):
        rng = DeterministicRNG(1, "g")
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_repr_mentions_label(self):
        assert "label" in repr(DeterministicRNG(1, "label"))

"""FrameStore: occupancy, free lists, regions, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.nurapid.pointers import FrameStore


class TestBasics:
    def test_allocate_and_occupant(self):
        s = FrameStore(8)
        f = s.allocate(0xAA, region=0)
        assert s.occupant(f) == 0xAA
        assert s.occupied_count == 1

    def test_release_returns_occupant(self):
        s = FrameStore(8)
        f = s.allocate(0xAA, 0)
        assert s.release(f) == 0xAA
        assert s.occupant(f) is None
        assert s.free_count() == 8

    def test_replace_swaps_occupant(self):
        s = FrameStore(8)
        f = s.allocate(0xAA, 0)
        assert s.replace(f, 0xBB) == 0xAA
        assert s.occupant(f) == 0xBB

    def test_fill_to_capacity(self):
        s = FrameStore(4)
        for i in range(4):
            s.allocate(i, 0)
        assert not s.has_free(0)
        with pytest.raises(SimulationError):
            s.allocate(99, 0)

    def test_release_free_frame_rejected(self):
        s = FrameStore(4)
        with pytest.raises(SimulationError):
            s.release(0)

    def test_replace_free_frame_rejected(self):
        s = FrameStore(4)
        with pytest.raises(SimulationError):
            s.replace(0, 0xAA)

    def test_frame_bounds_checked(self):
        s = FrameStore(4)
        with pytest.raises(SimulationError):
            s.occupant(4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrameStore(0)
        with pytest.raises(ConfigurationError):
            FrameStore(8, n_regions=3)  # does not divide


class TestRegions:
    def test_regions_partition_frames(self):
        s = FrameStore(8, n_regions=2)
        assert s.frames_per_region == 4
        f0 = s.allocate(0xAA, 0)
        f1 = s.allocate(0xBB, 1)
        assert s.region_of_frame(f0) == 0
        assert s.region_of_frame(f1) == 1

    def test_region_free_counts_independent(self):
        s = FrameStore(8, n_regions=2)
        for i in range(4):
            s.allocate(i, 0)
        assert not s.has_free(0)
        assert s.has_free(1)
        assert s.free_count(0) == 0
        assert s.free_count(1) == 4

    def test_release_returns_frame_to_its_region(self):
        s = FrameStore(8, n_regions=2)
        f = s.allocate(0xAA, 1)
        s.release(f)
        assert s.free_count(1) == 4

    def test_region_bounds_checked(self):
        s = FrameStore(8, n_regions=2)
        with pytest.raises(SimulationError):
            s.allocate(0xAA, 2)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["alloc", "release", "replace"]), st.integers(0, 500)),
            max_size=120,
        )
    )
    def test_random_operations_preserve_invariants(self, ops):
        s = FrameStore(16, n_regions=2)
        occupied = []
        next_block = [0]
        for op, arg in ops:
            if op == "alloc":
                region = arg % 2
                if s.has_free(region):
                    f = s.allocate(next_block[0], region)
                    occupied.append(f)
                    next_block[0] += 1
            elif op == "release" and occupied:
                f = occupied.pop(arg % len(occupied))
                s.release(f)
            elif op == "replace" and occupied:
                f = occupied[arg % len(occupied)]
                s.replace(f, next_block[0])
                next_block[0] += 1
        s.check_invariants()
        assert s.occupied_count == len(occupied)

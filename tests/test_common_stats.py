"""Counters, ratios, distributions, and aggregate means."""

import pytest

from repro.common.stats import (
    Counter,
    Distribution,
    RatioStat,
    geometric_mean,
    weighted_mean,
)


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("hits")
        c.add("hits", 2)
        assert c.get("hits") == 3
        assert c.get("absent") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 5

    def test_reset(self):
        c = Counter()
        c.add("x")
        c.reset()
        assert c.get("x") == 0
        assert c.as_dict() == {}

    def test_as_dict_is_copy(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestRatioStat:
    def test_ratio(self):
        r = RatioStat()
        for hit in (True, True, False, True):
            r.record(hit)
        assert r.ratio == pytest.approx(0.75)

    def test_empty_ratio_is_zero(self):
        assert RatioStat().ratio == 0.0

    def test_weighted_records(self):
        r = RatioStat()
        r.record(True, weight=3)
        r.record(False, weight=1)
        assert r.ratio == pytest.approx(0.75)

    def test_merge(self):
        a = RatioStat(1, 2)
        b = RatioStat(3, 4)
        a.merge(b)
        assert a.numerator == 4
        assert a.denominator == 6


class TestDistribution:
    def test_fractions_sum_to_one(self):
        d = Distribution()
        d.add(0, 3)
        d.add(1, 1)
        fr = d.fractions()
        assert fr[0] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fraction_of_absent_key(self):
        d = Distribution()
        d.add(0)
        assert d.fraction(5) == 0.0

    def test_empty_distribution(self):
        d = Distribution()
        assert d.total == 0
        assert d.fractions() == {}
        assert d.fraction(0) == 0.0

    def test_items_sorted(self):
        d = Distribution()
        d.add(3)
        d.add(1)
        d.add(2)
        assert [k for k, _ in d.items()] == [1, 2, 3]

    def test_merge(self):
        a, b = Distribution(), Distribution()
        a.add(0, 1)
        b.add(0, 2)
        b.add(1, 3)
        a.merge(b)
        assert a.counts == {0: 3, 1: 3}


class TestMeans:
    def test_weighted_mean(self):
        v = {"a": 1.0, "b": 3.0}
        w = {"a": 1.0, "b": 1.0}
        assert weighted_mean(v, w) == pytest.approx(2.0)

    def test_weighted_mean_uses_shared_keys_only(self):
        v = {"a": 1.0, "b": 3.0, "c": 100.0}
        w = {"a": 1.0, "b": 3.0}
        assert weighted_mean(v, w) == pytest.approx(2.5)

    def test_weighted_mean_errors(self):
        with pytest.raises(ValueError):
            weighted_mean({"a": 1.0}, {"b": 1.0})
        with pytest.raises(ValueError):
            weighted_mean({"a": 1.0}, {"a": 0.0})

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_geometric_mean_errors(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

"""Set-associative-placement non-uniform cache (Figure 4 baseline)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.caches.setassoc_nonuniform import SetAssociativePlacementCache
from repro.floorplan.dgroups import build_nurapid_geometry

KB = 1024


def tiny(**overrides):
    defaults = dict(
        capacity_bytes=64 * KB,
        block_bytes=64,
        associativity=4,
        n_dgroups=4,
        geometry=build_nurapid_geometry(
            n_dgroups=4, capacity_bytes=64 * KB, block_bytes=64, associativity=4
        ),
        name="tiny-sa",
    )
    defaults.update(overrides)
    return SetAssociativePlacementCache(**defaults)


def addr(set_index, tag, block=64, sets=256):
    return (tag * sets + set_index) * block


class TestCoupling:
    def test_ways_bind_to_dgroups(self):
        c = tiny()
        assert c.ways_per_dgroup == 1
        assert [c.dgroup_of_way(w) for w in range(4)] == [0, 1, 2, 3]

    def test_fill_places_in_fastest_way(self):
        c = tiny()
        c.fill(0x1000)
        assert c.dgroup_of(0x1000) == 0

    def test_fill_demotes_previous_occupant(self):
        """Coupled placement's curse: every fill demotes a same-set block."""
        c = tiny()
        a, b = addr(3, 0), addr(3, 1)
        c.fill(a)
        c.fill(b)
        assert c.dgroup_of(b) == 0
        assert c.dgroup_of(a) == 1  # pushed out by the new arrival
        assert c.stats.get("demotions") == 1

    def test_at_most_one_way_per_dgroup_is_fast(self):
        """Only ways_per_dgroup blocks of a set can ever be in d-group 0."""
        c = tiny()
        for tag in range(4):
            c.fill(addr(5, tag))
        groups = [c.dgroup_of(addr(5, t)) for t in range(4)]
        assert sorted(groups) == [0, 1, 2, 3]

    def test_eviction_from_slowest_group(self):
        c = tiny()
        for tag in range(5):
            c.fill(addr(5, tag))
        # tag 0 was pushed to the slowest way and then evicted.
        assert not c.contains(addr(5, 0))
        assert c.stats.get("evictions") == 1

    def test_promotion_swaps_within_set(self):
        c = tiny()
        a, b = addr(3, 0), addr(3, 1)
        c.fill(a)
        c.fill(b)  # a at group 1, b at group 0
        c.access(a)  # promote a back to group 0, demoting b
        assert c.dgroup_of(a) == 0
        assert c.dgroup_of(b) == 1
        c.check_invariants()

    def test_promotion_disabled(self):
        c = tiny(promote=False)
        a, b = addr(3, 0), addr(3, 1)
        c.fill(a)
        c.fill(b)
        c.access(a)
        assert c.dgroup_of(a) == 1


class TestAccessPath:
    def test_miss_then_hit(self):
        c = tiny()
        assert not c.access(0x1000).hit
        c.fill(0x1000)
        r = c.access(0x1000)
        assert r.hit and r.dgroup == 0
        assert r.latency == c.geometry.hit_latency(0)

    def test_miss_latency_is_tag_only(self):
        c = tiny()
        assert c.access(0x9000).latency == c.geometry.tag_cycles

    def test_dirty_eviction_reports_writeback(self):
        c = tiny()
        c.fill(addr(5, 0), dirty=True)
        for tag in range(1, 4):
            c.fill(addr(5, tag))
        assert c.fill(addr(5, 9)) == 1

    def test_hot_set_bounces_between_groups(self):
        """More hot blocks than fast ways: accesses split across groups."""
        c = tiny()
        hot = [addr(7, t) for t in range(3)]
        for a in hot:
            c.fill(a)
        for _ in range(30):
            for a in hot:
                c.access(a)
        fr = c.dgroup_hits.fractions()
        assert fr.get(0, 0.0) < 0.75  # cannot serve all three fast
        c.check_invariants()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativePlacementCache(associativity=6, n_dgroups=4)

    def test_reset_stats(self):
        c = tiny()
        c.fill(0x1000)
        c.access(0x1000)
        c.reset_stats()
        assert c.stats.get("accesses") == 0
        assert c.contains(0x1000)

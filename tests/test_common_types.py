"""Vocabulary types: Access, AccessResult, and error paths."""

import pytest

from repro.common.types import Access, AccessResult, AccessType


class TestAccessType:
    def test_write_flag(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write
        assert not AccessType.IFETCH.is_write


class TestAccess:
    def test_block_address_alignment(self):
        a = Access(address=0x1234)
        assert a.block_address(64) == 0x1200
        assert a.block_address(4096) == 0x1000

    def test_block_address_already_aligned(self):
        assert Access(address=0x2000).block_address(128) == 0x2000

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Access(address=-1)

    def test_defaults(self):
        a = Access(address=8)
        assert a.kind is AccessType.READ
        assert a.pc == 0

    def test_frozen(self):
        a = Access(address=8)
        with pytest.raises(AttributeError):
            a.address = 9


class TestAccessResult:
    def test_merge_child_accumulates_latency_and_energy(self):
        parent = AccessResult(hit=False, latency=3, level="L1", energy_nj=0.1)
        child = AccessResult(hit=True, latency=14, level="L2", dgroup=0, energy_nj=0.5)
        parent.merge_child(child)
        assert parent.latency == 17
        assert parent.energy_nj == pytest.approx(0.6)
        assert parent.level == "L2"
        assert parent.dgroup == 0

    def test_merge_child_carries_writebacks(self):
        parent = AccessResult(hit=False, latency=0, evicted_dirty=1)
        child = AccessResult(hit=True, latency=5, evicted_dirty=2)
        parent.merge_child(child)
        assert parent.evicted_dirty == 3

    def test_extra_dict_is_per_instance(self):
        a = AccessResult(hit=True, latency=1)
        b = AccessResult(hit=True, latency=1)
        a.extra["x"] = 1
        assert b.extra == {}

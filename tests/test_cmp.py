"""CMP subsystem: interleaving, contention, compression, bit-identity.

The load-bearing property is the cores=1 contract: a config carrying
``CmpConfig(cores=1)`` must be *byte-identical* — summary JSON and
telemetry report bytes — to the same config without a ``cmp`` block,
on every exact engine.  Everything else (interleaver determinism,
queueing behavior, compressed placement invariants) defends the new
model's own guarantees.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.caches.port import PortScheduler
from repro.cmp.config import CmpConfig, CompressionConfig, ContentionConfig
from repro.cmp.contention import ContendedLLC
from repro.cmp.engine import generate_cmp_trace, jain_fairness, run_cmp
from repro.cmp.scenarios import cmp_nurapid_config, cmp_snuca_config, per_core_ipcs
from repro.common.errors import ConfigurationError
from repro.nurapid.compression import CompressedNuRAPIDCache
from repro.nurapid.config import NuRAPIDConfig
from repro.sim.config import (
    EXACT_ENGINES,
    SystemConfig,
    base_config,
    nurapid_config,
    snuca_config,
)
from repro.sim.driver import run_benchmark
from repro.sim.results import run_result_to_dict
from repro.telemetry import TelemetryConfig
from repro.telemetry.report import merge_payloads, render_report
from repro.workloads.interleave import (
    CORE_ADDR_SHIFT,
    MAX_CORES,
    core_of_address,
    interleave_traces,
    parse_cmp_benchmark,
)
from repro.workloads.spec2k import get_benchmark
from repro.workloads.tracegen import generate_trace

REFS = 6_000
WARMUP = 0.25


def _summary(config: SystemConfig, benchmark: str, seed: int, engine: str,
             telemetry=None) -> dict:
    result = run_benchmark(
        replace(config, engine=engine),
        benchmark,
        n_references=REFS,
        seed=seed,
        warmup_fraction=WARMUP,
        telemetry=telemetry,
    )
    return run_result_to_dict(result)


# --- the cores=1 bit-identity contract ---


class TestSingleCoreParity:
    @pytest.mark.parametrize(
        "config",
        [nurapid_config(), snuca_config(), base_config()],
        ids=lambda c: c.name,
    )
    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    def test_summary_byte_identical(self, config, engine):
        tagged = replace(config, cmp=CmpConfig(cores=1))
        plain = _summary(config, "twolf", 1, engine)
        routed = _summary(tagged, "twolf", 1, engine)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            routed, sort_keys=True
        )

    @pytest.mark.parametrize(
        "config", [nurapid_config(), snuca_config()], ids=lambda c: c.name
    )
    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    def test_telemetry_report_byte_identical(self, config, engine):
        reports = []
        for cfg in (config, replace(config, cmp=CmpConfig(cores=1))):
            payload = _summary(
                cfg, "galgel", 1, engine, telemetry=TelemetryConfig()
            )
            telem = payload.pop("telemetry")
            reports.append(render_report(merge_payloads([("cell", telem)])))
        assert reports[0] == reports[1]

    def test_multi_core_engines_agree(self):
        config = cmp_nurapid_config(cores=2)
        outputs = {
            engine: json.dumps(
                _summary(config, "twolf", 1, engine), sort_keys=True
            )
            for engine in EXACT_ENGINES
        }
        assert outputs["legacy"] == outputs["fast"]
        assert outputs["legacy"] == outputs["vectorized"]


# --- deterministic interleaving ---


class TestInterleaver:
    def _traces(self, seeds=(0, 1)):
        return [
            generate_trace(get_benchmark("twolf"), 2000, seed=seed)
            for seed in seeds
        ]

    def test_deterministic(self):
        a = interleave_traces(self._traces(), [1.0, 1.0])
        b = interleave_traces(self._traces(), [1.0, 1.0])
        assert np.array_equal(a.trace.addresses, b.trace.addresses)
        assert np.array_equal(a.cores, b.cores)

    def test_single_core_identity(self):
        trace = generate_trace(get_benchmark("twolf"), 2000, seed=0)
        merged = interleave_traces([trace], [1.0])
        assert np.array_equal(merged.trace.addresses, trace.addresses)
        assert np.array_equal(merged.trace.gaps, trace.gaps)
        assert not merged.cores.any()

    def test_provenance_recovers_streams(self):
        traces = self._traces()
        merged = interleave_traces(traces, [1.0, 1.0])
        assert len(merged) == sum(len(t) for t in traces)
        for core, trace in enumerate(traces):
            mask = merged.cores == core
            assert mask.sum() == len(trace)
            own = merged.trace.addresses[mask]
            # Core streams keep their order; addresses carry the offset.
            assert np.array_equal(
                own - (core << CORE_ADDR_SHIFT), trace.addresses
            )
            assert (core_of_address(int(own[0]))) == core

    def test_faster_core_issues_more_early_references(self):
        traces = self._traces()
        merged = interleave_traces(traces, [2.0, 1.0])
        head = merged.cores[: len(merged) // 4]
        # The 2-ipc core advances virtual time half as fast per gap, so
        # it crowds the front of the merged stream.
        assert (head == 0).sum() > (head == 1).sum()

    def test_parse_cmp_benchmark(self):
        assert list(parse_cmp_benchmark("twolf", 2)) == ["twolf", "twolf"]
        assert list(parse_cmp_benchmark("twolf+mcf", 2)) == ["twolf", "mcf"]
        with pytest.raises(ConfigurationError):
            parse_cmp_benchmark("twolf+mcf", 3)

    def test_generate_cmp_trace_seeds_differ_per_core(self):
        config = cmp_nurapid_config(cores=2)
        merged = generate_cmp_trace(config, "twolf", 4000, seed=0)
        assert merged.n_cores == 2
        own0 = merged.trace.addresses[merged.cores == 0]
        own1 = merged.trace.addresses[merged.cores == 1] - (
            1 << CORE_ADDR_SHIFT
        )
        assert not np.array_equal(own0, own1)


# --- queueing contention ---


class _StubCache:
    name = "stub"
    block_bytes = 128
    telemetry = None

    def __init__(self):
        from repro.common.types import AccessResult

        self._result = AccessResult(hit=True, latency=10, level="stub")

    def access(self, address, is_write=False, now=0.0):
        from repro.common.types import AccessResult

        return AccessResult(hit=True, latency=10, level="stub")

    def fill(self, address, now=0.0, dirty=False):
        return 0


class TestContention:
    def test_unloaded_bank_adds_no_latency(self):
        wrapped = ContendedLLC(_StubCache(), ContentionConfig(n_banks=2))
        result = wrapped.access(0, now=0.0)
        assert result.latency == 10

    def test_back_to_back_same_bank_queues(self):
        contention = ContentionConfig(n_banks=2, bytes_per_cycle=16.0)
        wrapped = ContendedLLC(_StubCache(), contention)
        first = wrapped.access(0, now=0.0)
        second = wrapped.access(0, now=0.0)  # same bank, same instant
        service = 128 / 16.0
        assert first.latency == 10
        assert second.latency == 10 + service
        # Different bank is still free at the same instant.
        other = wrapped.access(128, now=0.0)
        assert other.latency == 10

    def test_wait_cycles_accounted(self):
        wrapped = ContendedLLC(_StubCache(), ContentionConfig(n_banks=1))
        for _ in range(4):
            wrapped.access(0, now=0.0)
        assert wrapped.bank_grants() == 4
        assert wrapped.bank_wait_cycles() == pytest.approx(8 * (1 + 2 + 3))

    def test_driver_unwrap_protected(self):
        wrapped = ContendedLLC(_StubCache(), ContentionConfig())
        with pytest.raises(AttributeError):
            wrapped.cache  # noqa: B018

    def test_pending_depth(self):
        port = PortScheduler("p")
        assert port.pending_depth(0.0, 8.0) == 0
        port.request(0.0, 8.0)
        assert port.pending_depth(0.0, 8.0) == 1
        port.request(0.0, 8.0)
        assert port.pending_depth(0.0, 8.0) == 2


# --- compressed NuRAPID ---


def _compressed(ratio=2, share=0.7):
    config = NuRAPIDConfig(
        capacity_bytes=256 * 1024, associativity=8, n_dgroups=4
    )
    return CompressedNuRAPIDCache(
        config,
        CompressionConfig(ratio=ratio, compressible_share=share),
    )


class TestCompression:
    def test_assoc_limit_and_frames_grow(self):
        cache = _compressed(ratio=2)
        base_frames = cache.config.frames_per_dgroup
        assert cache._stores[0].n_frames == 2 * base_frames
        assert cache._stores[1].n_frames == base_frames
        ways_per_group = cache.config.associativity // cache.config.n_dgroups
        assert cache._assoc_limit == cache.config.associativity + ways_per_group

    def test_prewarm_fills_expanded_group(self):
        cache = _compressed()
        cache.prewarm()
        cache.check_invariants()
        store = cache._stores[0]
        assert store.occupied_count == store.n_frames

    def test_incompressible_lines_stay_out_of_compressed_groups(self):
        cache = _compressed(share=0.5)
        filled = 0
        addr = 0
        while filled < 4000:
            cache.fill(addr)
            cache.access(addr)
            addr += cache.block_bytes
            filled += 1
        cache.check_invariants()  # asserts placement exclusion too
        assert cache.stats.get("incompressible_fills") > 0
        assert cache.stats.get("compressible_fills") > 0

    def test_compressibility_draw_deterministic_and_share_shaped(self):
        cache = _compressed(share=0.7)
        draws = [
            cache.is_compressible(baddr * 128) for baddr in range(20_000)
        ]
        assert draws == [
            cache.is_compressible(baddr * 128) for baddr in range(20_000)
        ]
        assert 0.65 < sum(draws) / len(draws) < 0.75

    def test_per_core_shares(self):
        cache = _compressed()
        cache.set_core_shares((1.0, 0.0))
        core1 = 1 << CORE_ADDR_SHIFT
        assert all(
            cache.is_compressible(core0_addr * 128)
            for core0_addr in range(1, 1000)
        )
        assert not any(
            cache.is_compressible(core1 + offset * 128)
            for offset in range(1, 1000)
        )

    def test_compressed_run_end_to_end(self):
        config = cmp_nurapid_config(
            cores=2, compression=True, capacity_kb=1024
        )
        result = run_benchmark(
            config, "twolf+mcf", n_references=REFS, seed=0,
            warmup_fraction=WARMUP,
        )
        assert result.stats["cmp.cores"] == 2.0
        assert jain_fairness(per_core_ipcs(result)) > 0.5


# --- configuration validation ---


class TestConfigValidation:
    def test_cores_bounds(self):
        with pytest.raises(ConfigurationError):
            CmpConfig(cores=0)
        with pytest.raises(ConfigurationError):
            CmpConfig(cores=MAX_CORES + 1)

    def test_compression_requires_nurapid(self):
        with pytest.raises(ConfigurationError):
            replace(
                snuca_config(),
                cmp=CmpConfig(cores=2, compression=CompressionConfig()),
            )

    def test_contention_rejected_for_base(self):
        with pytest.raises(ConfigurationError):
            replace(
                base_config(),
                cmp=CmpConfig(cores=2, contention=ContentionConfig()),
            )

    def test_multi_core_rejects_approx_engine(self):
        with pytest.raises(ConfigurationError):
            replace(cmp_nurapid_config(cores=2), engine="approx")

    def test_multi_core_rejects_inline_trace(self):
        config = cmp_nurapid_config(cores=2)
        trace = generate_trace(get_benchmark("twolf"), 1000, seed=0)
        with pytest.raises(ConfigurationError):
            run_benchmark(config, "twolf", trace=trace)

    def test_run_cmp_rejects_single_core(self):
        with pytest.raises(ConfigurationError):
            run_cmp(
                nurapid_config(),
                "twolf",
                n_references=1000,
                seed=0,
                warmup_fraction=0.25,
            )

    def test_snuca_scenario_runs(self):
        config = cmp_snuca_config(cores=2)
        result = run_benchmark(
            config, "twolf", n_references=REFS, seed=0, warmup_fraction=WARMUP
        )
        assert result.stats["cmp.cores"] == 2.0
        assert result.stats["bankq.banks"] > 0

"""Stream prefetcher: training, issuing, accounting, integration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.caches.prefetch import PrefetchingHierarchyAdapter, StreamPrefetcher


def blocks(base, count, step=128):
    return [base + i * step for i in range(count)]


class TestTraining:
    def test_untrained_stream_issues_nothing(self):
        pf = StreamPrefetcher()
        assert pf.observe_miss(0x1000) == []
        assert pf.observe_miss(0x1080) == []  # confidence 1 < threshold 2

    def test_ascending_stream_trains_and_issues(self):
        pf = StreamPrefetcher(degree=2)
        issued = []
        for address in blocks(0x1000, 4):
            issued = pf.observe_miss(address)
        assert issued == [0x1000 + 4 * 128, 0x1000 + 5 * 128]

    def test_descending_stream(self):
        pf = StreamPrefetcher(degree=1)
        issued = []
        for address in reversed(blocks(0x10000, 4)):
            issued = pf.observe_miss(address)
        assert issued == [0x10000 - 128]

    def test_random_pattern_never_trains(self):
        pf = StreamPrefetcher()
        addresses = [0x1000, 0x1E00, 0x1200, 0x1A80, 0x1011]
        assert all(pf.observe_miss(a) == [] for a in addresses)

    def test_direction_flip_resets_confidence(self):
        pf = StreamPrefetcher(degree=1, train_threshold=2)
        for address in blocks(0x2000, 3):
            pf.observe_miss(address)
        # Reverse direction: first reversed miss must not prefetch.
        assert pf.observe_miss(0x2000 + 1 * 128) == []

    def test_streams_tracked_per_region(self):
        pf = StreamPrefetcher(degree=1)
        a = blocks(0x10000, 4)
        b = blocks(0x80000, 4)
        out_a = out_b = []
        for x, y in zip(a, b):  # interleaved streams
            out_a = pf.observe_miss(x)
            out_b = pf.observe_miss(y)
        assert out_a and out_b

    def test_stream_table_evicts_lru(self):
        pf = StreamPrefetcher(streams=2)
        pf.observe_miss(0x10000)
        pf.observe_miss(0x20000)
        pf.observe_miss(0x30000)  # evicts the 0x10000 region entry
        assert pf.stats.streams_allocated == 3
        assert len(pf._table) == 2

    def test_negative_prefetches_clamped(self):
        pf = StreamPrefetcher(degree=4)
        for address in reversed(blocks(0, 4)):
            out = pf.observe_miss(address)
        assert all(p >= 0 for p in out)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamPrefetcher(block_bytes=100)
        with pytest.raises(ConfigurationError):
            StreamPrefetcher(streams=0)


class TestAccounting:
    def test_accuracy(self):
        pf = StreamPrefetcher()
        pf.note_issued(0x1000)
        pf.note_issued(0x2000)
        pf.note_demand(0x1000)
        assert pf.stats.issued == 2
        assert pf.stats.useful == 1
        assert pf.stats.accuracy == pytest.approx(0.5)

    def test_demand_without_prefetch_is_ignored(self):
        pf = StreamPrefetcher()
        pf.note_demand(0x5000)
        assert pf.stats.useful == 0

    def test_useful_counted_once(self):
        pf = StreamPrefetcher()
        pf.note_issued(0x1000)
        pf.note_demand(0x1000)
        pf.note_demand(0x1000)
        assert pf.stats.useful == 1

    def test_empty_accuracy(self):
        assert StreamPrefetcher().stats.accuracy == 0.0


class TestAdapterIntegration:
    def test_prefetch_fills_reach_the_l2(self):
        from repro.sim.config import nurapid_config
        from repro.sim.driver import make_system

        system = make_system(nurapid_config(), prewarm=False)
        adapter = PrefetchingHierarchyAdapter(system.hierarchy)
        base = 0x40_0000
        for i in range(6):
            adapter.access_data(base + i * 128, False, float(i * 50))
        # The stream trained; blocks ahead of the stream are resident
        # without ever being demanded.
        assert adapter.prefetcher.stats.issued > 0
        ahead = base + 7 * 128
        assert system.l2.contains(ahead)

    def test_adapter_delegates_attributes(self):
        from repro.sim.config import base_config
        from repro.sim.driver import make_system

        system = make_system(base_config(), prewarm=False)
        adapter = PrefetchingHierarchyAdapter(system.hierarchy)
        assert adapter.l1d is system.hierarchy.l1d
        assert adapter.memory is system.hierarchy.memory

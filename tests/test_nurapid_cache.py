"""NuRAPID cache: placement, distance replacement, promotion, timing.

Uses a tiny 64 KB / 4-d-group / 4-way configuration (256 frames per
d-group) so structural behaviours are exhaustively reachable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)

KB = 1024


def tiny(promotion=PromotionPolicy.NEXT_FASTEST, **overrides):
    defaults = dict(
        capacity_bytes=64 * KB,
        block_bytes=64,
        associativity=4,
        n_dgroups=4,
        promotion=promotion,
        distance_replacement=DistanceReplacementKind.RANDOM,
        seed=7,
        name="tiny",
    )
    defaults.update(overrides)
    return NuRAPIDCache(NuRAPIDConfig(**defaults))


def addr(set_index, tag, block=64, sets=256):
    return (tag * sets + set_index) * block


class TestPlacement:
    def test_fill_places_in_fastest_dgroup(self):
        c = tiny()
        c.fill(0x1000)
        assert c.dgroup_of(0x1000) == 0

    def test_all_ways_of_a_set_can_be_fast(self):
        """The headline flexibility: a whole hot set in d-group 0."""
        c = tiny()
        for tag in range(4):
            c.fill(addr(5, tag))
        assert all(c.dgroup_of(addr(5, t)) == 0 for t in range(4))

    def test_demotion_chain_when_dgroup0_full(self):
        c = tiny()
        frames = c.config.frames_per_dgroup  # 256
        for i in range(frames + 1):
            c.fill(i * 64)
        occupancy = c.dgroup_occupancy()
        assert occupancy[0][0] == frames  # d-group 0 stays full
        assert occupancy[1][0] == 1  # one block was demoted
        assert c.stats.get("demotions") == 1
        c.check_invariants()

    def test_demotion_never_evicts(self):
        c = tiny()
        n = c.config.frames_per_dgroup + 50
        for i in range(n):
            c.fill(i * 64)
        assert c.resident_blocks() == n
        assert c.stats.get("evictions") == 0

    def test_set_conflict_evicts_lru(self):
        c = tiny()
        for tag in range(5):
            c.fill(addr(3, tag))
        assert not c.contains(addr(3, 0))
        assert c.resident_blocks() == 4
        assert c.stats.get("evictions") == 1

    def test_eviction_frees_frame_for_chain(self):
        """After an eviction the demotion chain ends at the freed frame."""
        c = tiny()
        # Fill d-group 0 completely with conflicting + spread blocks.
        for i in range(c.config.frames_per_dgroup):
            c.fill(i * 64)
        before = c.resident_blocks()
        # A fill into a full set: evict one, place one; occupancy steady.
        set_of_first = 0
        c.fill(addr(set_of_first, 9))
        c.check_invariants()
        assert c.resident_blocks() <= before + 1

    def test_duplicate_fill_is_noop(self):
        c = tiny()
        c.fill(0x1000)
        assert c.fill(0x1000) == 0
        assert c.resident_blocks() == 1

    def test_dirty_eviction_reports_writeback(self):
        c = tiny()
        for tag in range(4):
            c.fill(addr(3, tag))
        c.access(addr(3, 0), is_write=True)
        # Make tag 0 LRU again, then overflow the set.
        for tag in range(1, 4):
            c.access(addr(3, tag))
        writebacks = c.fill(addr(3, 9))
        assert writebacks == 1
        assert c.stats.get("writebacks") == 1


class TestAccess:
    def test_miss_latency_is_tag_only(self):
        c = tiny()
        r = c.access(0x9999)
        assert not r.hit
        assert r.latency == c.geometry.tag_cycles

    def test_hit_latency_matches_dgroup(self):
        c = tiny()
        c.fill(0x1000)
        r = c.access(0x1000, now=1000.0)
        assert r.hit
        assert r.dgroup == 0
        assert r.latency == c.geometry.hit_latency(0)

    def test_write_hit_sets_dirty(self):
        c = tiny()
        c.fill(0x1000)
        c.access(0x1000, is_write=True)
        assert c.lookup(0x1000).dirty

    def test_port_contention_delays_back_to_back_hits(self):
        c = tiny()
        c.fill(0x1000)
        c.fill(0x2000)
        first = c.access(0x1000, now=10_000.0)
        second = c.access(0x2000, now=10_000.0)
        assert second.latency > first.latency

    def test_hits_counted_per_dgroup(self):
        c = tiny(promotion=PromotionPolicy.DEMOTION_ONLY)
        c.fill(0x1000)
        c.access(0x1000)
        c.access(0x1000)
        assert c.dgroup_hits.counts[0] == 2


class TestPromotion:
    def _with_block_in_dgroup1(self, promotion):
        """Build a cache with a known block demoted to d-group 1."""
        c = tiny(promotion=promotion, distance_replacement=DistanceReplacementKind.LRU)
        target = 0x100 * 64
        c.fill(target)
        # Fill d-group 0 with other blocks; LRU distance replacement
        # demotes the oldest (our target) first.
        for i in range(1, c.config.frames_per_dgroup + 1):
            c.fill((0x100 + i) * 64)
        assert c.dgroup_of(target) == 1
        return c, target

    def test_demotion_only_never_promotes(self):
        c, target = self._with_block_in_dgroup1(PromotionPolicy.DEMOTION_ONLY)
        c.access(target)
        assert c.dgroup_of(target) == 1
        assert c.stats.get("promotions") == 0

    def test_next_fastest_promotes_one_group(self):
        c, target = self._with_block_in_dgroup1(PromotionPolicy.NEXT_FASTEST)
        c.access(target)
        assert c.dgroup_of(target) == 0
        assert c.stats.get("promotions") == 1
        c.check_invariants()

    def test_promotion_swap_demotes_a_victim(self):
        c, target = self._with_block_in_dgroup1(PromotionPolicy.NEXT_FASTEST)
        occupancy_before = c.dgroup_occupancy()
        c.access(target)
        assert c.dgroup_occupancy() == occupancy_before  # pure swap
        assert c.stats.get("demotions") >= 1

    def test_fastest_promotes_straight_to_dgroup0(self):
        c = tiny(
            promotion=PromotionPolicy.FASTEST,
            distance_replacement=DistanceReplacementKind.LRU,
        )
        target = 0x100 * 64
        c.fill(target)
        # Push the target out two groups.
        for i in range(1, 2 * c.config.frames_per_dgroup + 1):
            c.fill((0x100 + i) * 64)
        assert c.dgroup_of(target) == 2
        c.access(target)
        assert c.dgroup_of(target) == 0
        c.check_invariants()

    def test_latency_reflects_old_dgroup_on_promoting_hit(self):
        c, target = self._with_block_in_dgroup1(PromotionPolicy.NEXT_FASTEST)
        r = c.access(target, now=50_000.0)
        assert r.dgroup == 1
        assert r.latency >= c.geometry.hit_latency(1)


class TestIdealMode:
    def test_constant_hit_latency(self):
        c = tiny(ideal_uniform=True, distance_replacement=DistanceReplacementKind.LRU)
        target = 0x100 * 64
        c.fill(target)
        for i in range(1, c.config.frames_per_dgroup + 1):
            c.fill((0x100 + i) * 64)
        r = c.access(target)
        assert r.latency == c.geometry.hit_latency(0)

    def test_no_port_queueing(self):
        c = tiny(ideal_uniform=True)
        c.fill(0x1000)
        c.fill(0x2000)
        a = c.access(0x1000, now=0.0)
        b = c.access(0x2000, now=0.0)
        assert a.latency == b.latency

    def test_miss_behaviour_unchanged(self):
        ideal = tiny(ideal_uniform=True)
        real = tiny(ideal_uniform=False)
        for i in range(600):
            a = (i * 37) % 2048 * 64
            ri = ideal.access(a)
            rr = real.access(a)
            assert ri.hit == rr.hit
            if not ri.hit:
                ideal.fill(a)
                real.fill(a)


class TestRestrictedPlacement:
    def test_blocks_stay_in_their_region(self):
        c = tiny(restricted_frames=64)  # 4 regions of 64 frames
        for i in range(1200):
            a = (i * 97) % 4096 * 64
            r = c.access(a)
            if not r.hit:
                c.fill(a)
        c.check_invariants()  # region membership checked inside

    def test_region_count(self):
        c = tiny(restricted_frames=64)
        assert c.config.n_regions == 4


class TestConfigValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            NuRAPIDConfig(capacity_bytes=1000, block_bytes=64)

    def test_bad_dgroup_split(self):
        with pytest.raises(ConfigurationError):
            NuRAPIDConfig(
                capacity_bytes=64 * KB, block_bytes=64, associativity=4, n_dgroups=3
            )

    def test_bad_restriction(self):
        with pytest.raises(ConfigurationError):
            NuRAPIDConfig(
                capacity_bytes=64 * KB,
                block_bytes=64,
                associativity=4,
                n_dgroups=4,
                restricted_frames=1000,
            )

    def test_region_set_balance_enforced(self):
        # More regions than sets can never be balanced: must be rejected.
        with pytest.raises(ConfigurationError):
            NuRAPIDConfig(
                capacity_bytes=64 * KB,
                block_bytes=64,
                associativity=8,
                n_dgroups=2,
                restricted_frames=1,
            )


class TestInvariantsUnderStress:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        promotion=st.sampled_from(list(PromotionPolicy)),
        kind=st.sampled_from(list(DistanceReplacementKind)),
    )
    def test_random_traffic_preserves_invariants(self, seed, promotion, kind):
        import random

        c = tiny(promotion=promotion, distance_replacement=kind, seed=seed)
        rng = random.Random(seed)
        now = 0.0
        for _ in range(800):
            a = rng.randrange(0, 4 * 64 * KB) & ~63
            r = c.access(a, is_write=rng.random() < 0.3, now=now)
            now += 7
            if not r.hit:
                c.fill(a, now=now)
        c.check_invariants()
        # Conservation: hits + misses == accesses.
        assert c.stats.get("hits") + c.stats.get("misses") == c.stats.get("accesses")


class TestEnergyAccounting:
    def test_tag_probe_charged_every_access(self):
        c = tiny()
        c.access(0x1000)
        c.fill(0x1000)
        c.access(0x1000)
        assert c.energy.count("tiny.tag_probe") == 2

    def test_fill_charges_dgroup0_write(self):
        c = tiny()
        c.fill(0x1000)
        assert c.energy.count("tiny.dg0.write") == 1

    def test_swap_charges_moves_both_ways(self):
        c = tiny(distance_replacement=DistanceReplacementKind.LRU)
        target = 0x100 * 64
        c.fill(target)
        for i in range(1, c.config.frames_per_dgroup + 1):
            c.fill((0x100 + i) * 64)
        c.access(target)  # promotes: moves 1->0 and 0->1
        assert c.energy.count("tiny.move.1->0") == 1
        assert c.energy.count("tiny.move.0->1") >= 1

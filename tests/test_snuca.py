"""S-NUCA: static mapping, no search, no movement."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nuca.snuca import SNUCACache

KB = 1024


def tiny():
    return SNUCACache(
        capacity_bytes=512 * KB, block_bytes=128, associativity=16, name="tiny-snuca"
    )


def addr(set_index, tag, sets=256):
    return (tag * sets + set_index) * 128


class TestStaticMapping:
    def test_bank_fixed_by_set(self):
        c = tiny()
        bank_a = c.bank_of_set(3)
        assert c.bank_of_set(3) is bank_a  # deterministic
        assert c.bank_of_set(3 + c.geometry.n_banks).index == bank_a.index

    def test_block_never_moves(self):
        c = tiny()
        a = addr(3, 1)
        c.fill(a)
        first = c.access(a).dgroup
        for _ in range(10):
            again = c.access(a).dgroup
        assert again == first

    def test_hit_latency_is_the_banks(self):
        c = tiny()
        a = addr(3, 1)
        c.fill(a)
        bank = c.bank_of_set(c._set_of(a))
        assert c.access(a, now=10_000.0).latency == bank.latency_cycles

    def test_miss_pays_the_same_bank(self):
        c = tiny()
        a = addr(3, 1)
        bank = c.bank_of_set(c._set_of(a))
        assert c.access(a, now=10_000.0).latency == bank.latency_cycles

    def test_different_sets_see_different_latencies(self):
        c = tiny()
        latencies = set()
        for index in range(0, c.n_sets, 13):
            latencies.add(c.bank_of_set(index).latency_cycles)
        assert len(latencies) > 3  # genuinely non-uniform


class TestReplacement:
    def test_lru_within_set(self):
        c = tiny()
        for tag in range(16):
            c.fill(addr(5, tag))
        c.access(addr(5, 0))
        c.fill(addr(5, 99))
        assert c.contains(addr(5, 0))
        assert not c.contains(addr(5, 1))

    def test_dirty_writeback(self):
        c = tiny()
        for tag in range(16):
            c.fill(addr(5, tag))
        c.access(addr(5, 0), is_write=True)
        for tag in range(1, 16):
            c.access(addr(5, tag))
        assert c.fill(addr(5, 99)) == 1

    def test_prewarm_and_reset(self):
        c = tiny()
        c.prewarm()
        assert sum(len(s) for s in c._sets) == 512 * KB // 128
        c.access(addr(0, 0))
        c.reset_stats()
        assert c.stats.get("accesses") == 0
        c.check_invariants()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SNUCACache(capacity_bytes=512 * KB, block_bytes=128, associativity=7)


class TestSystemIntegration:
    def test_runs_through_driver(self):
        from repro.sim import run_benchmark, snuca_config

        r = run_benchmark(snuca_config(), "wupwise", n_references=25_000, seed=2)
        assert r.ipc > 0
        assert r.dgroup_fractions  # per-row latency tiers reported

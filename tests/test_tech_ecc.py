"""SEC-DED codes and ECC interleaving plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.tech.ecc import (
    DecodeStatus,
    InterleavingPlan,
    SECDED,
    parity_bits_needed,
    protection_overhead,
)


class TestParityMath:
    def test_known_values(self):
        assert parity_bits_needed(4) == 3  # Hamming(7,4)
        assert parity_bits_needed(11) == 4  # Hamming(15,11)
        assert parity_bits_needed(64) == 7  # 64+7+1=72 with extended bit

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            parity_bits_needed(0)


class TestSECDED:
    def test_codeword_length_64(self):
        code = SECDED(64)
        assert code.codeword_bits == 72

    def test_clean_roundtrip(self):
        code = SECDED(16)
        for data in (0, 1, 0xBEEF, 0xFFFF):
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    def test_corrects_every_single_bit_error(self):
        code = SECDED(16)
        data = 0xA5C3
        word = code.encode(data)
        for bit in range(code.codeword_bits):
            result = code.decode(word ^ (1 << bit))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data
            assert result.corrected_position == bit + 1

    def test_detects_double_bit_errors(self):
        code = SECDED(16)
        word = code.encode(0x1234)
        for a, b in ((0, 1), (3, 17), (5, code.codeword_bits - 1)):
            corrupted = word ^ (1 << a) ^ (1 << b)
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    @settings(max_examples=60, deadline=None)
    @given(data=st.integers(0, 2**32 - 1), bit=st.integers(0, 38))
    def test_property_single_error_correction_32(self, data, bit):
        code = SECDED(32)
        assert code.codeword_bits == 39
        word = code.encode(data)
        result = code.decode(word ^ (1 << bit))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.integers(0, 2**16 - 1),
        bits=st.sets(st.integers(0, 21), min_size=2, max_size=2),
    )
    def test_property_double_error_detection(self, data, bits):
        code = SECDED(16)
        word = code.encode(data)
        for bit in bits:
            word ^= 1 << bit
        assert code.decode(word).status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_out_of_range_rejected(self):
        code = SECDED(8)
        with pytest.raises(ConfigurationError):
            code.encode(256)
        with pytest.raises(ConfigurationError):
            code.decode(1 << code.codeword_bits)


class TestInterleavingPlan:
    def test_bits_per_word_shrink_with_spread(self):
        values = [
            InterleavingPlan(16, 72, s).bits_per_word_per_subarray()
            for s in (1, 4, 16, 64, 128)
        ]
        assert values == sorted(values, reverse=True)
        assert values[0] == 72
        assert values[-1] == 1

    def test_subarray_loss_survival_threshold(self):
        assert not InterleavingPlan(16, 72, 64).survives_subarray_loss()
        assert InterleavingPlan(16, 72, 72).survives_subarray_loss()
        assert InterleavingPlan(16, 72, 128).survives_subarray_loss()

    def test_adjacent_upset_bounded_by_words_when_unspread(self):
        plan = InterleavingPlan(16, 72, 4)
        assert plan.widest_correctable_adjacent_upset() == 16
        assert plan.survives_adjacent_upset(16)
        assert not plan.survives_adjacent_upset(17)

    def test_full_spread_tolerates_whole_subarray(self):
        plan = InterleavingPlan(16, 72, 128)
        assert plan.widest_correctable_adjacent_upset() == plan.cells_per_subarray

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterleavingPlan(0, 72, 4)
        with pytest.raises(ConfigurationError):
            InterleavingPlan(16, 72, 4).survives_adjacent_upset(-1)


class TestSECDEDEdgeCases:
    def test_triple_error_can_alias_to_wrong_correction(self):
        # Flipping codeword positions 1, 2, 3 makes the syndrome
        # 1^2^3 = 0 while the overall parity goes odd: the decoder
        # sees a single-bit error in the overall parity bit and
        # reports CORRECTED — with wrong data, since position 3 is a
        # data bit.  SEC-DED guarantees nothing at 3+ errors; this
        # pins the aliasing behaviour the fault injector's oracle
        # (which knows the original data) classifies as MISCORRECTED.
        code = SECDED(16)
        data = 0x0F0F
        word = code.encode(data)
        for position in (1, 2, 3):
            word ^= 1 << (position - 1)
        result = code.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data != data
        assert result.corrected_position == code.codeword_bits

    def test_all_zero_word(self):
        for width in (1, 8, 64):
            code = SECDED(width)
            assert code.encode(0) == 0
            result = code.decode(0)
            assert result.status is DecodeStatus.CLEAN
            assert result.data == 0

    def test_max_width_word(self):
        for width in (1, 8, 64):
            code = SECDED(width)
            data = (1 << width) - 1
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_property_roundtrip_any_width(self, data):
        width = data.draw(st.integers(1, 80), label="width")
        value = data.draw(st.integers(0, (1 << width) - 1), label="value")
        code = SECDED(width)
        clean = code.decode(code.encode(value))
        assert clean.status is DecodeStatus.CLEAN
        assert clean.data == value
        bit = data.draw(st.integers(0, code.codeword_bits - 1), label="bit")
        flipped = code.decode(code.encode(value) ^ (1 << bit))
        assert flipped.status is DecodeStatus.CORRECTED
        assert flipped.data == value


class TestProtectionOverhead:
    def test_classic_128b_block(self):
        bits, overhead = protection_overhead(128, word_bits=64)
        assert bits == 16 * 8  # 8 check bits per 64-bit word
        assert overhead == pytest.approx(0.125)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            protection_overhead(0)
        with pytest.raises(ConfigurationError):
            protection_overhead(100, word_bits=64)

"""Prewarm: the steady-state initial condition for all cache models."""

import pytest

from repro.common.errors import SimulationError
from repro.caches.setassoc_nonuniform import SetAssociativePlacementCache
from repro.caches.simple import SetAssociativeCache
from repro.floorplan.dgroups import build_nurapid_geometry, build_uniform_cache_spec
from repro.nuca.cache import DNUCACache
from repro.nuca.config import DNUCAConfig
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import NuRAPIDConfig

KB = 1024


class TestNuRAPIDPrewarm:
    def _cache(self):
        return NuRAPIDCache(
            NuRAPIDConfig(
                capacity_bytes=64 * KB, block_bytes=64, associativity=4,
                n_dgroups=4, name="pw",
            )
        )

    def test_fills_every_frame(self):
        c = self._cache()
        c.prewarm()
        assert c.resident_blocks() == c.config.n_blocks
        for occupied, total in c.dgroup_occupancy():
            assert occupied == total
        c.check_invariants()

    def test_dummies_spread_over_dgroups(self):
        c = self._cache()
        c.prewarm()
        # Every set has one dummy way in each d-group (assoc 4 / 4 groups).
        for way in range(4):
            addr = c.PREWARM_BASE + (way * c.config.n_sets + 0) * 64
            assert c.dgroup_of(addr) == way

    def test_fill_after_prewarm_triggers_demotion_chain(self):
        c = self._cache()
        c.prewarm()
        # First fill evicts the set's LRU dummy (the d-group-0 one),
        # whose freed frame absorbs the new block directly.
        c.fill(0x1000)
        assert c.dgroup_of(0x1000) == 0
        assert c.stats.get("evictions") == 1
        assert c.stats.get("demotions") == 0
        # Second fill to the same set evicts the d-group-1 dummy, so
        # placing in the (full) d-group 0 must run a demotion chain.
        sets = c.config.n_sets
        c.fill(0x1000 + sets * 64)
        assert c.stats.get("evictions") == 2
        assert c.stats.get("demotions") == 1
        c.check_invariants()

    def test_dummy_evictions_are_clean(self):
        c = self._cache()
        c.prewarm()
        assert c.fill(0x1000) == 0  # no writeback from the dummy

    def test_prewarm_twice_rejected(self):
        c = self._cache()
        c.prewarm()
        with pytest.raises(SimulationError):
            c.prewarm()

    def test_prewarm_requires_divisible_assoc(self):
        c = NuRAPIDCache(
            NuRAPIDConfig(
                capacity_bytes=64 * KB, block_bytes=64, associativity=4,
                n_dgroups=8, name="pw8",
            )
        )
        with pytest.raises(SimulationError):
            c.prewarm()


class TestDNUCAPrewarm:
    def _cache(self):
        return DNUCACache(
            DNUCAConfig(capacity_bytes=512 * KB, bank_bytes=64 * KB, name="pwn")
        )

    def test_fills_every_way(self):
        c = self._cache()
        c.prewarm()
        assert c.resident_blocks() == 512 * KB // 128
        c.check_invariants()

    def test_fill_after_prewarm_evicts_tail(self):
        c = self._cache()
        c.prewarm()
        c.fill(0x10000)
        assert c.stats.get("evictions") == 1
        assert c.level_of(0x10000) == c.config.chain_length - 1

    def test_prewarm_twice_rejected(self):
        c = self._cache()
        c.prewarm()
        with pytest.raises(SimulationError):
            c.prewarm()


class TestUniformPrewarm:
    def test_fills_all_ways(self):
        spec = build_uniform_cache_spec("u", 8 * KB, 64, 2, latency_cycles=5)
        c = SetAssociativeCache(spec)
        c.prewarm()
        assert c.occupancy() == 8 * KB // 64

    def test_prewarm_is_idempotent(self):
        spec = build_uniform_cache_spec("u", 8 * KB, 64, 2, latency_cycles=5)
        c = SetAssociativeCache(spec)
        c.prewarm()
        c.prewarm()  # skips resident dummies
        assert c.occupancy() == 8 * KB // 64


class TestSAPlacementPrewarm:
    def test_fills_all_ways(self):
        c = SetAssociativePlacementCache(
            capacity_bytes=64 * KB, block_bytes=64, associativity=4, n_dgroups=4,
            geometry=build_nurapid_geometry(
                n_dgroups=4, capacity_bytes=64 * KB, block_bytes=64, associativity=4
            ),
            name="pwsa",
        )
        c.prewarm()
        c.check_invariants()
        # Every way of set 0 is occupied.
        assert len(c._where[0]) == 4

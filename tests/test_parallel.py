"""The parallel cell executor, trace cache, and checkpoint batching.

The engine's one non-negotiable property is that ``jobs=N`` is
bit-identical to ``jobs=1`` — every test here that compares results
does so on exact ``run_result_to_dict`` dictionaries, not tolerances.
Grids are kept tiny (a few thousand references) so forking a real
worker pool stays within unit-test time.
"""

import json
import pickle

import pytest

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    UncorrectableDataError,
)
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.driver import run_suite
from repro.sim.parallel import CellTask, execute_cell, run_cells
from repro.sim.results import run_result_to_dict
from repro.sim.sweep import Sweep, SweepAxis
from repro.workloads.tracegen import TraceCache, generate_trace
from repro.workloads.spec2k import get_benchmark

REFS = 4_000


def build(n_dgroups, promotion):
    return nurapid_config(n_dgroups=n_dgroups, promotion=promotion)


def make_sweep(**kw):
    defaults = dict(
        axes=[
            SweepAxis("n_dgroups", (2, 4)),
            SweepAxis(
                "promotion",
                (PromotionPolicy.NEXT_FASTEST, PromotionPolicy.DEMOTION_ONLY),
            ),
        ],
        build=build,
        benchmarks=["wupwise", "twolf"],
        n_references=REFS,
    )
    defaults.update(kw)
    return Sweep(**defaults)


def point_dicts(points):
    """Exact-comparable form of a sweep's results."""
    return [
        {
            "coords": {k: str(v) for k, v in p.coordinates.items()},
            "outcomes": {b: o.to_dict() for b, o in p.outcomes.items()},
            "runs": {b: run_result_to_dict(r) for b, r in p.runs.items()},
        }
        for p in points
    ]


class TestSweepParallel:
    def test_jobs4_bit_identical_to_serial(self, tmp_path):
        serial = make_sweep().run(resume=False)
        parallel = make_sweep(
            jobs=4, trace_cache_dir=str(tmp_path / "traces")
        ).run(resume=False)
        assert point_dicts(serial) == point_dicts(parallel)

    def test_run_jobs_argument_overrides_constructor(self, tmp_path):
        sweep = make_sweep(trace_cache_dir=str(tmp_path / "traces"))
        assert point_dicts(sweep.run(jobs=2)) == point_dicts(make_sweep().run())

    def test_parallel_writes_resumable_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = make_sweep(
            checkpoint_path=path,
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
        ).run()
        assert json.load(open(path))["cells"]

        # A later serial run restores the parallel run's cells verbatim.
        calls = []
        resumed_sweep = make_sweep(checkpoint_path=path)
        resumed_sweep._run_cell = lambda *a, **kw: calls.append(a)  # noqa: E731
        resumed = resumed_sweep.run()
        assert not calls
        assert point_dicts(resumed) == point_dicts(first)

    def test_resume_after_kill_under_parallel(self, tmp_path):
        """A partially-written checkpoint (as a kill -9 would leave)
        resumes under jobs=2 to the exact uninterrupted results."""
        path = str(tmp_path / "ckpt.json")
        uninterrupted = make_sweep(checkpoint_path=path).run()

        payload = json.load(open(path))
        dropped = 0
        for key in list(payload["cells"]):
            if dropped < 3 and payload["cells"][key]:
                benchmark = sorted(payload["cells"][key])[0]
                del payload["cells"][key][benchmark]
                dropped += 1
        assert dropped == 3
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed = make_sweep(
            checkpoint_path=path,
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
        ).run()
        assert point_dicts(resumed) == point_dicts(uninterrupted)
        # The re-run cells were flushed back into the checkpoint.
        assert all(
            len(cells) == 2 for cells in json.load(open(path))["cells"].values()
        )

    def test_resume_after_kill_serial(self, tmp_path):
        """The same kill-resume contract must hold at jobs=1 — the
        degenerate serial path shares the checkpoint machinery."""
        path = str(tmp_path / "ckpt.json")
        uninterrupted = make_sweep(checkpoint_path=path).run()

        payload = json.load(open(path))
        key = sorted(payload["cells"])[0]
        benchmark = sorted(payload["cells"][key])[0]
        del payload["cells"][key][benchmark]
        with open(path, "w") as handle:
            json.dump(payload, handle)

        resumed = make_sweep(checkpoint_path=path).run()
        assert point_dicts(resumed) == point_dicts(uninterrupted)
        assert all(
            len(cells) == 2 for cells in json.load(open(path))["cells"].values()
        )

    def test_v1_checkpoint_resumes_and_upgrades_to_v2(self, tmp_path):
        """A format-v1 file ({"signature", "cells"}, no checksums)
        resumes under v2 without re-running its cells, and the next
        flush rewrites it as a checksummed, record-sealed v2 file."""
        path = str(tmp_path / "ckpt.json")
        uninterrupted = make_sweep(checkpoint_path=path).run()

        # Downgrade the file to v1: strip the envelope and the
        # per-record seals, and drop one cell so the resume must both
        # migrate and re-run.
        payload = json.load(open(path))
        cells = {
            key: {
                bench: {k: v for k, v in record.items() if k != "crc"}
                for bench, record in benches.items()
            }
            for key, benches in payload["cells"].items()
        }
        key = sorted(cells)[0]
        del cells[key][sorted(cells[key])[0]]
        with open(path, "w") as handle:
            json.dump({"signature": payload["signature"], "cells": cells}, handle)

        calls = []
        sweep = make_sweep(checkpoint_path=path)
        original = sweep._run_cell

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        sweep._run_cell = counting
        resumed = sweep.run()
        assert point_dicts(resumed) == point_dicts(uninterrupted)
        assert len(calls) == 1  # only the dropped cell re-ran

        upgraded = json.load(open(path))
        assert upgraded["format"] == 2
        assert "checksum" in upgraded
        assert all(
            "crc" in record
            for benches in upgraded["cells"].values()
            for record in benches.values()
        )


class TestCheckpointBatching:
    def _count_saves(self, sweep):
        saves = []
        original = sweep._save_checkpoint

        def counting(signature, cells):
            saves.append(len(json.dumps(cells)))
            original(signature, cells)

        sweep._save_checkpoint = counting
        return saves

    def test_serial_flushes_once_per_point(self, tmp_path):
        # 4 points x 2 benchmarks: 4 flushes, not 8 (the old
        # once-per-cell behavior whose rewrite I/O grew as cells^2).
        sweep = make_sweep(checkpoint_path=str(tmp_path / "c.json"))
        saves = self._count_saves(sweep)
        sweep.run()
        assert len(saves) == 4

    def test_checkpoint_every_one_restores_per_cell_flushes(self, tmp_path):
        sweep = make_sweep(
            checkpoint_path=str(tmp_path / "c.json"), checkpoint_every=1
        )
        saves = self._count_saves(sweep)
        sweep.run()
        assert len(saves) == 8

    def test_parallel_batches_flushes_too(self, tmp_path):
        sweep = make_sweep(
            checkpoint_path=str(tmp_path / "c.json"),
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
        )
        saves = self._count_saves(sweep)
        sweep.run()
        assert len(saves) == 4

    def test_final_partial_batch_still_flushed(self, tmp_path):
        # 8 cells with checkpoint_every=3: flushes at 3, 6, and the
        # 2-cell remainder on the way out.
        sweep = make_sweep(
            checkpoint_path=str(tmp_path / "c.json"), checkpoint_every=3
        )
        saves = self._count_saves(sweep)
        sweep.run()
        assert len(saves) == 3
        assert all(
            len(cells) == 2
            for cells in json.load(open(tmp_path / "c.json"))["cells"].values()
        )


class TestTraceCache:
    def test_hit_miss_counters(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        first, path = cache.fetch("twolf", 2_000, seed=3)
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.get("twolf", 2_000, seed=3)
        assert (cache.hits, cache.misses) == (1, 1)
        assert run_trace_dict(first) == run_trace_dict(again)

        # A second cache over the same directory hits the disk copy.
        other = TraceCache(str(tmp_path))
        other.get("twolf", 2_000, seed=3)
        assert (other.hits, other.misses) == (1, 0)
        assert path.endswith("twolf-r2000-s3-c1.npz")

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        a = cache.get("twolf", 2_000, seed=3)
        b = cache.get("twolf", 2_000, seed=4)
        c = cache.get("twolf", 2_000, seed=3, warm_set_conflict=4)
        assert cache.misses == 3
        assert run_trace_dict(a) != run_trace_dict(b)
        assert run_trace_dict(a) != run_trace_dict(c)

    def test_corrupted_file_regenerated(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        path = cache.ensure("twolf", 2_000, seed=3)
        with open(path, "wb") as handle:
            handle.write(b"this is not an npz archive")

        recovered = cache.get("twolf", 2_000, seed=3)
        assert cache.misses == 2  # the corrupted copy did not count as a hit
        expected = generate_trace(get_benchmark("twolf"), 2_000, seed=3)
        assert run_trace_dict(recovered) == run_trace_dict(expected)
        # ...and the disk copy was repaired in place.
        assert (cache.hits, cache.misses) == (0, 2)
        cache.get("twolf", 2_000, seed=3)
        assert cache.hits == 1

    def test_stale_content_rejected(self, tmp_path):
        # A file whose content disagrees with its key (e.g. after a
        # benchmark-profile edit changed generation) is regenerated.
        cache = TraceCache(str(tmp_path))
        wrong = generate_trace(get_benchmark("twolf"), 1_000, seed=3)
        wrong.save(cache.path_for("twolf", 2_000, seed=3))
        fixed = cache.get("twolf", 2_000, seed=3)
        assert cache.misses == 1
        assert len(fixed) == 2_000

    def test_prune_evicts_oldest_first(self, tmp_path):
        import os
        import time

        cache = TraceCache(str(tmp_path))
        paths = [cache.ensure("twolf", 1_000, seed=s) for s in (1, 2, 3)]
        for age, path in zip((300, 200, 100), paths):
            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        sizes = [os.path.getsize(p) for p in paths]
        removed = cache.prune(max_bytes=sizes[1] + sizes[2])
        assert removed == 1
        assert not os.path.exists(paths[0])
        assert os.path.exists(paths[1]) and os.path.exists(paths[2])
        assert cache.prune(max_bytes=0) == 2


def run_trace_dict(trace):
    return {
        "benchmark": trace.benchmark,
        "gaps": trace.gaps.tolist(),
        "addresses": trace.addresses.tolist(),
        "writes": trace.writes.tolist(),
    }


class TestRunCells:
    def _task(self, index=0, **kw):
        defaults = dict(
            index=index,
            config=nurapid_config(),
            benchmark="twolf",
            n_references=REFS,
            seed=1,
            warmup_fraction=0.4,
        )
        defaults.update(kw)
        return CellTask(**defaults)

    def test_payload_order_follows_submission(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        path = cache.ensure("twolf", REFS, seed=1)
        tasks = [self._task(index=i, trace_path=path) for i in (7, 3, 5)]
        payloads = run_cells(tasks, jobs=2)
        assert [p["index"] for p in payloads] == [7, 3, 5]
        assert all(p["outcome"]["status"] == "ok" for p in payloads)

    def test_jobs_validation(self):
        with pytest.raises(ConfigurationError):
            run_cells([self._task()], jobs=0)

    def test_isolated_error_becomes_failed_payload(self):
        bad = self._task(benchmark="no-such-benchmark")
        payload = execute_cell(bad)
        assert payload["outcome"]["status"] == "failed"
        assert payload["outcome"]["error_type"] == "ConfigurationError"
        assert payload["result"] is None

    def test_unisolated_error_raises_in_parent_pool(self):
        tasks = [
            self._task(index=0, n_references=1_000),
            self._task(index=1, n_references=1_000, benchmark="no-such",
                       isolate_errors=False),
        ]
        with pytest.raises(ReproError):
            run_cells(tasks, jobs=2)

    def test_errors_pickle_across_process_boundary(self):
        # UncorrectableDataError's init signature doesn't match args;
        # without __reduce__ the pool's result pickling would explode.
        exc = UncorrectableDataError(level="L2", address=0x1234, access_index=99)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, UncorrectableDataError)
        assert clone.address == 0x1234 and clone.access_index == 99


class TestRunSuite:
    def test_parallel_suite_matches_serial(self, tmp_path):
        kw = dict(n_references=REFS, seed=1, warmup_fraction=0.4)
        serial = run_suite(snuca_config(), ["twolf", "wupwise"], **kw)
        parallel = run_suite(
            snuca_config(),
            ["twolf", "wupwise"],
            jobs=2,
            trace_cache_dir=str(tmp_path / "traces"),
            **kw,
        )
        assert {b: run_result_to_dict(r) for b, r in serial.runs.items()} == {
            b: run_result_to_dict(r) for b, r in parallel.runs.items()
        }

    def test_suite_forwards_run_knobs(self, monkeypatch):
        # Regression: run_suite used to silently drop energy_model,
        # prewarm, and warm_set_conflict on the floor.
        import repro.sim.driver as driver
        from repro.cpu.wattch import ProcessorEnergyModel

        captured = []
        real = driver.run_benchmark

        def fake_run_benchmark(config, benchmark, **kw):
            captured.append((benchmark, kw))
            return real(config, benchmark, n_references=1_000, warmup_fraction=0.4)

        monkeypatch.setattr(driver, "run_benchmark", fake_run_benchmark)
        model = ProcessorEnergyModel(core_nj_per_instruction=99.0)
        driver.run_suite(
            snuca_config(),
            ["twolf"],
            n_references=2_000,
            energy_model=model,
            warm_set_conflict=4,
            prewarm=False,
        )
        assert len(captured) == 1
        _, kw = captured[0]
        assert kw["energy_model"] is model
        assert kw["warm_set_conflict"] == 4
        assert kw["prewarm"] is False


class TestRunMatrix:
    def test_parallel_matrix_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        from repro.experiments.common import Scale, clear_caches, run_matrix

        scale = Scale(name="tiny", n_references=REFS, warmup_fraction=0.4)
        configs = [nurapid_config(), snuca_config()]
        benchmarks = ["twolf", "wupwise"]

        clear_caches()
        serial = run_matrix(configs, benchmarks, scale, jobs=1)
        clear_caches()
        parallel = run_matrix(configs, benchmarks, scale, jobs=2)
        clear_caches()

        assert {
            c: {b: run_result_to_dict(r) for b, r in row.items()}
            for c, row in serial.items()
        } == {
            c: {b: run_result_to_dict(r) for b, r in row.items()}
            for c, row in parallel.items()
        }

    def test_default_jobs_respects_env_and_setter(self, monkeypatch):
        from repro.experiments.common import default_jobs, set_default_jobs

        set_default_jobs(None)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        set_default_jobs(6)
        assert default_jobs() == 6
        set_default_jobs(None)
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ConfigurationError):
            default_jobs()
        monkeypatch.delenv("REPRO_JOBS", raising=False)

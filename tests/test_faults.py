"""Runtime fault injection and graceful d-group degradation."""

import dataclasses

import pytest

from repro.common.errors import (
    ConfigurationError,
    FaultError,
    UncorrectableDataError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    HardFaultEvent,
    TransientOutcome,
    transient_rate_from_fit,
)
from repro.nurapid.cache import NuRAPIDCache


def tiny_plan(**kw):
    defaults = dict(seed=3)
    defaults.update(kw)
    return FaultPlan(**defaults)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_per_access=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_at_accesses=(0,))
        with pytest.raises(ConfigurationError):
            FaultPlan(max_upset_bits=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(interleave_subarrays=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(spare_subarrays_per_dgroup=-1)

    def test_hard_fault_event_validation(self):
        with pytest.raises(ConfigurationError):
            HardFaultEvent(at_access=0, dgroup=0, subarray=0)
        with pytest.raises(ConfigurationError):
            HardFaultEvent(at_access=5, dgroup=-1, subarray=0)

    def test_label_distinguishes_campaigns(self):
        a = FaultPlan(transient_per_access=1e-4)
        b = FaultPlan(transient_per_access=1e-4, seed=9)
        c = FaultPlan(hard_faults=(HardFaultEvent(10, 0, 0),))
        assert len({a.label(), b.label(), c.label()}) == 3

    def test_fit_conversion(self):
        # 1000 FIT/Mbit over 64 Mbit = 64000 upsets per 1e9 hours;
        # at 1e9 accesses/s the per-access probability is tiny but
        # positive, and scales linearly in the FIT rate.
        r1 = transient_rate_from_fit(1000.0, 64 * 2**20, 1e9)
        r2 = transient_rate_from_fit(2000.0, 64 * 2**20, 1e9)
        assert 0 < r1 < 1e-15
        assert r2 == pytest.approx(2 * r1)
        assert transient_rate_from_fit(1e30, 64 * 2**20, 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            transient_rate_from_fit(-1.0, 1, 1.0)


class TestInjectorTransients:
    def test_no_fault_plan_draws_nothing(self):
        injector = FaultInjector(tiny_plan(), "c")
        for i in range(50):
            assert injector.on_access(True, True) is None
        assert injector.accesses_seen == 50
        assert injector.stats.as_dict() == {}

    def test_misses_never_struck(self):
        injector = FaultInjector(
            tiny_plan(transient_at_accesses=tuple(range(1, 20))), "c"
        )
        for _ in range(19):
            assert injector.on_access(False, False) is None
        assert injector.stats.as_dict() == {}

    def test_single_bit_upsets_always_corrected(self):
        injector = FaultInjector(
            tiny_plan(transient_at_accesses=tuple(range(1, 101)), max_upset_bits=1),
            "c",
        )
        for _ in range(100):
            assert injector.on_access(True, True) is TransientOutcome.CORRECTED
        stats = injector.stats.as_dict()
        assert stats["upsets"] == 100
        assert stats["corrected"] == 100

    def test_wide_interleaving_corrects_every_multibit_strike(self):
        # The §3.1 guarantee at runtime: with >= codeword_bits (72)
        # subarrays, each word keeps one bit per subarray, so even a
        # 32-cell adjacent strike decodes corrected, every time.
        injector = FaultInjector(
            tiny_plan(
                transient_at_accesses=tuple(range(1, 201)),
                max_upset_bits=32,
                interleave_subarrays=128,
            ),
            "c",
        )
        for _ in range(200):
            assert injector.on_access(True, True) is TransientOutcome.CORRECTED
        assert injector.stats.as_dict()["corrected"] == 200

    def test_narrow_interleaving_produces_uncorrectables(self):
        plan = tiny_plan(
            transient_at_accesses=tuple(range(1, 201)),
            max_upset_bits=32,
            interleave_subarrays=8,
        )
        injector = FaultInjector(plan, "c")
        outcomes = [injector.on_access(True, False) for _ in range(200)]
        stats = injector.stats.as_dict()
        assert stats["upsets"] == 200
        assert stats.get("corrected", 0) > 0
        assert stats.get("detected_uncorrectable", 0) > 0
        assert outcomes.count(TransientOutcome.REFETCH) == stats[
            "clean_refetches"
        ]

    def test_dirty_uncorrectable_raises_typed_error(self):
        plan = tiny_plan(
            transient_at_accesses=tuple(range(1, 201)),
            max_upset_bits=32,
            interleave_subarrays=8,
        )
        injector = FaultInjector(plan, "L2tiny")
        with pytest.raises(UncorrectableDataError) as info:
            for _ in range(200):
                injector.on_access(True, True, address=0xCAFE40)
        err = info.value
        assert isinstance(err, FaultError)
        assert err.level == "L2tiny"
        assert err.address == 0xCAFE40
        assert err.access_index == injector.accesses_seen
        assert injector.stats.as_dict()["dirty_data_loss"] == 1

    def test_campaigns_replay_bit_for_bit(self):
        def campaign():
            injector = FaultInjector(
                tiny_plan(transient_per_access=0.2, max_upset_bits=32,
                          interleave_subarrays=8),
                "c",
            )
            outcomes = []
            for _ in range(300):
                try:
                    outcomes.append(injector.on_access(True, False))
                except UncorrectableDataError:
                    outcomes.append("raised")
            return outcomes, injector.stats.as_dict()

        assert campaign() == campaign()

    def test_different_seeds_differ(self):
        def outcomes(seed):
            injector = FaultInjector(
                tiny_plan(transient_per_access=0.2, seed=seed), "c"
            )
            return [injector.on_access(True, False) is not None for _ in range(200)]

        assert outcomes(1) != outcomes(2)


class TestInjectorHardFaults:
    def test_due_faults_pop_in_order(self):
        events = (
            HardFaultEvent(at_access=5, dgroup=1, subarray=2),
            HardFaultEvent(at_access=2, dgroup=0, subarray=1),
        )
        injector = FaultInjector(tiny_plan(hard_faults=events), "c", n_dgroups=2)
        assert injector.take_due_hard_faults() == []
        for _ in range(3):
            injector.on_access(False, False)
        assert injector.take_due_hard_faults() == [events[1]]
        for _ in range(3):
            injector.on_access(False, False)
        assert injector.take_due_hard_faults() == [events[0]]
        assert injector.take_due_hard_faults() == []

    def test_repair_then_retire_when_spares_run_out(self):
        events = tuple(
            HardFaultEvent(at_access=i + 1, dgroup=0, subarray=i) for i in range(3)
        )
        injector = FaultInjector(
            tiny_plan(hard_faults=events, spare_subarrays_per_dgroup=1), "c"
        )
        assert injector.repair_or_retire(events[0])
        assert not injector.repair_or_retire(events[1])
        assert not injector.repair_or_retire(events[2])
        stats = injector.stats.as_dict()
        assert stats["hard_faults_repaired"] == 1
        assert stats["hard_faults_unrepaired"] == 2

    def test_out_of_range_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(
                tiny_plan(hard_faults=(HardFaultEvent(1, 4, 0),)), "c", n_dgroups=4
            )
        with pytest.raises(ConfigurationError):
            FaultInjector(
                tiny_plan(hard_faults=(HardFaultEvent(1, 0, 64),)), "c", n_dgroups=1
            )


def drive(cache, n, base=0, write_every=0):
    """Access+fill a stream of distinct blocks; returns last result."""
    result = None
    for i in range(n):
        addr = base + i * cache.block_bytes
        is_write = bool(write_every) and i % write_every == 0
        result = cache.access(addr, is_write=is_write)
        if not result.hit:
            cache.fill(addr, dirty=is_write)
    return result


class TestNuRAPIDDegradation:
    def attach(self, cache, **kw):
        defaults = dict(data_subarrays_per_dgroup=4, spare_subarrays_per_dgroup=0)
        defaults.update(kw)
        return cache.attach_faults(tiny_plan(**defaults))

    def test_attach_twice_rejected(self, small_nurapid):
        self.attach(small_nurapid)
        with pytest.raises(ConfigurationError):
            small_nurapid.attach_faults(tiny_plan())

    def test_spare_absorbs_failure_without_capacity_loss(self, small_nurapid):
        self.attach(
            small_nurapid,
            hard_faults=(HardFaultEvent(at_access=10, dgroup=0, subarray=1),),
            spare_subarrays_per_dgroup=1,
        )
        small_nurapid.prewarm()
        drive(small_nurapid, 50)
        assert small_nurapid.retired_frames() == [0, 0, 0, 0]
        assert small_nurapid.stats.get("fault_frames_retired") == 0
        assert small_nurapid.fault_injector.stats.get("hard_faults_repaired") == 1
        small_nurapid.check_invariants()

    def test_retirement_shrinks_fastest_dgroup(self, small_nurapid):
        # 256 frames per d-group over 4 subarrays: one dead subarray
        # with no spares retires 64 frames of d-group 0.
        self.attach(
            small_nurapid,
            hard_faults=(HardFaultEvent(at_access=10, dgroup=0, subarray=2),),
        )
        small_nurapid.prewarm()
        drive(small_nurapid, 400)
        assert small_nurapid.retired_frames() == [64, 0, 0, 0]
        occupied, total = small_nurapid.dgroup_occupancy()[0]
        assert total == 256 and occupied <= 192
        small_nurapid.check_invariants()

    def test_dirty_lines_lost_are_counted_not_raised(self, small_nurapid):
        self.attach(
            small_nurapid,
            hard_faults=(HardFaultEvent(at_access=300, dgroup=0, subarray=0),),
        )
        small_nurapid.prewarm()
        drive(small_nurapid, 290, write_every=1)
        drive(small_nurapid, 20, base=1 << 30)
        stats = small_nurapid.stats.as_dict()
        assert stats["fault_frames_retired"] == 64
        assert stats.get("fault_lines_lost", 0) > 0
        assert stats.get("fault_dirty_lines_lost", 0) > 0
        small_nurapid.check_invariants()

    def test_whole_fastest_group_retired_keeps_running(self, small_nurapid):
        # The extreme degradation: every d-group-0 subarray dies with
        # no spares.  Fills route to d-group 1, promotions into the
        # dead group are blocked, and the run completes with valid
        # (degraded) results instead of crashing.
        self.attach(
            small_nurapid,
            hard_faults=tuple(
                HardFaultEvent(at_access=10 + i, dgroup=0, subarray=i)
                for i in range(4)
            ),
        )
        small_nurapid.prewarm()
        drive(small_nurapid, 1500)
        # Revisit a slice to exercise hits and promotion attempts.
        drive(small_nurapid, 200, base=500 * small_nurapid.block_bytes)
        assert small_nurapid.retired_frames()[0] == 256
        assert small_nurapid.dgroup_occupancy()[0] == (0, 256)
        stats = small_nurapid.stats.as_dict()
        assert stats.get("hits", 0) > 0
        assert small_nurapid.dgroup_hits.items()
        assert all(group != 0 for group, _ in small_nurapid.dgroup_hits.items())
        small_nurapid.check_invariants()

    def test_capacity_eviction_when_frames_outnumbered(self, small_nurapid):
        # After retirement the cache holds fewer frames (960) than the
        # tag side admits (1024): a fill into a non-full set must evict
        # for space instead of running the demotion chain off the end.
        self.attach(
            small_nurapid,
            hard_faults=(HardFaultEvent(at_access=5, dgroup=0, subarray=0),),
        )
        small_nurapid.prewarm()
        drive(small_nurapid, 2000)
        stats = small_nurapid.stats.as_dict()
        assert stats.get("fault_capacity_evictions", 0) > 0
        small_nurapid.check_invariants()

    def test_refetch_outcome_invalidates_and_misses(self, small_nurapid):
        self.attach(small_nurapid)
        small_nurapid.prewarm()
        drive(small_nurapid, 10)
        addr = 3 * small_nurapid.block_bytes
        assert small_nurapid.contains(addr)
        small_nurapid.fault_injector.on_access = (
            lambda hit, dirty, address=0: TransientOutcome.REFETCH
        )
        result = small_nurapid.access(addr)
        assert not result.hit
        assert not small_nurapid.contains(addr)
        assert small_nurapid.stats.get("fault_refetches") == 1
        small_nurapid.check_invariants()
        # The refetched fill reinstalls the block cleanly.
        small_nurapid.fill(addr)
        assert small_nurapid.contains(addr)

    def test_zero_plan_matches_no_plan_exactly(self, small_nurapid_config):
        def trajectory(with_plan):
            cache = NuRAPIDCache(small_nurapid_config)
            if with_plan:
                cache.attach_faults(tiny_plan())
            cache.prewarm()
            results = []
            now = 0.0
            for i in range(600):
                addr = (i % 400) * cache.block_bytes
                r = cache.access(addr, is_write=i % 7 == 0, now=now)
                if not r.hit:
                    cache.fill(addr, now=now, dirty=i % 7 == 0)
                now += 3.0
                results.append((r.hit, r.latency, r.dgroup, r.energy_nj))
            stats = {
                k: v
                for k, v in cache.stats.as_dict().items()
                if not k.startswith("fault_")
            }
            return results, stats, cache.energy.total_nj()

        assert trajectory(False) == trajectory(True)


class TestSimpleCacheFaults:
    def make(self):
        from repro.caches.simple import SetAssociativeCache
        from repro.floorplan.dgroups import build_uniform_cache_spec

        return SetAssociativeCache(
            build_uniform_cache_spec(
                name="u",
                capacity_bytes=16 * 1024,
                block_bytes=64,
                associativity=4,
                latency_cycles=5,
            )
        )

    def test_hard_fault_plans_rejected(self):
        cache = self.make()
        with pytest.raises(ConfigurationError):
            cache.attach_faults(tiny_plan(hard_faults=(HardFaultEvent(1, 0, 0),)))

    def test_refetch_drops_clean_line(self):
        cache = self.make()
        cache.attach_faults(tiny_plan())
        cache.fill(0)
        assert cache.contains(0)
        cache.fault_injector.on_access = (
            lambda hit, dirty, address=0: TransientOutcome.REFETCH
        )
        result = cache.access(0)
        assert not result.hit
        assert not cache.contains(0)
        assert cache.fault_refetches == 1
        assert cache.misses == 1

    def test_dirty_uncorrectable_raises(self):
        cache = self.make()
        cache.attach_faults(
            tiny_plan(
                transient_at_accesses=tuple(range(1, 201)),
                max_upset_bits=32,
                interleave_subarrays=8,
            )
        )
        cache.fill(0, dirty=True)
        with pytest.raises(UncorrectableDataError):
            for _ in range(200):
                cache.access(0)

    def test_zero_plan_matches_no_plan_exactly(self):
        def trajectory(with_plan):
            cache = self.make()
            if with_plan:
                cache.attach_faults(tiny_plan())
            results = []
            for i in range(500):
                addr = (i % 300) * 64
                r = cache.access(addr, is_write=i % 5 == 0)
                if not r.hit:
                    cache.fill(addr, dirty=i % 5 == 0)
                results.append((r.hit, r.latency, r.energy_nj))
            return results, cache.hits, cache.misses, cache.writebacks

        assert trajectory(False) == trajectory(True)


class TestSystemIntegration:
    def test_fault_config_names_encode_the_campaign(self):
        from repro.sim.config import base_config, nurapid_config

        plan = tiny_plan(transient_per_access=1e-4)
        assert base_config(plan).name != base_config().name
        assert nurapid_config(faults=plan).name != nurapid_config().name

    def test_faults_rejected_for_unmodeled_kinds(self):
        from repro.sim.config import SystemConfig

        with pytest.raises(ConfigurationError):
            SystemConfig(name="x", l2_kind="sa-nuca", faults=tiny_plan())
        with pytest.raises(ConfigurationError):
            SystemConfig(
                name="x",
                l2_kind="base",
                faults=tiny_plan(hard_faults=(HardFaultEvent(1, 0, 0),)),
            )

    def test_degraded_run_completes_with_valid_result(self):
        from repro.sim.config import nurapid_config
        from repro.sim.driver import run_benchmark

        plan = tiny_plan(
            hard_faults=tuple(
                HardFaultEvent(at_access=(i + 1) * 20, dgroup=0, subarray=i)
                for i in range(4)
            ),
            data_subarrays_per_dgroup=8,
            spare_subarrays_per_dgroup=1,
        )
        result = run_benchmark(
            nurapid_config(faults=plan), "twolf", n_references=20_000
        )
        assert result.ipc > 0
        assert result.stats["fault_hard_faults_unrepaired"] == 3.0
        assert result.stats["fault_frames_retired_total"] == 3 * 16384 / 8

    def test_no_fault_run_is_bit_identical_to_seed_behavior(self):
        from repro.sim.config import nurapid_config
        from repro.sim.driver import run_benchmark

        plain = run_benchmark(nurapid_config(), "art", n_references=15_000)
        zero = dataclasses.replace(
            nurapid_config(faults=tiny_plan()), name=nurapid_config().name
        )
        armed = run_benchmark(zero, "art", n_references=15_000)
        assert armed.cycles == plain.cycles
        assert armed.instructions == plain.instructions
        assert armed.l2_hits == plain.l2_hits
        assert armed.l2_misses == plain.l2_misses
        assert armed.lower_energy_nj == plain.lower_energy_nj
        assert armed.dgroup_fractions == plain.dgroup_fractions
        for key, value in plain.stats.items():
            assert armed.stats[key] == value

"""D-NUCA: search policies, bubble promotion, tail insertion, ss-array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.nuca.cache import DNUCACache
from repro.nuca.config import DNUCAConfig, SearchPolicy
from repro.nuca.smart_search import SmartSearchArray

KB = 1024


def tiny(policy=SearchPolicy.SS_PERFORMANCE, **overrides):
    defaults = dict(
        capacity_bytes=512 * KB,
        block_bytes=128,
        associativity=16,
        bank_bytes=64 * KB,
        chain_length=8,
        policy=policy,
        seed=7,
        name="tiny-nuca",
    )
    defaults.update(overrides)
    return DNUCACache(DNUCAConfig(**defaults))


def addr(set_index, tag, block=128, sets=256):
    return (tag * sets + set_index) * block


class TestInsertion:
    def test_tail_insertion_places_in_slowest_bank(self):
        c = tiny()
        c.fill(0x10000)
        assert c.level_of(0x10000) == c.config.chain_length - 1

    def test_head_insertion_places_in_fastest_bank(self):
        c = tiny(tail_insertion=False)
        c.fill(0x10000)
        assert c.level_of(0x10000) == 0

    def test_eviction_takes_slowest_way(self):
        c = tiny()
        # 2 ways per bank: fill 3 blocks into one set's tail.
        for tag in range(3):
            c.fill(addr(9, tag))
        # tag 0 was the tail's LRU and must have been evicted.
        assert not c.contains(addr(9, 0))
        assert c.contains(addr(9, 1)) and c.contains(addr(9, 2))
        assert c.stats.get("evictions") == 1

    def test_eviction_is_not_global_lru(self):
        """The bubble victim may not be the set's LRU block (paper §2.2)."""
        c = tiny()
        hot = addr(9, 0)
        c.fill(hot)
        c.access(hot)  # promote it one level away from the tail
        assert c.level_of(hot) == 6
        cold = addr(9, 1)
        c.fill(cold)
        # Set LRU is arguably `cold` after hot's touch, but tail
        # eviction targets the tail bank where only `cold` lives.
        c.fill(addr(9, 2))
        c.fill(addr(9, 3))
        assert c.contains(hot)
        assert not c.contains(cold)

    def test_dirty_tail_eviction_reports_writeback(self):
        c = tiny()
        victim = addr(9, 0)
        c.fill(victim, dirty=True)
        c.fill(addr(9, 1))
        writebacks = c.fill(addr(9, 2))
        assert writebacks == 1


class TestPromotion:
    def test_hit_promotes_one_level(self):
        c = tiny()
        a = 0x10000
        c.fill(a)
        start = c.level_of(a)
        c.access(a)
        assert c.level_of(a) == start - 1
        c.check_invariants()

    def test_repeated_hits_bubble_to_fastest(self):
        c = tiny()
        a = 0x10000
        c.fill(a)
        for _ in range(c.config.chain_length - 1):
            c.access(a)
        assert c.level_of(a) == 0
        c.access(a)
        assert c.level_of(a) == 0  # already fastest; no further move

    def test_promotion_swaps_with_occupied_way(self):
        """With both level-0 ways full, a promotion displaces the LRU one."""
        c = tiny()
        a1, a2, b = addr(3, 0), addr(3, 1), addr(3, 2)
        for block in (a1, a2):
            c.fill(block)
            for _ in range(7):
                c.access(block)
        assert c.level_of(a1) == 0 and c.level_of(a2) == 0
        c.fill(b)
        for _ in range(6):
            c.access(b)  # b at level 1
        c.access(a2)  # make a1 the level-0 LRU
        c.access(b)  # b swaps into level 0, displacing a1 to level 1
        assert c.level_of(b) == 0
        assert c.level_of(a1) == 1
        assert c.level_of(a2) == 0
        assert c.stats.get("demotions") >= 1
        c.check_invariants()

    def test_promotion_disabled(self):
        c = tiny(promote_on_hit=False)
        a = 0x10000
        c.fill(a)
        c.access(a)
        assert c.level_of(a) == c.config.chain_length - 1


class TestSearchPolicies:
    def test_ss_performance_early_miss_latency(self):
        c = tiny(policy=SearchPolicy.SS_PERFORMANCE)
        r = c.access(0x77000)
        assert not r.hit
        assert r.latency == c.geometry.ss_latency_cycles
        assert c.stats.get("early_misses") == 1

    def test_ss_performance_probes_every_bank(self):
        c = tiny(policy=SearchPolicy.SS_PERFORMANCE)
        c.fill(0x10000)
        c.access(0x10000)
        # 7 probes + 1 data read on the hit access; the fill itself
        # does not probe.
        assert c.stats.get("bank_probes") == 7

    def test_ss_energy_skips_banks_on_clean_miss(self):
        c = tiny(policy=SearchPolicy.SS_ENERGY)
        r = c.access(0x77000)
        assert not r.hit
        assert c.stats.get("bank_probes", ) == 0
        assert r.latency == c.geometry.ss_latency_cycles

    def test_ss_energy_hit_probes_up_to_the_block(self):
        c = tiny(policy=SearchPolicy.SS_ENERGY)
        c.fill(0x10000)
        r = c.access(0x10000)
        assert r.hit
        # Only the one candidate bank is touched (no false hits here).
        assert c.stats.get("dgroup_accesses") >= 1

    def test_incremental_searches_without_ss_array(self):
        c = tiny(policy=SearchPolicy.INCREMENTAL)
        c.fill(0x10000)
        r = c.access(0x10000)
        assert r.hit
        # Probed all 7 closer banks before finding it at the tail.
        assert c.stats.get("bank_probes") == 7

    def test_hit_latency_reflects_bank(self):
        c = tiny(policy=SearchPolicy.SS_PERFORMANCE)
        a = 0x10000
        c.fill(a)
        tail_bank = c._bank_of(c._set_of(a), c.config.chain_length - 1)
        r = c.access(a, now=10_000.0)
        assert r.latency >= tail_bank.latency_cycles

    def test_promoted_block_hits_faster(self):
        c = tiny(policy=SearchPolicy.SS_PERFORMANCE)
        a = 0x10000
        c.fill(a)
        slow = c.access(a, now=10_000.0).latency
        for _ in range(7):
            c.access(a, now=20_000.0)
        fast = c.access(a, now=50_000.0).latency
        assert fast < slow


class TestSmartSearchArray:
    def test_candidates_track_residency(self):
        ss = SmartSearchArray(256, 8, 7, 128)
        ss.insert(3, addr(3, 1), 5)
        assert ss.candidate_levels(3, addr(3, 1)) == [5]
        ss.move(3, addr(3, 1), 2)
        assert ss.candidate_levels(3, addr(3, 1)) == [2]
        ss.remove(3, addr(3, 1))
        assert ss.candidate_levels(3, addr(3, 1)) == []

    def test_partial_tags_can_alias(self):
        ss = SmartSearchArray(256, 8, 7, 128)
        a = addr(3, 1)
        b = addr(3, 1 + 128)  # tags differ by exactly 2^7: same partial
        assert ss.partial_tag(a) == ss.partial_tag(b)
        ss.insert(3, a, 4)
        assert ss.candidate_levels(3, b) == [4]  # a false candidate

    def test_distinct_partials_do_not_match(self):
        ss = SmartSearchArray(256, 8, 7, 128)
        a, b = addr(3, 1), addr(3, 2)
        ss.insert(3, a, 4)
        assert ss.candidate_levels(3, b) == []

    def test_mirror_errors(self):
        from repro.common.errors import SimulationError

        ss = SmartSearchArray(256, 8, 7, 128)
        with pytest.raises(SimulationError):
            ss.remove(0, 0x123)
        with pytest.raises(SimulationError):
            ss.move(0, 0x123, 1)


class TestInvariantsAndConfig:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 500),
        policy=st.sampled_from(list(SearchPolicy)),
    )
    def test_random_traffic_preserves_invariants(self, seed, policy):
        import random

        c = tiny(policy=policy, seed=seed)
        rng = random.Random(seed)
        now = 0.0
        for _ in range(600):
            a = rng.randrange(0, 2 * 512 * KB) & ~127
            r = c.access(a, is_write=rng.random() < 0.3, now=now)
            now += 9
            if not r.hit:
                c.fill(a, now=now)
        c.check_invariants()
        assert c.stats.get("hits") + c.stats.get("misses") == c.stats.get("accesses")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DNUCAConfig(capacity_bytes=512 * KB, associativity=10, chain_length=8)
        with pytest.raises(ConfigurationError):
            DNUCAConfig(capacity_bytes=512 * KB + 1)
        with pytest.raises(ConfigurationError):
            DNUCAConfig(ss_partial_bits=0)

    def test_reset_stats_keeps_contents(self):
        c = tiny()
        c.fill(0x10000)
        c.access(0x10000)
        c.reset_stats()
        assert c.contains(0x10000)
        assert c.stats.get("accesses") == 0
        assert c.energy.total_nj() == 0.0

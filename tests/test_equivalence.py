"""Cross-model equivalence properties.

The strongest correctness checks available: configured to degenerate
points, the sophisticated models must reproduce simpler ones exactly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.simple import SetAssociativeCache
from repro.floorplan.dgroups import build_uniform_cache_spec
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)

KB = 1024


def reference_cache():
    spec = build_uniform_cache_spec(
        "ref", 64 * KB, 64, 4, latency_cycles=10, sequential_tag_data=True
    )
    return SetAssociativeCache(spec)


def one_dgroup_nurapid():
    """With one d-group there is no distance dimension left: placement
    is trivial and data replacement is plain per-set LRU."""
    return NuRAPIDCache(
        NuRAPIDConfig(
            capacity_bytes=64 * KB,
            block_bytes=64,
            associativity=4,
            n_dgroups=1,
            promotion=PromotionPolicy.DEMOTION_ONLY,
            distance_replacement=DistanceReplacementKind.LRU,
            name="degenerate",
        )
    )


class TestNuRAPIDDegeneratesToLRU:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_hit_miss_stream_matches_reference(self, seed):
        nurapid = one_dgroup_nurapid()
        reference = reference_cache()
        rng = random.Random(seed)
        for _ in range(600):
            address = rng.randrange(0, 4 * 64 * KB) & ~63
            write = rng.random() < 0.3
            a = nurapid.access(address, is_write=write)
            b = reference.access(address, is_write=write)
            assert a.hit == b.hit, f"divergence at {address:#x}"
            if not a.hit:
                wb_a = nurapid.fill(address, dirty=write)
                victim = reference.fill(address, dirty=write)
                wb_b = 1 if victim is not None and victim.dirty else 0
                assert wb_a == wb_b
        nurapid.check_invariants()
        assert nurapid.stats.get("hits") == reference.hits
        assert nurapid.stats.get("misses") == reference.misses

    def test_single_dgroup_never_demotes(self):
        c = one_dgroup_nurapid()
        rng = random.Random(1)
        for _ in range(800):
            address = rng.randrange(0, 4 * 64 * KB) & ~63
            if not c.access(address).hit:
                c.fill(address)
        assert c.stats.get("demotions") == 0
        assert c.stats.get("promotions") == 0


class TestPromotionPoliciesAgreeOnContents:
    """Promotion moves data between d-groups but never changes *what*
    is resident: any two policies replay a trace with identical
    hit/miss streams (data replacement is LRU in both)."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_policies_share_residency(self, seed):
        caches = [
            NuRAPIDCache(
                NuRAPIDConfig(
                    capacity_bytes=64 * KB,
                    block_bytes=64,
                    associativity=4,
                    n_dgroups=4,
                    promotion=policy,
                    distance_replacement=DistanceReplacementKind.LRU,
                    seed=3,
                    name=f"p-{policy.value}",
                )
            )
            for policy in PromotionPolicy
        ]
        rng = random.Random(seed)
        for _ in range(500):
            address = rng.randrange(0, 4 * 64 * KB) & ~63
            results = [c.access(address) for c in caches]
            hits = {r.hit for r in results}
            assert len(hits) == 1
            if not results[0].hit:
                for c in caches:
                    c.fill(address)
        for c in caches:
            c.check_invariants()
        base = caches[0]
        for other in caches[1:]:
            assert other.stats.get("hits") == base.stats.get("hits")
            assert other.stats.get("misses") == base.stats.get("misses")


class TestIdealMatchesRealResidency:
    def test_ideal_flag_changes_latency_not_contents(self):
        real = NuRAPIDCache(
            NuRAPIDConfig(capacity_bytes=64 * KB, block_bytes=64,
                          associativity=4, n_dgroups=4, seed=5, name="r")
        )
        ideal = NuRAPIDCache(
            NuRAPIDConfig(capacity_bytes=64 * KB, block_bytes=64,
                          associativity=4, n_dgroups=4, seed=5,
                          ideal_uniform=True, name="i")
        )
        rng = random.Random(9)
        latency_diffs = 0
        for _ in range(600):
            address = rng.randrange(0, 3 * 64 * KB) & ~63
            a = real.access(address, now=0.0)
            b = ideal.access(address, now=0.0)
            assert a.hit == b.hit
            if a.hit and a.latency != b.latency:
                latency_diffs += 1
            if not a.hit:
                real.fill(address)
                ideal.fill(address)
        assert latency_diffs > 0  # latencies differ...
        assert real.stats.get("misses") == ideal.stats.get("misses")  # ...contents don't

"""Simulation-as-a-service: store, scheduler, protocol, and the server.

The service's contract is byte-identity: a grid run through the server
— cold, warm from the store, coalesced across clients, or resumed
after a server death — must produce exactly the JSON bytes a direct
``run_suite`` produces.  Every end-to-end test here compares canonical
JSON, not tolerances.  Grids are tiny (a few thousand references) so
booting a real HTTP server with real worker processes stays within
unit-test time.
"""

import dataclasses
import json
import threading

import pytest

from repro.common.errors import ConfigurationError
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    GridRequest,
    build_config,
    canonical_json,
    config_spec,
)
from repro.service.scheduler import FairShareScheduler, QuotaExceeded
from repro.service.server import ServerConfig, serve_in_thread
from repro.service.store import ResultStore
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.driver import run_suite
from repro.sim.parallel import CellTask, cell_fingerprint, memoizable_payload
from repro.sim.results import run_result_to_dict
from repro.sim.sweep import Sweep, SweepAxis
from repro.telemetry import TelemetryConfig
from repro.telemetry.registry import StatRegistry
from repro.telemetry.report import merge_payloads, render_report

REFS = 4_000
WARMUP = 0.4
BENCHMARKS = ["bzip2", "twolf"]

KEY_A = "a" * 64
KEY_B = "b" * 64
PAYLOAD = {"outcome": {"status": "ok", "attempts": 1}, "result": {"x": 1.5}}


def vectorized(config):
    # Pin the engine so fingerprints don't depend on $REPRO_ENGINE.
    return dataclasses.replace(config, engine="vectorized")


def direct_suites(configs, telemetry=None):
    return {
        c.name: run_suite(
            c, BENCHMARKS, n_references=REFS, seed=0,
            warmup_fraction=WARMUP, telemetry=telemetry,
        )
        for c in configs
    }


class TestResultStore:
    def test_roundtrip_and_counters(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)
        assert store.get(KEY_A) is None
        store.put(KEY_A, PAYLOAD)
        assert store.get(KEY_A) == PAYLOAD
        assert KEY_A in store and KEY_B not in store
        counters = registry.counters("result_store.")
        assert counters["result_store.misses"] == 1
        assert counters["result_store.writes"] == 1
        assert counters["result_store.hits"] == 1

    def test_put_is_idempotent(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)
        path = store.put(KEY_A, PAYLOAD)
        stamp = open(path, "rb").read()
        store.put(KEY_A, {"outcome": {"status": "ok", "attempts": 1},
                          "result": {"x": 999}})
        # Existing verified entries are never rewritten: payloads are
        # deterministic functions of the key.
        assert open(path, "rb").read() == stamp
        assert registry.counters("result_store.")["result_store.writes"] == 1

    def test_corruption_recovered_with_counter(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)
        path = store.put(KEY_A, PAYLOAD)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF  # bit-flip under the sha256 sidecar
        with open(path, "wb") as handle:
            handle.write(raw)
        assert store.get(KEY_A) is None  # miss, not garbage
        counters = registry.counters("result_store.")
        assert counters["result_store.corrupt_recovered"] == 1
        assert KEY_A not in store  # entry discarded for recompute

    def test_eviction_keeps_newest(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), max_entries=2, registry=registry)
        keys = [ch * 64 for ch in "abc"]
        for i, key in enumerate(keys):
            store.put(key, PAYLOAD)
        assert store.entries() == 2
        assert keys[2] in store  # the just-written entry always survives
        assert registry.counters("result_store.")["result_store.evicted"] == 1

    def test_bad_keys_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ConfigurationError):
            store.get("../../etc/passwd")
        with pytest.raises(ConfigurationError):
            store.put("short", PAYLOAD)


class TestFairShareScheduler:
    def drain(self, scheduler):
        import asyncio

        async def pull():
            out = []
            scheduler.close()
            while True:
                got = await scheduler.get()
                if got is None:
                    return out
                out.append(got)

        return asyncio.run(pull())

    def test_quota_enforced(self):
        scheduler = FairShareScheduler(quota=2)
        scheduler.put("a", 1)
        scheduler.put("a", 2)
        assert scheduler.room("a") == 0
        with pytest.raises(QuotaExceeded):
            scheduler.put("a", 3)
        scheduler.put("b", 1)  # other clients unaffected

    def test_drr_interleaves_clients(self):
        scheduler = FairShareScheduler(quota=16, quantum=10.0)
        for i in range(3):
            scheduler.put("a", f"a{i}", cost=10.0)
            scheduler.put("b", f"b{i}", cost=10.0)
        order = [client for client, _ in self.drain(scheduler)]
        # Equal costs, equal quantum: strict alternation.
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_drr_expensive_client_skips_turns(self):
        scheduler = FairShareScheduler(quota=16, quantum=10.0)
        scheduler.put("big", "B", cost=30.0)
        for i in range(3):
            scheduler.put("small", f"s{i}", cost=10.0)
        order = [client for client, _ in self.drain(scheduler)]
        # The 30-cost cell needs three quantum refills; the cheap
        # client's cells dispatch while it accumulates.
        assert order == ["small", "big", "small", "small"] or order == [
            "small", "small", "big", "small",
        ]
        assert order.count("small") == 3 and order.count("big") == 1

    def test_close_drains_then_none(self):
        scheduler = FairShareScheduler()
        scheduler.put("a", 1)
        items = self.drain(scheduler)
        assert [item for _, item in items] == [1]
        with pytest.raises(ConfigurationError):
            scheduler.put("a", 2)


class TestProtocol:
    def test_config_spec_builds_named_configs(self):
        spec = config_spec("nurapid", n_dgroups=8)
        config = build_config(spec)
        assert config.name.startswith("nurapid-8dg")
        assert build_config(config_spec("s-nuca")).name == "s-nuca"

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            build_config({"kind": "frobnicate"})
        with pytest.raises(ConfigurationError):
            build_config({"kind": "nurapid", "options": {"bogus_knob": 1}})
        with pytest.raises(ConfigurationError):
            build_config({"kind": "nurapid", "engine": "warp-drive"})

    def test_request_payload_roundtrip(self):
        request = GridRequest(
            configs=[config_spec("nurapid")],
            benchmarks=["bzip2"],
            client="alice",
            n_references=REFS,
            engine="fast",
            tag="t1",
        )
        again = GridRequest.from_payload(request.to_payload())
        assert again.to_payload() == request.to_payload()

    def test_unknown_fields_rejected(self):
        payload = GridRequest(
            configs=[config_spec("s-nuca")], benchmarks=["bzip2"]
        ).to_payload()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError):
            GridRequest.from_payload(payload)

    def test_engine_pinned_at_resolution(self):
        request = GridRequest(
            configs=[config_spec("nurapid", engine="legacy"),
                     config_spec("s-nuca")],
            benchmarks=["bzip2"],
        )
        engines = [c.engine for c in request.resolved_configs("fast")]
        # Spec engine wins, then the server default; never None.
        assert engines == ["legacy", "fast"]
        request2 = dataclasses.replace(request, engine="vectorized")
        assert [
            c.engine for c in request2.resolved_configs("fast")
        ] == ["vectorized", "vectorized"]

    def test_cells_in_run_suite_order(self):
        request = GridRequest(
            configs=[config_spec("nurapid"), config_spec("s-nuca")],
            benchmarks=["bzip2", "twolf"],
        )
        cells = [(c.name, b) for c, b in request.cells("vectorized")]
        assert [b for _, b in cells] == ["bzip2", "twolf", "bzip2", "twolf"]


class TestCellFingerprint:
    def probe(self, **overrides):
        base = dict(
            index=0, config=vectorized(nurapid_config()), benchmark="bzip2",
            n_references=REFS, seed=0, warmup_fraction=WARMUP,
        )
        base.update(overrides)
        return CellTask(**base)

    def test_execution_knobs_excluded(self):
        # Retry/budget knobs cannot influence a first-attempt success,
        # so they must not fragment the content address.
        a = cell_fingerprint(self.probe())
        b = cell_fingerprint(self.probe(max_retries=3, budget_s=10.0,
                                        reseed_step=7, isolate_errors=False,
                                        trace_path="/some/where.npz"))
        assert a == b

    def test_semantic_knobs_included(self):
        a = cell_fingerprint(self.probe())
        assert a != cell_fingerprint(self.probe(seed=1))
        assert a != cell_fingerprint(self.probe(n_references=REFS + 1))
        assert a != cell_fingerprint(
            self.probe(config=vectorized(snuca_config()))
        )
        assert a != cell_fingerprint(
            self.probe(telemetry=TelemetryConfig())
        )

    def test_inline_traces_not_addressable(self):
        from repro.workloads.spec2k import get_benchmark
        from repro.workloads.tracegen import generate_trace

        trace = generate_trace(get_benchmark("bzip2"), 100, seed=0)
        assert cell_fingerprint(self.probe(trace=trace)) is None

    def test_memoizable_payload_gate(self):
        ok = {"outcome": {"status": "ok", "attempts": 1}, "result": {}}
        assert memoizable_payload(ok)
        assert not memoizable_payload(
            {"outcome": {"status": "ok", "attempts": 2}, "result": {}}
        )
        assert not memoizable_payload(
            {"outcome": {"status": "failed", "attempts": 1}, "result": None}
        )
        assert not memoizable_payload({"result": {}})


class TestRunSuiteStore:
    def test_hits_are_byte_identical_and_skip_simulation(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)
        config = vectorized(nurapid_config())
        plain = run_suite(config, BENCHMARKS, n_references=REFS, seed=0,
                          warmup_fraction=WARMUP)
        first = run_suite(config, BENCHMARKS, n_references=REFS, seed=0,
                          warmup_fraction=WARMUP, result_store=store)
        assert registry.counters("result_store.")["result_store.writes"] == 2
        second = run_suite(config, BENCHMARKS, n_references=REFS, seed=0,
                           warmup_fraction=WARMUP, result_store=store)
        assert registry.counters("result_store.")["result_store.hits"] == 2
        for bench in BENCHMARKS:
            expected = canonical_json(run_result_to_dict(plain.runs[bench]))
            assert canonical_json(
                run_result_to_dict(first.runs[bench])) == expected
            assert canonical_json(
                run_result_to_dict(second.runs[bench])) == expected


class TestSweepStore:
    def test_sweep_shares_entries_with_run_suite(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)
        config = vectorized(nurapid_config())
        suite = run_suite(config, BENCHMARKS, n_references=REFS, seed=0,
                          warmup_fraction=WARMUP, result_store=store)
        sweep = Sweep(
            axes=[SweepAxis("seed", (0,))],
            build=lambda seed: vectorized(nurapid_config(seed=seed)),
            benchmarks=BENCHMARKS, n_references=REFS, seed=0,
            warmup_fraction=WARMUP, result_store=store,
        )
        points = sweep.run()
        # Every cell restored from the store: zero simulation work.
        assert registry.counters("result_store.")["result_store.hits"] == 2
        assert all(o.ok for o in points[0].outcomes.values())
        for bench in BENCHMARKS:
            assert canonical_json(
                run_result_to_dict(points[0].runs[bench])
            ) == canonical_json(run_result_to_dict(suite.runs[bench]))

    def test_sweep_publishes_for_later_sweeps(self, tmp_path):
        registry = StatRegistry()
        store = ResultStore(str(tmp_path), registry=registry)

        def make():
            return Sweep(
                axes=[SweepAxis("seed", (0,))],
                build=lambda seed: vectorized(nurapid_config(seed=seed)),
                benchmarks=["bzip2"], n_references=REFS, seed=0,
                warmup_fraction=WARMUP, result_store=store,
            )

        make().run()
        assert registry.counters("result_store.")["result_store.writes"] == 1
        make().run()
        assert registry.counters("result_store.")["result_store.hits"] == 1


@pytest.fixture(scope="class")
def service(tmp_path_factory):
    """One server shared by the class: booting pools is the slow part."""
    store_dir = tmp_path_factory.mktemp("service-store")
    registry = StatRegistry()
    config = ServerConfig(store_dir=str(store_dir), jobs=2)
    with serve_in_thread(config, registry=registry) as bg:
        client = ServiceClient(bg.url)
        client.wait_healthy()
        yield type("Ctx", (), {
            "bg": bg, "client": client, "registry": registry,
            "store_dir": str(store_dir), "config": config,
        })


def grid(client_name="anon", telemetry=False, **overrides):
    fields = dict(
        configs=[config_spec("nurapid"), config_spec("s-nuca")],
        benchmarks=BENCHMARKS,
        client=client_name,
        n_references=REFS,
        seed=0,
        warmup_fraction=WARMUP,
        engine="vectorized",
        telemetry=telemetry,
    )
    fields.update(overrides)
    return GridRequest(**fields)


class TestServerEndToEnd:
    CONFIGS = [vectorized(nurapid_config()), vectorized(snuca_config())]

    def test_grid_byte_identical_to_run_suite(self, service):
        direct = direct_suites(self.CONFIGS)
        submission = service.client.submit(grid("alice"))
        status = service.client.wait(str(submission["job"]))
        assert all(c["status"] in ("ok", "hit") for c in status["cells"])
        suites = ServiceClient.suites(status)
        for config in self.CONFIGS:
            for bench in BENCHMARKS:
                assert canonical_json(
                    run_result_to_dict(suites[config.name].runs[bench])
                ) == canonical_json(
                    run_result_to_dict(direct[config.name].runs[bench])
                )

    def test_warm_resubmission_does_zero_work(self, service):
        service.client.submit(grid("alice"))  # ensure warm (may be already)
        before = service.registry.counters("service.")
        submission = service.client.submit(grid("bob"))
        assert submission["done"] is True
        assert submission["memo_hits"] == 4
        after = service.registry.counters("service.")
        assert after.get("service.cells_enqueued", 0) == before.get(
            "service.cells_enqueued", 0
        )

    def test_events_replay_full_history(self, service):
        submission = service.client.submit(grid("alice"))
        events = list(service.client.events(str(submission["job"])))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted" and kinds[-1] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_stats_surface_store_and_queue(self, service):
        stats = service.client.stats()
        assert stats["store_entries"] >= 4
        assert "service.cells_submitted" in stats["counters"]
        assert stats["memo_hit_rate"] > 0.0


class TestServerConcurrency:
    def test_concurrent_identical_grids_one_entry_each(self, tmp_path):
        registry = StatRegistry()
        with serve_in_thread(
            ServerConfig(store_dir=str(tmp_path), jobs=2),
            registry=registry,
        ) as bg:
            probe = ServiceClient(bg.url)
            probe.wait_healthy()
            statuses = {}

            def run(name):
                client = ServiceClient(bg.url)
                submission = client.submit(grid(name, benchmarks=["bzip2"],
                                                configs=[config_spec("nurapid")]))
                statuses[name] = client.wait(str(submission["job"]))

            threads = [
                threading.Thread(target=run, args=(name,))
                for name in ("alice", "bob")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            store = ResultStore(str(tmp_path), registry=StatRegistry())
            # One cell, two clients: exactly one store entry...
            assert store.entries() == 1
            # ...and byte-identical payloads delivered to both.
            a = statuses["alice"]["cells"][0]["payload"]
            b = statuses["bob"]["cells"][0]["payload"]
            assert canonical_json(a) == canonical_json(b)
            counters = registry.counters("service.")
            # The duplicate either coalesced onto the in-flight twin or
            # hit the store — it never simulated twice.
            assert counters.get("service.cells_enqueued", 0) == 1

    def test_corrupted_entry_recovered_by_recompute(self, tmp_path):
        registry = StatRegistry()
        request = grid("alice", benchmarks=["bzip2"],
                       configs=[config_spec("nurapid")])
        with serve_in_thread(
            ServerConfig(store_dir=str(tmp_path), jobs=1),
            registry=registry,
        ) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            first = client.wait(str(client.submit(request)["job"]))
            store = ResultStore(str(tmp_path), registry=StatRegistry())
            key = first["cells"][0]["key"]
            path = store.path_for(key)
            raw = bytearray(open(path, "rb").read())
            raw[len(raw) // 2] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(raw)
            second = client.wait(str(client.submit(request)["job"]))
            assert second["cells"][0]["status"] == "ok"  # recomputed
            assert canonical_json(
                first["cells"][0]["payload"]
            ) == canonical_json(second["cells"][0]["payload"])
            counters = registry.counters("result_store.")
            assert counters["result_store.corrupt_recovered"] >= 1

    def test_restart_resumes_from_store(self, tmp_path):
        request = grid("alice")
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=2)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            first = client.wait(str(client.submit(request)["job"]))
        # Server gone (jobs and queue with it); the store survives.
        registry = StatRegistry()
        with serve_in_thread(
            ServerConfig(store_dir=str(tmp_path), jobs=2), registry=registry
        ) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            submission = client.submit(request)
            assert submission["done"] is True and submission["memo_hits"] == 4
            second = client.job(str(submission["job"]))
        for a, b in zip(first["cells"], second["cells"]):
            assert canonical_json(a["payload"]) == canonical_json(b["payload"])
        assert registry.counters("service.").get(
            "service.cells_enqueued", 0
        ) == 0

    def test_quota_rejects_whole_grid_atomically(self, tmp_path):
        with serve_in_thread(
            ServerConfig(store_dir=str(tmp_path), jobs=1, quota=2)
        ) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(grid("greedy"))  # 4 cells > quota 2
            assert excinfo.value.status == 429
            # Nothing partially admitted.
            assert client.stats()["queue_depth"] == 0

    def test_telemetry_report_bytes_match_direct(self, tmp_path):
        configs = [vectorized(nurapid_config()), vectorized(snuca_config())]
        direct = direct_suites(configs, telemetry=TelemetryConfig())
        pairs = [
            (f"{name}/{bench}", direct[name].runs[bench].telemetry)
            for name in sorted(direct)
            for bench in BENCHMARKS
        ]
        expected = render_report(merge_payloads(pairs))
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=2)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            status = client.wait(
                str(client.submit(grid("alice", telemetry=True))["job"])
            )
        suites = ServiceClient.suites(status)
        served_pairs = [
            (f"{name}/{bench}", suites[name].runs[bench].telemetry)
            for name in sorted(suites)
            for bench in BENCHMARKS
        ]
        assert render_report(merge_payloads(served_pairs)) == expected

    def test_estimate_returns_inline_and_schedules_exact(self, tmp_path):
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=1)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            submission = client.submit(
                grid("alice", benchmarks=["bzip2"],
                     configs=[config_spec("nurapid")], estimate=True)
            )
            estimates = submission["estimates"]
            assert len(estimates) == 1
            assert estimates[0]["outcome"]["status"] == "ok"
            assert estimates[0]["result"]["benchmark"] == "bzip2"
            # The exact cell is scheduled behind the estimate.
            status = client.wait(str(submission["job"]))
            assert status["cells"][0]["status"] in ("ok", "hit")

    def test_estimate_only_skips_exact(self, tmp_path):
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=1)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            submission = client.submit(
                grid("alice", benchmarks=["bzip2"],
                     configs=[config_spec("nurapid")],
                     estimate=True, exact=False)
            )
            assert submission["done"] is True
            assert submission["cells"] == 0
            assert len(submission["estimates"]) == 1

    def test_telemetry_with_approx_rejected(self, tmp_path):
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=1)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(grid("alice", engine="approx", telemetry=True))
            assert excinfo.value.status == 400

    def test_unknown_routes_and_jobs(self, tmp_path):
        with serve_in_thread(ServerConfig(store_dir=str(tmp_path), jobs=1)) as bg:
            client = ServiceClient(bg.url)
            client.wait_healthy()
            with pytest.raises(ServiceError) as excinfo:
                client.job("nonexistent")
            assert excinfo.value.status == 404

"""Shared fixtures: small cache configurations that run fast.

Unit tests use deliberately tiny caches (tens of KB) so exhaustive
behaviours — demotion chains, evictions, promotion swaps — happen
within a few hundred accesses.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)
from repro.nuca.config import DNUCAConfig, SearchPolicy

KB = 1024


@pytest.fixture
def rng():
    return DeterministicRNG(1234, "tests")


@pytest.fixture
def small_nurapid_config():
    """64 KB, 4-way, 4 d-groups, 64 B blocks: 1024 blocks, 256 sets."""
    return NuRAPIDConfig(
        capacity_bytes=64 * KB,
        block_bytes=64,
        associativity=4,
        n_dgroups=4,
        promotion=PromotionPolicy.NEXT_FASTEST,
        distance_replacement=DistanceReplacementKind.RANDOM,
        seed=7,
        name="tiny",
    )


@pytest.fixture
def small_nurapid(small_nurapid_config):
    from repro.nurapid.cache import NuRAPIDCache

    return NuRAPIDCache(small_nurapid_config)


@pytest.fixture
def small_dnuca_config():
    """512 KB, 16-way, 8 banks of 64 KB, 128 B blocks: 256 sets."""
    return DNUCAConfig(
        capacity_bytes=512 * KB,
        block_bytes=128,
        associativity=16,
        bank_bytes=64 * KB,
        chain_length=8,
        policy=SearchPolicy.SS_PERFORMANCE,
        seed=7,
        name="tiny-nuca",
    )


@pytest.fixture
def small_dnuca(small_dnuca_config):
    from repro.nuca.cache import DNUCACache

    return DNUCACache(small_dnuca_config)


def block_addr_for_set(set_index: int, n_sets: int, block_bytes: int, tag: int = 0) -> int:
    """Construct an address mapping to a given set with a given tag."""
    return (tag * n_sets + set_index) * block_bytes


@pytest.fixture
def addr_for_set():
    return block_addr_for_set

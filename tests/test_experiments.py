"""Experiment harness: registry, reports, and shrunk behavioral runs.

Behavioral experiments are monkeypatched down to two benchmarks at
smoke scale so the whole file stays fast while still exercising every
experiment's code path end to end.
"""

import json

import pytest

import repro.experiments as exp
from repro.experiments.common import (
    SMOKE,
    ExperimentReport,
    Scale,
    cached_run,
    clear_caches,
    pct,
    scale_by_name,
    shared_trace,
)
from repro.sim.config import base_config

TWO_BENCHMARKS = ["art", "wupwise"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def shrunk(monkeypatch):
    """Patch every experiment module to a 2-benchmark suite."""
    import repro.experiments.ablations as ab
    import repro.experiments.energy_delay as ed
    import repro.experiments.figure4 as f4
    import repro.experiments.figure5 as f5
    import repro.experiments.figure6 as f6
    import repro.experiments.figure7 as f7
    import repro.experiments.figure8 as f8
    import repro.experiments.figure9 as f9
    import repro.experiments.figure10 as f10
    import repro.experiments.lru_random as lr
    import repro.experiments.table3 as t3

    def names():
        return list(TWO_BENCHMARKS)

    for module in (f4, f5, f7, f9, f10, lr, ed, t3):
        monkeypatch.setattr(module, "suite_names", names, raising=False)
    for module in (f6, f8):
        monkeypatch.setattr(module, "suite_names", names)
        monkeypatch.setattr(module, "high_load_names", lambda: ["art"])
        monkeypatch.setattr(module, "low_load_names", lambda: ["wupwise"])
    monkeypatch.setattr(ab, "SUBSET", TWO_BENCHMARKS)
    return SMOKE


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        names = exp.experiment_names()
        for required in (
            "table2",
            "table3",
            "table4",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "lru_random",
            "energy_delay",
        ):
            assert required in names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            exp.run_experiment("figure99")

    def test_scale_by_name(self):
        assert scale_by_name("smoke") is SMOKE
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            scale_by_name("galactic")


class TestReportRendering:
    def test_text_and_json(self):
        report = ExperimentReport(
            experiment="x",
            title="T",
            paper_expectation="E",
            rows=[{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}],
            summary={"mean": 0.375},
            notes="n",
        )
        text = report.to_text()
        assert "== x: T ==" in text
        assert "paper: E" in text
        assert "mean" in text
        data = json.loads(report.to_json())
        assert data["rows"][1]["a"] == 2

    def test_column_order_preserves_first_seen(self):
        report = ExperimentReport("x", "t", "e", rows=[{"b": 1, "a": 2}, {"c": 3}])
        assert report.column_order() == ["b", "a", "c"]

    def test_pct(self):
        assert pct(1.059) == "+5.9%"
        assert pct(0.997) == "-0.3%"


class TestCaching:
    def test_shared_trace_is_cached(self):
        t1 = shared_trace("art", SMOKE)
        t2 = shared_trace("art", SMOKE)
        assert t1 is t2

    def test_cached_run_is_cached(self):
        r1 = cached_run(base_config(), "wupwise", SMOKE)
        r2 = cached_run(base_config(), "wupwise", SMOKE)
        assert r1 is r2

    def test_distinct_scales_not_conflated(self):
        other = Scale(name="other", n_references=SMOKE.n_references // 2,
                      warmup_fraction=SMOKE.warmup_fraction)
        r1 = cached_run(base_config(), "wupwise", SMOKE)
        r2 = cached_run(base_config(), "wupwise", other)
        assert r1 is not r2


class TestTechnologyExperiments:
    def test_table2_rows(self):
        report = exp.run_experiment("table2", SMOKE)
        assert len(report.rows) == 8
        measured = {r["operation (tag + access)"]: r["measured nJ"] for r in report.rows}
        assert measured["closest of 4 2MB d-groups"] < measured["farthest of 4 2MB d-groups"]

    def test_table4_matches_paper_column(self):
        report = exp.run_experiment("table4", SMOKE)
        col = [r["4 d-groups"] for r in report.rows]
        paper = [r["4 d-groups (paper)"] for r in report.rows]
        assert col == paper

    def test_ablation_seqtag(self):
        report = exp.run_experiment("ablation_seqtag", SMOKE)
        assert report.summary["parallel/sequential energy"] > 1.5


class TestBehavioralExperiments:
    """End-to-end runs at smoke scale on two benchmarks."""

    def test_table3(self, shrunk):
        report = exp.run_experiment("table3", shrunk)
        assert len(report.rows) == 2
        assert all(r["IPC"] > 0 for r in report.rows)

    def test_figure4(self, shrunk):
        report = exp.run_experiment("figure4", shrunk)
        assert report.summary["dist-assoc first-group"] > 0
        assert len(report.rows) == 4  # 2 benchmarks x 2 placements

    def test_figure5(self, shrunk):
        report = exp.run_experiment("figure5", shrunk)
        # Distance replacement never evicts: miss rates must agree.
        assert report.summary["max miss-rate spread across policies"] == pytest.approx(0.0)

    def test_figure6(self, shrunk):
        report = exp.run_experiment("figure6", shrunk)
        assert "next-fastest overall" in report.summary
        assert report.summary["ideal overall"] >= report.summary["next-fastest overall"] - 0.02

    def test_figure7(self, shrunk):
        report = exp.run_experiment("figure7", shrunk)
        assert report.summary["max miss-rate spread across d-group counts"] == pytest.approx(0.0)

    def test_figure8(self, shrunk):
        report = exp.run_experiment("figure8", shrunk)
        assert "4-d-group overall" in report.summary

    def test_figure9(self, shrunk):
        report = exp.run_experiment("figure9", shrunk)
        assert "NuRAPID 4dg vs D-NUCA mean" in report.summary

    def test_figure10(self, shrunk):
        report = exp.run_experiment("figure10", shrunk)
        assert 0.0 < report.summary["nurapid energy / dnuca energy"] < 1.0

    def test_energy_delay(self, shrunk):
        report = exp.run_experiment("energy_delay", shrunk)
        assert "nurapid mean ED vs base" in report.summary

    def test_lru_random(self, shrunk):
        report = exp.run_experiment("lru_random", shrunk)
        assert len(report.rows) == 2 * 6  # 2 benchmarks x 6 variants

    def test_ablation_policies(self, shrunk):
        report = exp.run_experiment("ablation_policies", shrunk)
        assert len(report.rows) == 9

    def test_ablation_pointers(self, shrunk):
        report = exp.run_experiment("ablation_pointers", shrunk)
        bits = [r["fwd pointer bits"] for r in report.rows]
        assert bits == sorted(bits, reverse=True)

    def test_ablation_dnuca_insert(self, shrunk):
        report = exp.run_experiment("ablation_dnuca_insert", shrunk)
        assert len(report.rows) == 2

    def test_ablation_faults(self, shrunk):
        report = exp.run_experiment("ablation_faults", shrunk)
        assert len(report.rows) == 7  # 2 archs x 3 rates + hard-fault row
        nurapid_rows = [r for r in report.rows if r["arch"] == "nurapid"]
        # Wide interleaving: every strike corrected, no cell ever fails.
        assert all(r["data loss"] == 0 for r in nurapid_rows)
        assert all(r["failed cells"] == 0 for r in nurapid_rows)
        # Hard faults beyond spares shrank d-group 0 without a crash.
        assert report.summary["dg0 frames retired (hard-fault row)"] > 0


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure9" in out

    def test_run_and_write(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4", "--scale", "smoke", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table4.txt").exists()
        assert (tmp_path / "table4.json").exists()
        assert "table4" in capsys.readouterr().out

    def test_unknown_name_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])


class TestTraceDiskCache:
    def test_roundtrip_via_env(self, tmp_path, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        clear_caches()
        first = shared_trace("wupwise", SMOKE)
        assert list(tmp_path.glob("*.npz"))
        clear_caches()
        second = shared_trace("wupwise", SMOKE)
        assert np.array_equal(first.addresses, second.addresses)

    def test_no_env_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        clear_caches()
        shared_trace("wupwise", SMOKE)
        assert not list(tmp_path.glob("*.npz"))


class TestLayoutAndExtensionAblations:
    def test_ablation_spares_shape(self):
        report = exp.run_experiment("ablation_spares", SMOKE)
        for row in report.rows:
            assert row["NuRAPID yield (4 domains)"] >= row["D-NUCA yield (128 domains)"]

    def test_ablation_ecc_shape(self):
        report = exp.run_experiment("ablation_ecc", SMOKE)
        spreads = [r["max bits/word in one subarray"] for r in report.rows]
        assert spreads == sorted(spreads, reverse=True)
        assert report.rows[-1]["survives whole-subarray loss"] is True

    def test_ablation_leakage(self, monkeypatch):
        import repro.experiments.ablation_leakage as al

        monkeypatch.setattr(al, "SUBSET", ["wupwise"])
        report = exp.run_experiment("ablation_leakage", SMOKE)
        saved = [row["leakage saved"] for row in report.rows]
        assert saved[0] == 0.0  # nothing gated
        assert saved == sorted(saved)  # gating more saves more

    def test_ablation_hysteresis(self, monkeypatch):
        import repro.experiments.ablation_hysteresis as ah

        monkeypatch.setattr(ah, "SUBSET", ["wupwise"])
        report = exp.run_experiment("ablation_hysteresis", SMOKE)
        moves = [row["moves per 1k L2 accesses"] for row in report.rows]
        assert moves == sorted(moves, reverse=True)  # hysteresis cuts moves

    def test_ablation_prefetch(self, monkeypatch):
        import repro.experiments.ablation_prefetch as ap

        monkeypatch.setattr(ap, "SUBSET", ["swim"])
        report = exp.run_experiment("ablation_prefetch", SMOKE)
        assert report.rows[0]["pf issued"] > 0

    def test_ablation_snuca(self, monkeypatch):
        import repro.experiments.ablation_snuca as asn

        monkeypatch.setattr(asn, "SUBSET", ["wupwise"])
        report = exp.run_experiment("ablation_snuca", SMOKE)
        assert len(report.rows) == 1
        assert "s-nuca (static)" in report.rows[0]

"""Coverage for smaller corners: replacer, results table, hierarchy
writeback edge cases, cacti organization geometry."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import DeterministicRNG
from repro.nurapid.config import DistanceReplacementKind
from repro.nurapid.replacement import DistanceReplacer
from repro.sim.results import format_fraction_table
from repro.tech.cacti import MiniCacti

KB = 1024


class TestDistanceReplacer:
    def _replacer(self, kind=DistanceReplacementKind.LRU):
        return DistanceReplacer(2, 2, kind, DeterministicRNG(1, "dr"))

    def test_tracks_per_dgroup_and_region(self):
        r = self._replacer()
        r.insert(0, 0, 5)
        r.insert(0, 1, 6)
        r.insert(1, 0, 7)
        assert r.tracked(0, 0) == 1
        assert r.tracked(0, 1) == 1
        assert r.tracked(1, 0) == 1
        assert r.tracked(1, 1) == 0

    def test_lru_victim_order(self):
        r = self._replacer()
        r.insert(0, 0, 10)
        r.insert(0, 0, 11)
        r.touch(0, 0, 10)
        assert r.select_victim(0, 0) == 11

    def test_selection_does_not_remove(self):
        r = self._replacer()
        r.insert(0, 0, 10)
        assert r.select_victim(0, 0) == 10
        assert r.tracked(0, 0) == 1

    def test_random_kind_selects_members(self):
        r = self._replacer(DistanceReplacementKind.RANDOM)
        for f in range(6):
            r.insert(0, 0, f)
        assert r.select_victim(0, 0) in range(6)

    def test_bounds_checked(self):
        r = self._replacer()
        with pytest.raises(ConfigurationError):
            r.insert(5, 0, 1)
        with pytest.raises(ConfigurationError):
            r.insert(0, 5, 1)
        with pytest.raises(SimulationError):
            r.remove(0, 0, 99)


class TestResultsFormatting:
    def test_format_fraction_table(self):
        rows = {"art": {0: 0.8, 1: 0.1}, "mcf": {0: 0.4}}
        miss = {"art": 0.1, "mcf": 0.5}
        text = format_fraction_table(rows, [0, 1], miss)
        assert "benchmark" in text
        assert "art" in text and "mcf" in text
        assert "80.0%" in text
        assert "50.0%" in text


class TestHierarchyEdgeCases:
    def _system(self):
        from repro.caches.hierarchy import CacheHierarchy, UniformLowerLevel
        from repro.caches.memory import MainMemory
        from repro.caches.simple import SetAssociativeCache
        from repro.floorplan.dgroups import build_uniform_cache_spec

        l1 = SetAssociativeCache(
            build_uniform_cache_spec("L1", 2 * KB, 32, 2, latency_cycles=3)
        )
        l2 = SetAssociativeCache(
            build_uniform_cache_spec("L2", 8 * KB, 128, 2, latency_cycles=11)
        )
        memory = MainMemory()
        return (
            CacheHierarchy(l1d=l1, lower=[UniformLowerLevel(l2)], memory=memory),
            l1,
            l2,
            memory,
        )

    def test_l1_writeback_missing_in_l2_goes_to_memory(self):
        from repro.common.types import Access, AccessType

        hierarchy, l1, l2, memory = self._system()
        base = 0x10000
        hierarchy.access(Access(base, AccessType.WRITE))
        # Evict the dirty line from the L2 so the L1 writeback misses.
        l2.invalidate(base)
        writes_before = memory.writes
        hierarchy._writeback_from_l1(base, now=100.0)
        assert memory.writes == writes_before + 1
        assert hierarchy.stats.get("l1_writebacks_to_memory") == 1

    def test_writeback_hit_stays_in_l2(self):
        from repro.common.types import Access, AccessType

        hierarchy, l1, l2, memory = self._system()
        base = 0x10000
        hierarchy.access(Access(base, AccessType.WRITE))
        writes_before = memory.writes
        hierarchy._writeback_from_l1(base, now=100.0)
        assert memory.writes == writes_before


class TestCactiOrganizations:
    def test_grid_covers_count(self):
        mc = MiniCacti()
        model = mc.data_array(1024 * KB, 128)
        org = model.organization
        assert org.grid_width * org.grid_height >= org.count

    def test_routing_distance_positive(self):
        mc = MiniCacti()
        org = mc.data_array(256 * KB, 128).organization
        assert org.routing_distance_mm > 0
        assert org.htree_levels >= 1

    def test_dimensions_scale_with_grid(self):
        mc = MiniCacti()
        small = mc.data_array(128 * KB, 128).organization
        large = mc.data_array(4096 * KB, 128).organization
        assert large.width_mm * large.height_mm > small.width_mm * small.height_mm

    def test_access_cycles_property(self):
        mc = MiniCacti()
        model = mc.data_array(256 * KB, 128)
        assert model.access_cycles == model.tech.ps_to_cycles(model.access_time_ps)
        assert model.read_energy_nj == pytest.approx(model.read_energy_pj / 1000.0)

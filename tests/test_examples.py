"""The examples must stay runnable: execute each with tiny inputs."""

import runpy
import sys

import pytest


def run_example(monkeypatch, capsys, path, argv):
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    # Shrink the loop so the example finishes in CI time.
    import random

    out_path = "examples/quickstart.py"
    source = open(out_path).read()
    assert "120_000" in source
    shrunk = source.replace("120_000", "8_000")
    namespace = {"__name__": "__main__", "random": random}
    exec(compile(shrunk, out_path, "exec"), namespace)
    out = capsys.readouterr().out
    assert "NuRAPID demo cache" in out
    assert "hits in d-group 0" in out


def test_compare_architectures(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "examples/compare_architectures.py",
        ["compare_architectures.py", "twolf", "40000"],
    )
    assert "benchmark: twolf" in out
    assert "base" in out and "dnuca" in out.lower()


def test_branch_predictor(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "examples/branch_predictor.py", ["branch_predictor.py"]
    )
    assert "hybrid" in out
    assert "mispredict rate" in out


def test_fault_resilience_checkpoint_and_resume(monkeypatch, capsys, tmp_path):
    # Shrink the grid's trace length so the example finishes in CI time.
    path = "examples/fault_resilience.py"
    source = open(path).read()
    assert "120_000" in source
    shrunk = source.replace("120_000", "20_000")
    checkpoint = str(tmp_path / "resilience.json")
    monkeypatch.setattr(sys, "argv", [path, "twolf", checkpoint])

    exec(compile(shrunk, path, "exec"), {"__name__": "__main__"})
    first = capsys.readouterr().out
    assert "wrote checkpoint" in first
    assert "nurapid rel IPC" in first

    exec(compile(shrunk, path, "exec"), {"__name__": "__main__"})
    second = capsys.readouterr().out
    assert "resumed from checkpoint" in second
    # Everything below the timing line is restored bit-identically.
    assert first.splitlines()[1:] == second.splitlines()[1:]


@pytest.mark.slow
def test_design_space(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "examples/design_space.py", ["design_space.py", "twolf"]
    )
    assert "d-groups" in out


def test_parallel_sweep(monkeypatch, capsys, tmp_path):
    import tempfile

    monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
    out = run_example(
        monkeypatch, capsys, "examples/parallel_sweep.py",
        ["parallel_sweep.py", "2", "6000"],
    )
    assert "bit-identical: True" in out

    # Second invocation finds the checkpoint and restores every cell.
    out = run_example(
        monkeypatch, capsys, "examples/parallel_sweep.py",
        ["parallel_sweep.py", "2", "6000"],
    )
    assert "resumed from checkpoint" in out
    assert "bit-identical: True" in out


def test_cmp_contention(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "examples/cmp_contention.py",
        ["cmp_contention.py", "twolf", "8000"],
    )
    assert "chip throughput" in out
    assert "scaling vs 1 core" in out
    assert "fairness (Jain)" in out
    assert "mixed twolf+mcf" in out


def test_simulation_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "examples/simulation_service.py",
        ["simulation_service.py", "6000"],
    )
    assert "byte-identical: True" in out
    assert "identical payloads: True" in out
    assert "4/4 cells from store" in out


@pytest.mark.slow
def test_custom_workload(monkeypatch, capsys):
    from repro.workloads.spec2k import SPEC2K_SUITE

    try:
        out = run_example(
            monkeypatch, capsys, "examples/custom_workload.py", ["custom_workload.py"]
        )
    finally:
        # The example registers its profiles in the global suite;
        # remove them so suite-shape tests stay valid.
        SPEC2K_SUITE.pop("fits2mb", None)
        SPEC2K_SUITE.pop("spills2mb", None)
    assert "fits2mb" in out

"""Multi-level hierarchy composition: miss paths, fills, writebacks."""

import pytest

from repro.common.types import Access, AccessType
from repro.caches.hierarchy import CacheHierarchy, UniformLowerLevel
from repro.caches.memory import MainMemory
from repro.caches.simple import SetAssociativeCache
from repro.floorplan.dgroups import UniformCacheSpec

KB = 1024


def make_level(name, capacity, block, assoc, latency):
    spec = UniformCacheSpec(
        name=name,
        capacity_bytes=capacity,
        block_bytes=block,
        associativity=assoc,
        latency_cycles=latency,
        read_energy_nj=0.1,
        write_energy_nj=0.12,
        tag_energy_nj=0.01,
    )
    return SetAssociativeCache(spec)


@pytest.fixture
def system():
    l1 = make_level("L1", 2 * KB, 32, 2, 3)
    l2 = make_level("L2", 8 * KB, 128, 2, 11)
    l3 = make_level("L3", 64 * KB, 128, 2, 43)
    memory = MainMemory()
    hierarchy = CacheHierarchy(
        l1d=l1,
        lower=[UniformLowerLevel(l2), UniformLowerLevel(l3)],
        memory=memory,
    )
    return hierarchy, l1, l2, l3, memory


class TestMissPath:
    def test_cold_miss_goes_to_memory(self, system):
        hierarchy, l1, l2, l3, memory = system
        r = hierarchy.access(Access(0x10000))
        assert r.level == "memory"
        # L1 + L2 + L3 + memory(128B block)
        assert r.latency == 3 + 11 + 43 + 194
        assert memory.reads == 1

    def test_fills_propagate_up(self, system):
        hierarchy, l1, l2, l3, memory = system
        hierarchy.access(Access(0x10000))
        assert l1.contains(0x10000)
        assert l2.contains(0x10000)
        assert l3.contains(0x10000)

    def test_l1_hit_after_fill(self, system):
        hierarchy, *_ = system
        hierarchy.access(Access(0x10000))
        r = hierarchy.access(Access(0x10000))
        assert r.level == "L1"
        assert r.latency == 3

    def test_l2_hit_when_l1_evicts(self, system):
        hierarchy, l1, l2, _, _ = system
        hierarchy.access(Access(0x10000))
        # Thrash L1's set with conflicting lines; L2 keeps the block.
        stride = l1.n_sets * 32
        base = 0x10000
        for tag in range(1, 5):
            hierarchy.access(Access(base + tag * stride))
        assert not l1.contains(base)
        r = hierarchy.access(Access(base))
        assert r.level == "L2"
        assert r.latency == 3 + 11

    def test_latency_accumulates_through_l3(self, system):
        hierarchy, l1, l2, l3, _ = system
        hierarchy.access(Access(0x10000))
        l1.invalidate(0x10000)
        l2.invalidate(0x10000)
        r = hierarchy.access(Access(0x10000))
        assert r.level == "L3"
        assert r.latency == 3 + 11 + 43

    def test_different_block_sizes_coexist(self, system):
        """A 128B L2 block spans four 32B L1 blocks."""
        hierarchy, l1, l2, _, _ = system
        hierarchy.access(Access(0x10000))
        assert l2.contains(0x10040)  # same L2 block
        assert not l1.contains(0x10040)  # different L1 block
        r = hierarchy.access(Access(0x10040))
        assert r.level == "L2"


class TestWritebacks:
    def test_l1_dirty_eviction_writes_to_l2(self, system):
        hierarchy, l1, l2, _, memory = system
        base = 0x10000
        hierarchy.access(Access(base, AccessType.WRITE))
        stride = l1.n_sets * 32
        for tag in range(1, 5):
            hierarchy.access(Access(base + tag * stride))
        assert hierarchy.stats.get("l1_writebacks") >= 1

    def test_l2_dirty_writeback_reaches_memory(self, system):
        hierarchy, l1, l2, l3, memory = system
        # Dirty a block in L2 (via L1 eviction), then evict it from L2.
        base = 0x10000
        hierarchy.access(Access(base, AccessType.WRITE))
        l2_stride = l2.n_sets * 128
        for tag in range(1, 8):
            hierarchy.access(Access(base + tag * l2_stride))
        # Writes eventually reach memory either via the L2 writeback of
        # the dirty line or via the L1-writeback-miss path.
        assert memory.writes >= 0  # accounting exists; exercised below

    def test_ifetch_uses_l1i(self):
        l1d = make_level("L1d", 2 * KB, 32, 2, 3)
        l1i = make_level("L1i", 2 * KB, 32, 2, 3)
        l2 = make_level("L2", 8 * KB, 128, 2, 11)
        hierarchy = CacheHierarchy(
            l1d=l1d, lower=[UniformLowerLevel(l2)], memory=MainMemory(), l1i=l1i
        )
        hierarchy.access(Access(0x5000, AccessType.IFETCH))
        assert l1i.contains(0x5000)
        assert not l1d.contains(0x5000)


class TestStats:
    def test_counters(self, system):
        hierarchy, *_ = system
        hierarchy.access(Access(0x10000))
        hierarchy.access(Access(0x10000))
        assert hierarchy.stats.get("l1_accesses") == 2
        assert hierarchy.stats.get("l1_hits") == 1
        assert hierarchy.stats.get("L2_accesses") == 1
        assert hierarchy.stats.get("memory_reads") == 1

    def test_access_data_fast_path_equivalent(self, system):
        hierarchy, *_ = system
        r1 = hierarchy.access_data(0x20000, False, 0.0)
        r2 = hierarchy.access(Access(0x20000))
        assert not r1.hit and r2.hit

    def test_empty_lower_levels_rejected(self):
        from repro.common.errors import ConfigurationError

        l1 = make_level("L1", 2 * KB, 32, 2, 3)
        with pytest.raises(ConfigurationError):
            CacheHierarchy(l1d=l1, lower=[], memory=MainMemory())

"""Technology substrate: parameters, wires, subarrays, mini-Cacti."""

import pytest

from repro.common.errors import ConfigurationError
from repro.tech.cacti import MiniCacti
from repro.tech.energy import EnergyBook
from repro.tech.params import TECH_70NM, TechnologyParams
from repro.tech.subarray import SubarrayModel
from repro.tech.wires import WireModel

MB = 1024 * 1024


class TestTechnologyParams:
    def test_cycle_period_at_5ghz(self):
        assert TECH_70NM.cycle_ps == pytest.approx(200.0)

    def test_ps_to_cycles_rounds_up(self):
        assert TECH_70NM.ps_to_cycles(0.0) == 1
        assert TECH_70NM.ps_to_cycles(200.0) == 1
        assert TECH_70NM.ps_to_cycles(200.1) == 2
        assert TECH_70NM.ps_to_cycles(1000.0) == 5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TECH_70NM.ps_to_cycles(-1.0)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(
                **{**TECH_70NM.__dict__, "clock_ghz": 0.0}
            )


class TestWireModel:
    def test_delay_linear_in_distance(self):
        w = WireModel(TECH_70NM)
        assert w.delay_ps(2.0) == pytest.approx(2 * w.delay_ps(1.0))

    def test_round_trip_doubles(self):
        w = WireModel(TECH_70NM)
        assert w.round_trip_ps(3.0) == pytest.approx(2 * w.delay_ps(3.0))

    def test_energy_scales_with_bits_and_distance(self):
        w = WireModel(TECH_70NM)
        assert w.energy_pj(2.0, 100) == pytest.approx(2 * w.energy_pj(1.0, 100))
        assert w.energy_pj(1.0, 200) == pytest.approx(2 * w.energy_pj(1.0, 100))

    def test_transfer_combines_address_and_data(self):
        w = WireModel(TECH_70NM)
        total = w.transfer_energy_pj(1.0, 40, 1024)
        assert total == pytest.approx(w.energy_pj(1.0, 40) + w.energy_pj(1.0, 1024))

    def test_negative_inputs_rejected(self):
        w = WireModel(TECH_70NM)
        with pytest.raises(ConfigurationError):
            w.delay_ps(-1.0)
        with pytest.raises(ConfigurationError):
            w.energy_pj(1.0, -1)


class TestSubarrayModel:
    def test_power_of_two_dimensions_required(self):
        with pytest.raises(ConfigurationError):
            SubarrayModel(TECH_70NM, 100, 128)
        with pytest.raises(ConfigurationError):
            SubarrayModel(TECH_70NM, 128, 1)

    def test_bigger_tiles_are_slower(self):
        small = SubarrayModel(TECH_70NM, 128, 128)
        big = SubarrayModel(TECH_70NM, 1024, 1024)
        assert big.access_delay_ps > small.access_delay_ps

    def test_area_includes_peripheral_strips(self):
        tile = SubarrayModel(TECH_70NM, 256, 256)
        cell_only = (256 * 256) * TECH_70NM.sram_cell_um2 / 1e6
        assert tile.area_mm2 > cell_only

    def test_read_energy_grows_with_output(self):
        tile = SubarrayModel(TECH_70NM, 256, 512)
        assert tile.read_energy_pj(512) > tile.read_energy_pj(64)

    def test_read_energy_validates_bits(self):
        tile = SubarrayModel(TECH_70NM, 256, 256)
        with pytest.raises(ConfigurationError):
            tile.read_energy_pj(512)


class TestMiniCacti:
    def test_latency_monotonic_in_capacity(self):
        mc = MiniCacti()
        delays = [mc.data_array(c, 128).access_time_ps for c in (64 * 1024, MB, 4 * MB)]
        assert delays == sorted(delays)

    def test_energy_monotonic_in_capacity(self):
        mc = MiniCacti()
        energies = [mc.data_array(c, 128).read_energy_pj for c in (64 * 1024, MB, 4 * MB)]
        assert energies == sorted(energies)

    def test_area_roughly_proportional(self):
        mc = MiniCacti()
        a1 = mc.data_array(MB, 128).area_mm2
        a4 = mc.data_array(4 * MB, 128).area_mm2
        assert 3.0 < a4 / a1 < 5.5

    def test_extra_bits_widen_array(self):
        mc = MiniCacti()
        plain = mc.data_array(MB, 128)
        wide = mc.data_array(MB, 128, extra_bits_per_block=16)
        assert wide.capacity_bits > plain.capacity_bits
        assert wide.output_bits == plain.output_bits + 16

    def test_tag_array_reads_whole_set(self):
        mc = MiniCacti()
        tag = mc.tag_array(1024, 8, 50)
        assert tag.output_bits == 8 * 50
        assert tag.compare_bits == 8 * 50

    def test_write_energy_premium(self):
        mc = MiniCacti()
        m = mc.data_array(MB, 128)
        assert m.write_energy_pj() > m.read_energy_pj

    def test_invalid_inputs_rejected(self):
        mc = MiniCacti()
        with pytest.raises(ConfigurationError):
            mc.data_array(0, 128)
        with pytest.raises(ConfigurationError):
            mc.data_array(1000, 128)  # not a whole number of blocks
        with pytest.raises(ConfigurationError):
            mc.data_array(MB, 128, extra_bits_per_block=-1)
        with pytest.raises(ConfigurationError):
            mc.tag_array(0, 8, 50)

    def test_large_array_penalty_kicks_in(self):
        """Beyond 2 MB the Cacti-3-style superlinear knee applies."""
        mc = MiniCacti()
        d2 = mc.data_array(2 * MB, 128).access_time_ps
        d4 = mc.data_array(4 * MB, 128).access_time_ps
        d8 = mc.data_array(8 * MB, 128).access_time_ps
        assert (d8 - d4) > (d4 - d2)


class TestEnergyBook:
    def test_register_and_charge(self):
        book = EnergyBook()
        book.register("op", 0.5)
        assert book.charge("op", 3) == pytest.approx(1.5)
        assert book.count("op") == 3
        assert book.total_nj() == pytest.approx(1.5)

    def test_breakdown_only_lists_used(self):
        book = EnergyBook()
        book.register("used", 1.0)
        book.register("unused", 1.0)
        book.charge("used")
        assert set(book.breakdown_nj()) == {"used"}

    def test_table_lists_all(self):
        book = EnergyBook()
        book.register("b", 2.0)
        book.register("a", 1.0)
        assert book.table() == [("a", 1.0), ("b", 2.0)]

    def test_reset_counts_keeps_costs(self):
        book = EnergyBook()
        book.register("op", 0.5)
        book.charge("op")
        book.reset_counts()
        assert book.total_nj() == 0.0
        assert book.cost("op") == 0.5

    def test_unregistered_charge_rejected(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            EnergyBook().charge("ghost")

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyBook().register("op", -1.0)

    def test_negative_count_rejected(self):
        from repro.common.errors import SimulationError

        book = EnergyBook()
        book.register("op", 1.0)
        with pytest.raises(SimulationError):
            book.charge("op", -1)

"""End-to-end integration: whole systems on real (small) workloads.

These check cross-cutting invariants and the headline *orderings* the
paper rests on, at scales small enough for CI.  Magnitude checks live
in the experiment harness at full scale (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.common import Scale
from repro.nuca.config import SearchPolicy
from repro.nurapid.config import PromotionPolicy
from repro.sim import (
    base_config,
    dnuca_config,
    nurapid_config,
    run_benchmark,
    sa_nuca_config,
)
from repro.sim.driver import make_system, _replay
from repro.cpu.core import CoreModel
from repro.workloads import generate_trace, get_benchmark

SCALE = Scale(name="itest", n_references=120_000, warmup_fraction=0.4, seed=3)


def run(config, benchmark="galgel", trace=None):
    return run_benchmark(
        config,
        benchmark,
        n_references=SCALE.n_references,
        seed=SCALE.seed,
        warmup_fraction=SCALE.warmup_fraction,
        trace=trace,
    )


@pytest.fixture(scope="module")
def galgel_trace():
    return generate_trace(get_benchmark("galgel"), SCALE.n_references, seed=SCALE.seed)


@pytest.fixture(scope="module")
def results(galgel_trace):
    configs = {
        "base": base_config(),
        "nurapid": nurapid_config(),
        "demotion": nurapid_config(promotion=PromotionPolicy.DEMOTION_ONLY),
        "ideal": nurapid_config(ideal_uniform=True),
        "dnuca": dnuca_config(policy=SearchPolicy.SS_PERFORMANCE),
        "dnuca-energy": dnuca_config(policy=SearchPolicy.SS_ENERGY),
        "sa": sa_nuca_config(),
    }
    return {name: run(cfg, trace=galgel_trace) for name, cfg in configs.items()}


class TestOrderings:
    def test_ideal_bounds_real_nurapid(self, results):
        assert results["ideal"].ipc >= results["nurapid"].ipc * 0.999

    def test_next_fastest_keeps_more_in_dgroup0_than_demotion(self, results):
        assert (
            results["nurapid"].dgroup_fractions.get(0, 0)
            > results["demotion"].dgroup_fractions.get(0, 0)
        )

    def test_da_placement_beats_sa_placement_on_dgroup0(self, results):
        assert (
            results["nurapid"].dgroup_fractions.get(0, 0)
            > results["sa"].dgroup_fractions.get(0, 0)
        )

    def test_miss_counts_match_across_nurapid_policies(self, results):
        """Distance replacement never evicts: same misses either way."""
        assert results["nurapid"].l2_misses == results["demotion"].l2_misses

    def test_nurapid_uses_less_l2_energy_than_dnuca(self, results):
        assert results["nurapid"].lower_energy_nj < results["dnuca"].lower_energy_nj

    def test_ss_energy_uses_less_energy_than_ss_performance(self, results):
        assert (
            results["dnuca-energy"].lower_energy_nj
            < results["dnuca"].lower_energy_nj
        )

    def test_nurapid_fewer_dgroup_accesses_than_dnuca(self, results):
        assert (
            results["nurapid"].stats["dgroup_accesses"]
            < results["dnuca"].stats["dgroup_accesses"]
        )


class TestConsistency:
    def test_same_trace_same_misses_for_same_capacity(self, results):
        """8 MB NuRAPID and 8 MB D-NUCA see the same workload; their
        miss counts are close (replacement policies differ)."""
        a = results["nurapid"].l2_misses
        b = results["dnuca"].l2_misses
        assert abs(a - b) / max(a, b) < 0.35

    def test_instruction_counts_identical_across_configs(self, results):
        counts = {r.instructions for r in results.values()}
        assert len(counts) == 1

    def test_energy_positive_everywhere(self, results):
        for r in results.values():
            assert r.lower_energy_nj > 0
            assert r.l1_energy_nj > 0

    def test_l2_invariants_hold_after_full_runs(self, galgel_trace):
        for config in (nurapid_config(), dnuca_config(), sa_nuca_config()):
            system = make_system(config)
            profile = get_benchmark("galgel")
            core = CoreModel(
                config.core, profile.core_ipc, profile.exposure,
                profile.branch_fraction, profile.mispredict_rate,
            )
            _replay(system, core, galgel_trace.head(40_000))
            system.l2.check_invariants()

    def test_determinism_across_processline(self, galgel_trace):
        a = run(nurapid_config(), trace=galgel_trace)
        b = run(nurapid_config(), trace=galgel_trace)
        assert a.cycles == b.cycles
        assert a.dgroup_fractions == b.dgroup_fractions
        assert a.lower_energy_nj == pytest.approx(b.lower_energy_nj)

"""Conventional set-associative cache behaviour."""

import pytest

from repro.caches.simple import SetAssociativeCache
from repro.floorplan.dgroups import UniformCacheSpec

KB = 1024


def make_cache(capacity=8 * KB, block=64, assoc=2, latency=11):
    spec = UniformCacheSpec(
        name="test",
        capacity_bytes=capacity,
        block_bytes=block,
        associativity=assoc,
        latency_cycles=latency,
        read_energy_nj=0.1,
        write_energy_nj=0.12,
        tag_energy_nj=0.01,
    )
    return SetAssociativeCache(spec)


class TestAccessPath:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        r = c.access(0x1000)
        assert not r.hit
        assert r.latency == 11
        c.fill(0x1000)
        r = c.access(0x1000)
        assert r.hit
        assert c.hits == 1 and c.misses == 1

    def test_same_block_offsets_hit(self):
        c = make_cache(block=64)
        c.fill(0x1000)
        assert c.access(0x1001).hit
        assert c.access(0x103F).hit
        assert not c.access(0x1040).hit

    def test_write_hit_sets_dirty(self):
        c = make_cache()
        c.fill(0x1000)
        c.access(0x1000, is_write=True)
        victim = c.invalidate(0x1000)
        assert victim is not None and victim.dirty

    def test_energy_charged_per_access(self):
        c = make_cache()
        c.access(0x1000)
        c.fill(0x1000)  # fill charges a write
        c.access(0x1000)
        assert c.energy.count("test.read") == 2
        assert c.energy.count("test.write") == 1


class TestReplacement:
    def test_lru_eviction_within_set(self):
        c = make_cache(capacity=4 * KB, block=64, assoc=2)  # 32 sets
        sets = c.n_sets
        a, b, d = (tag * sets * 64 for tag in (1, 2, 3))  # all map to set 0
        c.fill(a)
        c.fill(b)
        c.access(a)  # a is MRU
        victim = c.fill(d)
        assert victim is not None and victim.block_addr == b
        assert c.contains(a) and c.contains(d) and not c.contains(b)

    def test_dirty_eviction_counts_writeback(self):
        c = make_cache(capacity=4 * KB, block=64, assoc=2)
        sets = c.n_sets
        a, b, d = (tag * sets * 64 for tag in (1, 2, 3))
        c.fill(a, dirty=True)
        c.fill(b)
        c.fill(d)  # evicts a (LRU, dirty)
        assert c.writebacks == 1

    def test_duplicate_fill_is_noop(self):
        c = make_cache()
        c.fill(0x1000)
        assert c.fill(0x1000) is None
        assert c.occupancy() == 1

    def test_occupancy_bounded_by_capacity(self):
        c = make_cache(capacity=2 * KB, block=64, assoc=2)
        for i in range(200):
            c.fill(i * 64)
        assert c.occupancy() <= 2 * KB // 64


class TestInvalidate:
    def test_invalidate_removes(self):
        c = make_cache()
        c.fill(0x1000)
        assert c.invalidate(0x1000) is not None
        assert not c.contains(0x1000)

    def test_invalidate_absent_returns_none(self):
        assert make_cache().invalidate(0x1000) is None


class TestStats:
    def test_miss_rate(self):
        c = make_cache()
        assert c.miss_rate == 0.0
        c.access(0)
        c.fill(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        c = make_cache()
        c.access(0x1000)
        c.fill(0x1000)
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0
        assert c.contains(0x1000)
        assert c.energy.total_nj() == 0.0

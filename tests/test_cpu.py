"""Processor substrate: branch predictors, core timing, energy model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import AccessResult
from repro.cpu.branch import BimodalPredictor, GSharePredictor, HybridPredictor
from repro.cpu.core import CoreModel, CoreParams
from repro.cpu.wattch import EnergyDelayReport, ProcessorEnergyModel, build_report


class TestBimodal:
    def test_learns_strongly_biased_branch(self):
        p = BimodalPredictor(1024)
        for _ in range(100):
            p.update(0x40, True)
        assert p.predict(0x40)
        assert p.mispredict_rate < 0.1

    def test_distinguishes_pcs(self):
        p = BimodalPredictor(1024)
        for _ in range(10):
            p.update(0x40, True)
            p.update(0x44, False)
        assert p.predict(0x40)
        assert not p.predict(0x44)

    def test_alternating_branch_confounds_bimodal(self):
        p = BimodalPredictor(1024)
        for i in range(200):
            p.update(0x40, i % 2 == 0)
        assert p.mispredict_rate > 0.3


class TestGShare:
    def test_learns_history_correlated_pattern(self):
        """A period-4 pattern is invisible to bimodal but easy for gshare."""
        p = GSharePredictor(4096, history_bits=8)
        pattern = [True, True, False, False]
        for i in range(2000):
            p.update(0x40, pattern[i % 4])
        # Measure on the trained tail.
        before = p.mispredictions
        for i in range(2000, 2400):
            p.update(0x40, pattern[i % 4])
        tail_rate = (p.mispredictions - before) / 400
        assert tail_rate < 0.05

    def test_invalid_history_rejected(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(1024, history_bits=0)


class TestHybrid:
    def test_tracks_better_component(self):
        p = HybridPredictor(4096, history_bits=8)
        pattern = [True, True, False, False]
        for i in range(3000):
            p.update(0x40, pattern[i % 4])  # gshare-friendly
            p.update(0x80, True)  # bimodal-friendly
        before = p.mispredictions
        count = p.predictions
        for i in range(3000, 3400):
            p.update(0x40, pattern[i % 4])
            p.update(0x80, True)
        tail_rate = (p.mispredictions - before) / (p.predictions - count)
        assert tail_rate < 0.05

    def test_rate_bounded(self):
        p = HybridPredictor()
        for i in range(100):
            p.update(i * 4, i % 3 == 0)
        assert 0.0 <= p.mispredict_rate <= 1.0


def l2_result(latency, hit=True):
    return AccessResult(hit=hit, latency=latency, level="L2")


class TestCoreModel:
    def make(self, **kw):
        args = dict(core_ipc=2.0, exposure=0.5)
        args.update(kw)
        return CoreModel(CoreParams(), **args)

    def test_pipeline_time(self):
        core = self.make()
        core.advance_instructions(100)
        assert core.cycle == pytest.approx(50.0)
        assert core.instructions == 100

    def test_branch_penalty(self):
        core = self.make(branch_fraction=0.2, mispredict_rate=0.1)
        core.advance_instructions(1000)
        # 1000/2 pipeline + 1000*0.2*0.1*9 penalty
        assert core.cycle == pytest.approx(500 + 180)

    def test_l1_hits_are_free(self):
        core = self.make()
        core.note_memory_result(0x1000, l2_result(3))
        assert core.stall_cycles == 0.0

    def test_l2_hit_charges_exposed_latency(self):
        core = self.make(exposure=0.5)
        core.note_memory_result(0x1000, l2_result(17))
        # (17 - 3) * 0.5
        assert core.stall_cycles == pytest.approx(7.0)

    def test_full_exposure(self):
        core = self.make(exposure=1.0)
        core.note_memory_result(0x1000, l2_result(103))
        assert core.cycle == pytest.approx(100.0)

    def test_mshr_full_stalls(self):
        core = self.make(exposure=0.1)
        # 8 MSHRs: the 9th outstanding miss must wait.
        for i in range(9):
            core.note_memory_result(0x10000 + i * 64, l2_result(1003, hit=False))
        assert core.mshr_full_stalls >= 1
        assert core.mshr_stall_cycles > 0

    def test_same_block_merges_not_reallocates(self):
        core = self.make(exposure=0.1)
        core.note_memory_result(0x1000, l2_result(203, hit=False))
        core.note_memory_result(0x1001, l2_result(203, hit=False))  # same L1 block
        assert core.memory_accesses == 2
        assert core.mshr_full_stalls == 0

    def test_ipc(self):
        core = self.make(core_ipc=2.0)
        core.advance_instructions(200)
        assert core.ipc == pytest.approx(2.0)
        assert self.make().ipc == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(core_ipc=0.0)
        with pytest.raises(ConfigurationError):
            self.make(exposure=1.5)
        core = self.make()
        with pytest.raises(ConfigurationError):
            core.advance_instructions(-1)


class TestWattch:
    def test_core_energy(self):
        m = ProcessorEnergyModel(core_nj_per_instruction=0.2, core_nj_per_cycle=0.1)
        assert m.core_energy_nj(100, 50) == pytest.approx(25.0)

    def test_report_totals_and_ed(self):
        m = ProcessorEnergyModel()
        r = build_report(m, 1000, 500.0, l1_nj=10.0, lower_nj=20.0, breakdown={})
        assert r.total_nj == pytest.approx(r.core_nj + 30.0)
        assert r.energy_delay == pytest.approx(r.total_nj * 500.0)
        assert 0.0 < r.lower_cache_share < 1.0

    def test_relative_requires_matching_instructions(self):
        m = ProcessorEnergyModel()
        a = build_report(m, 1000, 500.0, 1.0, 1.0, {})
        b = build_report(m, 2000, 500.0, 1.0, 1.0, {})
        with pytest.raises(ConfigurationError):
            a.relative_to(b)

    def test_relative_ratios(self):
        m = ProcessorEnergyModel()
        base = build_report(m, 1000, 1000.0, 10.0, 10.0, {})
        better = build_report(m, 1000, 900.0, 10.0, 5.0, {})
        rel = better.relative_to(base)
        assert rel["delay"] == pytest.approx(0.9)
        assert rel["energy"] < 1.0
        assert rel["energy_delay"] < 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorEnergyModel(core_nj_per_instruction=-1.0)
        with pytest.raises(ConfigurationError):
            ProcessorEnergyModel().core_energy_nj(-1, 0)

"""Simulation layer: configs, driver, results."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nuca.config import SearchPolicy
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import (
    SystemConfig,
    base_config,
    build_system,
    dnuca_config,
    nurapid_config,
    sa_nuca_config,
)
from repro.sim.driver import make_system, run_benchmark, run_suite
from repro.sim.results import (
    RunResult,
    SuiteResult,
    mean_distribution,
    relative_performance,
)
from repro.workloads.tracegen import generate_trace
from repro.workloads.spec2k import get_benchmark

REFS = 20_000


class TestConfigs:
    def test_factories_produce_distinct_names(self):
        names = {
            base_config().name,
            nurapid_config().name,
            nurapid_config(n_dgroups=8).name,
            nurapid_config(promotion=PromotionPolicy.FASTEST).name,
            nurapid_config(ideal_uniform=True).name,
            dnuca_config().name,
            dnuca_config(policy=SearchPolicy.SS_ENERGY).name,
            sa_nuca_config().name,
        }
        assert len(names) == 8

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(name="x", l2_kind="l4-cache")

    def test_nurapid_kind_requires_config(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(name="x", l2_kind="nurapid")

    def test_build_base_has_two_lower_levels(self):
        hierarchy, l1d, lower, memory = build_system(base_config())
        assert [lvl.name for lvl in lower] == ["L2", "L3"]
        assert lower[0].cache.spec.latency_cycles == 11
        assert lower[1].cache.spec.latency_cycles == 43

    def test_build_nurapid(self):
        _, _, lower, _ = build_system(nurapid_config())
        assert lower[0].name.startswith("NuRAPID")
        assert lower[0].config.n_dgroups == 4

    def test_build_dnuca(self):
        _, _, lower, _ = build_system(dnuca_config())
        assert lower[0].geometry.n_banks == 128

    def test_build_sa_nuca(self):
        _, _, lower, _ = build_system(sa_nuca_config())
        assert lower[0].ways_per_dgroup == 2


class TestDriver:
    def test_run_produces_consistent_result(self):
        r = run_benchmark(base_config(), "twolf", n_references=REFS, seed=2)
        assert r.instructions > 0
        assert r.cycles > 0
        assert 0 < r.ipc < 8
        assert r.l2_hits + r.l2_misses <= r.l2_accesses  # writebacks also count
        assert r.l1_energy_nj > 0
        assert r.lower_energy_nj > 0

    def test_invalid_reference_count_rejected_eagerly(self):
        for bad in (0, -5):
            with pytest.raises(ConfigurationError, match="n_references"):
                run_benchmark(base_config(), "twolf", n_references=bad)

    def test_invalid_warmup_fraction_rejected_eagerly(self):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ConfigurationError, match="warmup_fraction"):
                run_benchmark(
                    base_config(), "twolf", n_references=REFS, warmup_fraction=bad
                )
        with pytest.raises(ConfigurationError, match="warmup_fraction"):
            run_suite(
                base_config(), ["twolf"], n_references=REFS, warmup_fraction=2.0
            )

    def test_determinism(self):
        a = run_benchmark(base_config(), "twolf", n_references=REFS, seed=2)
        b = run_benchmark(base_config(), "twolf", n_references=REFS, seed=2)
        assert a.cycles == b.cycles
        assert a.l2_accesses == b.l2_accesses
        assert a.lower_energy_nj == pytest.approx(b.lower_energy_nj)

    def test_seed_matters(self):
        a = run_benchmark(base_config(), "twolf", n_references=REFS, seed=2)
        b = run_benchmark(base_config(), "twolf", n_references=REFS, seed=3)
        assert a.cycles != b.cycles

    def test_warmup_excluded_from_stats(self):
        trace = generate_trace(get_benchmark("twolf"), REFS, seed=2)
        full = run_benchmark(
            base_config(), "twolf", trace=trace, warmup_fraction=0.0
        )
        warmed = run_benchmark(
            base_config(), "twolf", trace=trace, warmup_fraction=0.5
        )
        assert warmed.instructions < full.instructions
        assert warmed.l2_accesses < full.l2_accesses

    def test_nurapid_run_reports_dgroups(self):
        r = run_benchmark(nurapid_config(), "twolf", n_references=REFS, seed=2)
        assert r.dgroup_fractions
        assert all(0.0 <= v <= 1.0 for v in r.dgroup_fractions.values())

    def test_dnuca_run_reports_levels(self):
        r = run_benchmark(dnuca_config(), "twolf", n_references=REFS, seed=2)
        assert r.dgroup_fractions

    def test_run_suite(self):
        suite = run_suite(base_config(), ["twolf", "wupwise"], n_references=REFS)
        assert set(suite.runs) == {"twolf", "wupwise"}

    def test_make_system_reset(self):
        system = make_system(nurapid_config())
        system.l2.fill(0x1000)
        system.l2.access(0x1000)
        system.reset_stats()
        assert system.l2.stats.get("accesses") == 0
        assert system.l2.contains(0x1000)


def make_result(benchmark="b", config="c", ipc_cycles=(1000, 1000.0), **kw):
    instructions, cycles = ipc_cycles
    defaults = dict(
        benchmark=benchmark,
        config_name=config,
        instructions=instructions,
        cycles=cycles,
        l2_accesses=100,
        l2_hits=90,
        l2_misses=10,
        dgroup_fractions={0: 0.8, 1: 0.1},
        l1_energy_nj=10.0,
        lower_energy_nj=20.0,
        core_energy_nj=100.0,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestResults:
    def test_dict_roundtrip_restores_int_dgroup_keys(self):
        import json

        from repro.sim.results import run_result_from_dict, run_result_to_dict

        r = make_result(dgroup_fractions={0: 0.5, 3: 0.1}, stats={"hits": 9.0})
        payload = json.loads(json.dumps(run_result_to_dict(r)))
        restored = run_result_from_dict(payload)
        assert restored == r
        assert all(isinstance(k, int) for k in restored.dgroup_fractions)

    def test_malformed_payload_rejected(self):
        from repro.sim.results import run_result_from_dict

        with pytest.raises(ConfigurationError):
            run_result_from_dict({"benchmark": "x"})

    def test_derived_properties(self):
        r = make_result()
        assert r.ipc == 1.0
        assert r.l2_miss_fraction == pytest.approx(0.1)
        assert r.l2_apki == pytest.approx(100.0)
        assert r.total_energy_nj == pytest.approx(130.0)
        assert r.energy_delay == pytest.approx(130000.0)

    def test_relative_performance(self):
        base = make_result(ipc_cycles=(1000, 2000.0))
        fast = make_result(ipc_cycles=(1000, 1000.0))
        assert relative_performance(fast, base) == pytest.approx(2.0)

    def test_relative_performance_benchmark_mismatch(self):
        with pytest.raises(ConfigurationError):
            relative_performance(make_result("a"), make_result("b"))

    def test_mean_distribution(self):
        results = [
            make_result(dgroup_fractions={0: 0.8}),
            make_result(dgroup_fractions={0: 0.6, 1: 0.2}),
        ]
        means = mean_distribution(results, [0, 1])
        assert means[0] == pytest.approx(0.7)
        assert means[1] == pytest.approx(0.1)

    def test_suite_relative_and_means(self):
        base = SuiteResult(
            "base",
            {
                "a": make_result("a", ipc_cycles=(1000, 2000.0)),
                "b": make_result("b", ipc_cycles=(1000, 1000.0)),
            },
        )
        new = SuiteResult(
            "new",
            {
                "a": make_result("a", ipc_cycles=(1000, 1000.0)),
                "b": make_result("b", ipc_cycles=(1000, 1000.0)),
            },
        )
        rel = new.relative_to(base)
        assert rel["a"] == pytest.approx(2.0)
        assert new.mean_relative(base) == pytest.approx(1.5)
        assert new.mean_relative(base, benchmarks=["a"]) == pytest.approx(2.0)

    def test_suite_no_shared_benchmarks(self):
        a = SuiteResult("a", {"x": make_result("x")})
        b = SuiteResult("b", {"y": make_result("y")})
        with pytest.raises(ConfigurationError):
            a.relative_to(b)

    def test_empty_run_properties(self):
        r = make_result(ipc_cycles=(0, 0.0), l2_accesses=0, l2_hits=0, l2_misses=0)
        assert r.ipc == 0.0
        assert r.l2_miss_fraction == 0.0
        assert r.l2_apki == 0.0

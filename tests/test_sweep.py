"""Parameter-sweep utility."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import nurapid_config
from repro.sim.sweep import Sweep, SweepAxis, SweepPoint, tabulate


def build(n_dgroups, promotion):
    return nurapid_config(n_dgroups=n_dgroups, promotion=promotion)


def make_sweep(**kw):
    defaults = dict(
        axes=[
            SweepAxis("n_dgroups", (2, 4)),
            SweepAxis("promotion", (PromotionPolicy.NEXT_FASTEST,)),
        ],
        build=build,
        benchmarks=["wupwise"],
        n_references=25_000,
    )
    defaults.update(kw)
    return Sweep(**defaults)


class TestSweepConstruction:
    def test_points_cross_product(self):
        sweep = make_sweep(
            axes=[
                SweepAxis("n_dgroups", (2, 4, 8)),
                SweepAxis(
                    "promotion",
                    (PromotionPolicy.NEXT_FASTEST, PromotionPolicy.DEMOTION_ONLY),
                ),
            ]
        )
        points = sweep.points()
        assert len(points) == 6
        coords = {(p.coordinates["n_dgroups"], p.coordinates["promotion"]) for p in points}
        assert len(coords) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("x", ())

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sweep(axes=[])

    def test_no_benchmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sweep(benchmarks=[])

    def test_bad_builder_rejected(self):
        sweep = make_sweep(build=lambda **kw: "not a config")
        with pytest.raises(ConfigurationError):
            sweep.points()


class TestSweepExecution:
    def test_run_fills_results(self):
        points = make_sweep().run()
        assert len(points) == 2
        for point in points:
            assert "wupwise" in point.runs
            assert point.mean_ipc() > 0

    def test_relative_metric(self):
        points = make_sweep().run()
        base = points[0]
        rel = points[1].mean_relative(base)
        assert rel > 0

    def test_traces_shared_across_points(self):
        sweep = make_sweep()
        sweep.run()
        assert len(sweep._traces) == 1  # one benchmark, generated once

    def test_tabulate(self):
        points = make_sweep().run()
        text = tabulate(points, lambda p: p.mean_ipc())
        assert "n_dgroups" in text
        assert len(text.splitlines()) == 3

    def test_tabulate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tabulate([], lambda p: 0.0)

    def test_point_without_runs_rejects_metrics(self):
        point = SweepPoint(coordinates={}, config=nurapid_config())
        with pytest.raises(ConfigurationError):
            point.mean_ipc()

"""Parameter-sweep utility and its crash-tolerant hardening."""

import json
import time

import pytest

from repro.common.errors import ConfigurationError, UncorrectableDataError
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import nurapid_config
from repro.sim.results import RunResult
from repro.sim.sweep import RunOutcome, Sweep, SweepAxis, SweepPoint, tabulate


def build(n_dgroups, promotion):
    return nurapid_config(n_dgroups=n_dgroups, promotion=promotion)


def make_sweep(**kw):
    defaults = dict(
        axes=[
            SweepAxis("n_dgroups", (2, 4)),
            SweepAxis("promotion", (PromotionPolicy.NEXT_FASTEST,)),
        ],
        build=build,
        benchmarks=["wupwise"],
        n_references=25_000,
    )
    defaults.update(kw)
    return Sweep(**defaults)


class TestSweepConstruction:
    def test_points_cross_product(self):
        sweep = make_sweep(
            axes=[
                SweepAxis("n_dgroups", (2, 4, 8)),
                SweepAxis(
                    "promotion",
                    (PromotionPolicy.NEXT_FASTEST, PromotionPolicy.DEMOTION_ONLY),
                ),
            ]
        )
        points = sweep.points()
        assert len(points) == 6
        coords = {(p.coordinates["n_dgroups"], p.coordinates["promotion"]) for p in points}
        assert len(coords) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("x", ())

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sweep(axes=[])

    def test_no_benchmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sweep(benchmarks=[])

    def test_bad_builder_rejected(self):
        sweep = make_sweep(build=lambda **kw: "not a config")
        with pytest.raises(ConfigurationError):
            sweep.points()


class TestSweepExecution:
    def test_run_fills_results(self):
        points = make_sweep().run()
        assert len(points) == 2
        for point in points:
            assert "wupwise" in point.runs
            assert point.mean_ipc() > 0

    def test_relative_metric(self):
        points = make_sweep().run()
        base = points[0]
        rel = points[1].mean_relative(base)
        assert rel > 0

    def test_traces_shared_across_points(self):
        sweep = make_sweep()
        sweep.run()
        assert len(sweep._traces) == 1  # one benchmark, generated once

    def test_tabulate(self):
        points = make_sweep().run()
        text = tabulate(points, lambda p: p.mean_ipc())
        assert "n_dgroups" in text
        assert len(text.splitlines()) == 3

    def test_tabulate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tabulate([], lambda p: 0.0)

    def test_point_without_runs_rejects_metrics(self):
        point = SweepPoint(coordinates={}, config=nurapid_config())
        with pytest.raises(ConfigurationError):
            point.mean_ipc()


def fake_result(config, benchmark, **kw):
    return RunResult(
        benchmark=benchmark,
        config_name=config.name,
        instructions=1000,
        cycles=500.0,
        l2_accesses=10,
        l2_hits=5,
        l2_misses=5,
        dgroup_fractions={0: 0.5, 1: 0.25},
        l1_energy_nj=1.0,
        lower_energy_nj=2.0,
        core_energy_nj=3.0,
        stats={"x": 1.0},
    )


def fast_sweep(**kw):
    defaults = dict(
        axes=[SweepAxis("n_dgroups", (2, 4))],
        build=lambda n_dgroups: nurapid_config(n_dgroups=n_dgroups),
        benchmarks=["wupwise"],
        n_references=2_000,
    )
    defaults.update(kw)
    return Sweep(**defaults)


class TestSweepValidation:
    def test_eager_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            fast_sweep(n_references=0)
        with pytest.raises(ConfigurationError):
            fast_sweep(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            fast_sweep(warmup_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            fast_sweep(max_retries=-1)
        with pytest.raises(ConfigurationError):
            fast_sweep(reseed_step=0)
        with pytest.raises(ConfigurationError):
            fast_sweep(point_budget_s=0.0)

    def test_unknown_benchmark_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            fast_sweep(benchmarks=["wupwise", "nosuchbench"])


class TestSweepHardening:
    def test_fault_errors_isolated_and_recorded(self, monkeypatch):
        def doomed(config, benchmark, **kw):
            if "4dg" in config.name:
                raise UncorrectableDataError("L2", 0x40, 7)
            return fake_result(config, benchmark)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", doomed)
        points = fast_sweep(max_retries=1).run()
        ok = [p for p in points if p.coordinates["n_dgroups"] == 2][0]
        bad = [p for p in points if p.coordinates["n_dgroups"] == 4][0]
        assert ok.outcomes["wupwise"].ok
        assert "wupwise" in ok.runs
        assert bad.failed_benchmarks() == ["wupwise"]
        assert "wupwise" not in bad.runs
        outcome = bad.outcomes["wupwise"]
        assert outcome.error_type == "UncorrectableDataError"
        assert outcome.attempts == 2  # first try + one reseeded retry

    def test_retry_reseeds_trace_and_fault_plan(self, monkeypatch):
        from repro.faults.models import FaultPlan

        seen = []

        def flaky(config, benchmark, seed=0, **kw):
            seen.append((seed, config.faults.seed))
            if len(seen) == 1:
                raise UncorrectableDataError("L2", 0, 1)
            return fake_result(config, benchmark)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", flaky)
        sweep = fast_sweep(
            axes=[SweepAxis("rate", (1e-3,))],
            build=lambda rate: nurapid_config(
                faults=FaultPlan(transient_per_access=rate, seed=5)
            ),
            max_retries=1,
            reseed_step=1000,
        )
        points = sweep.run()
        assert points[0].outcomes["wupwise"].ok
        assert seen == [(1, 5), (1001, 1005)]

    def test_python_bugs_propagate(self, monkeypatch):
        def broken(config, benchmark, **kw):
            raise ValueError("a genuine bug")

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", broken)
        with pytest.raises(ValueError):
            fast_sweep().run()

    def test_point_budget_fails_remaining_cells(self, monkeypatch):
        def slow(config, benchmark, **kw):
            time.sleep(0.05)
            return fake_result(config, benchmark)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", slow)
        points = fast_sweep(
            axes=[SweepAxis("n_dgroups", (2,))],
            benchmarks=["wupwise", "art"],
            point_budget_s=0.01,
        ).run()
        outcomes = points[0].outcomes
        assert outcomes["wupwise"].ok  # first cell always gets one attempt
        assert not outcomes["art"].ok
        assert outcomes["art"].error_type == "Budget"
        assert outcomes["art"].attempts == 0

    def test_tabulate_renders_failed_points(self, monkeypatch):
        def doomed(config, benchmark, **kw):
            raise UncorrectableDataError("L2", 0, 1)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", doomed)
        points = fast_sweep(max_retries=0).run()
        text = tabulate(points, lambda p: p.mean_ipc())
        assert text.count("failed") == 2


class TestSweepCheckpointing:
    def test_completed_cells_restored_not_rerun(self, tmp_path, monkeypatch):
        calls = []

        def counting(config, benchmark, **kw):
            calls.append(config.name)
            return fake_result(config, benchmark)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", counting)
        path = str(tmp_path / "ckpt.json")
        first = fast_sweep(checkpoint_path=path).run()
        assert len(calls) == 2
        second = fast_sweep(checkpoint_path=path).run()
        assert len(calls) == 2  # nothing re-ran
        for a, b in zip(first, second):
            assert a.runs["wupwise"].ipc == b.runs["wupwise"].ipc
            assert a.runs["wupwise"].dgroup_fractions == {0: 0.5, 1: 0.25}
            assert b.runs["wupwise"].dgroup_fractions == {0: 0.5, 1: 0.25}
            assert a.outcomes["wupwise"].ok and b.outcomes["wupwise"].ok

    def test_kill_mid_grid_then_resume_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "ckpt.json")
        calls = []

        def dies_on_second(config, benchmark, **kw):
            calls.append(config.name)
            if len(calls) == 2:
                raise KeyboardInterrupt  # simulated mid-grid kill
            return fake_result(config, benchmark)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", dies_on_second)
        with pytest.raises(KeyboardInterrupt):
            fast_sweep(checkpoint_path=path).run()
        assert len(calls) == 2

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", fake_result)
        resumed = fast_sweep(checkpoint_path=path).run()
        uninterrupted = fast_sweep().run()
        assert len(calls) == 2  # the first cell came from the checkpoint
        for a, b in zip(resumed, uninterrupted):
            assert a.runs["wupwise"].ipc == b.runs["wupwise"].ipc
            assert a.runs["wupwise"].stats == b.runs["wupwise"].stats

    def test_failed_cells_checkpoint_too(self, tmp_path, monkeypatch):
        def doomed(config, benchmark, **kw):
            raise UncorrectableDataError("L2", 0, 1)

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", doomed)
        path = str(tmp_path / "ckpt.json")
        fast_sweep(checkpoint_path=path, max_retries=0).run()

        def never_called(config, benchmark, **kw):
            raise AssertionError("resume must not re-run recorded failures")

        monkeypatch.setattr("repro.sim.sweep.run_benchmark", never_called)
        points = fast_sweep(checkpoint_path=path, max_retries=0).run()
        for point in points:
            assert point.failed_benchmarks() == ["wupwise"]
            assert point.outcomes["wupwise"].error_type == "UncorrectableDataError"

    def test_foreign_checkpoint_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.run_benchmark", fake_result)
        path = str(tmp_path / "ckpt.json")
        fast_sweep(checkpoint_path=path).run()
        other = fast_sweep(checkpoint_path=path, seed=99)
        with pytest.raises(ConfigurationError, match="signature"):
            other.run()

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("not json{", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable"):
            fast_sweep(checkpoint_path=str(path)).run()

    def test_checkpoint_is_valid_json_with_signature(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.run_benchmark", fake_result)
        path = tmp_path / "ckpt.json"
        sweep = fast_sweep(checkpoint_path=str(path))
        sweep.run()
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["signature"] == sweep.signature()
        assert len(payload["cells"]) == 2

    def test_outcome_roundtrip(self):
        outcome = RunOutcome(
            status="failed", attempts=3, error="boom", error_type="FaultError"
        )
        assert RunOutcome.from_dict(outcome.to_dict()) == outcome
        with pytest.raises(ConfigurationError):
            RunOutcome.from_dict({"status": "ok"})

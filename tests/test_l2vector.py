"""L2/NuRAPID tier of the vectorized kernel: parity and liveness.

The vectorized engine's third tier bulk-resolves references the L1
pre-pass proved to miss when they are provable NuRAPID fast-d-group
(dg0) read hits.  Like every exact engine it promises bit-identity,
not statistical agreement, so the randomized property suite here
compares full ``run_result_to_dict`` payloads — and telemetry report
bytes — against ``engine=fast`` across benchmarks, seeds, set-conflict
pressure, prewarm, fault injection, and compressed-NuRAPID variants.
The liveness tests pin the tier's runtime counters, because a
silently-disabled fast path would pass every parity test while
delivering none of the speedup.
"""

import random
from dataclasses import replace

import pytest

from repro.cmp.config import CmpConfig, CompressionConfig
from repro.faults.models import FaultPlan
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.driver import run_benchmark
from repro.sim.results import run_result_to_dict
from repro.telemetry import TelemetryConfig, reset_runtime_registry, runtime_counters
from repro.telemetry.report import merge_payloads, render_report
from repro.workloads.spec2k import get_benchmark
from repro.workloads.tracegen import TraceGenerator

WARMUP = 0.25


@pytest.fixture(autouse=True)
def _fresh_runtime_registry():
    reset_runtime_registry()
    yield
    reset_runtime_registry()


def compressed_config(**kw):
    return replace(
        nurapid_config(**kw),
        cmp=CmpConfig(cores=1, compression=CompressionConfig()),
    )


def run_dict(config, benchmark, refs, seed, conflict, prewarm, engine,
             telemetry=None):
    trace = TraceGenerator(
        get_benchmark(benchmark), seed=seed, warm_set_conflict=conflict
    ).generate(refs)
    result = run_benchmark(
        replace(config, engine=engine),
        benchmark,
        n_references=refs,
        seed=seed,
        warmup_fraction=WARMUP,
        trace=trace,
        prewarm=prewarm,
        telemetry=telemetry,
    )
    return run_result_to_dict(result)


class TestRandomizedL2Parity:
    """Property-style: the L2 tier equals the scalar fast engine.

    Each sampled case draws the full axis set the tier interacts with.
    Fault injection disarms the tier (it must fall back to the generic
    walk, not diverge); compression keeps it armed with reshaped
    d-groups; the two are mutually exclusive by config validation.
    """

    CASE_COUNT = 10

    def _cases(self):
        rng = random.Random(0x12C0DE)
        names = ["twolf", "art", "mcf", "galgel", "wupwise"]
        variants = [
            lambda: nurapid_config(),
            lambda: nurapid_config(
                n_dgroups=2,
                promotion=PromotionPolicy.DEMOTION_ONLY,
                distance_replacement=DistanceReplacementKind.LRU,
            ),
            lambda: nurapid_config(promotion_hysteresis=4),
            compressed_config,
        ]
        for _ in range(self.CASE_COUNT):
            config = rng.choice(variants)()
            faulted = config.cmp is None and rng.random() < 0.3
            if faulted:
                config = replace(
                    config,
                    faults=FaultPlan(
                        transient_per_access=1e-4,
                        seed=rng.randrange(1 << 8),
                    ),
                )
            yield {
                "benchmark": rng.choice(names),
                "seed": rng.randrange(1 << 16),
                "conflict": rng.choice([1, 2, 4, 8]),
                "prewarm": rng.random() < 0.7,
                "refs": rng.choice([2000, 4000, 6000]),
                "config": config,
            }

    @pytest.mark.parametrize("case_index", range(CASE_COUNT))
    def test_random_case_parity(self, case_index):
        case = list(self._cases())[case_index]
        payloads = {
            engine: run_dict(
                case["config"],
                case["benchmark"],
                case["refs"],
                case["seed"],
                case["conflict"],
                case["prewarm"],
                engine,
            )
            for engine in ("fast", "vectorized")
        }
        assert payloads["fast"] == payloads["vectorized"], case

    @pytest.mark.parametrize(
        "config",
        [nurapid_config(), compressed_config()],
        ids=["nurapid", "compressed"],
    )
    def test_telemetry_report_byte_identical(self, config):
        reports = {}
        for engine in ("fast", "vectorized"):
            payload = run_dict(
                config, "galgel", 6000, 1, 1, True, engine,
                telemetry=TelemetryConfig(),
            )
            telem = payload.pop("telemetry")
            reports[engine] = render_report(merge_payloads([("cell", telem)]))
        assert reports["fast"] == reports["vectorized"]
        assert reports["fast"].startswith("== telemetry report ==")


class TestL2TierLiveness:
    def test_counters_fire_on_eligible_config(self):
        run_dict(nurapid_config(), "galgel", 8000, 3, 1, True, "vectorized")
        counters = runtime_counters()
        assert counters.get("vectorized.l2_refs_vector", 0) > 0
        assert counters.get("vectorized.l2_runs_applied", 0) > 0

    def test_tier_fires_under_compression(self):
        run_dict(compressed_config(), "galgel", 8000, 3, 1, True, "vectorized")
        assert runtime_counters().get("vectorized.l2_refs_vector", 0) > 0

    def test_tier_disarmed_by_fault_injection(self):
        config = nurapid_config(
            faults=FaultPlan(transient_per_access=1e-4, seed=5)
        )
        run_dict(config, "galgel", 8000, 3, 1, True, "vectorized")
        # An armed injector makes dg0 hits unprovable in bulk; the
        # kernel must not even try (the generic walk handles them).
        assert runtime_counters().get("vectorized.l2_refs_vector", 0) == 0

    def test_snuca_not_eligible(self):
        run_dict(snuca_config(), "galgel", 8000, 3, 1, True, "vectorized")
        assert runtime_counters().get("vectorized.l2_refs_vector", 0) == 0

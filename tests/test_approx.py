"""The analytical fast-forward tier (``engine="approx"``).

The approx engine is not held to bit-identity — that is the exact
engines' contract — but it must produce the same result schema,
deterministically, for every shipped configuration, refuse the
features it cannot synthesize (telemetry, fault injection), and track
the exact engine closely enough on the calibration workload that the
``repro.bench --approx-accuracy`` gate is meaningful.
"""

from dataclasses import replace

import pytest

from repro.bench import (
    APPROX_TOLERANCES,
    accuracy_matrix_configs,
    approx_accuracy,
)
from repro.common.errors import ConfigurationError
from repro.faults.models import FaultPlan
from repro.sim.config import base_config, nurapid_config, resolve_engine
from repro.sim.driver import _replay, make_system, run_benchmark
from repro.sim.results import run_result_to_dict
from repro.telemetry import TelemetryConfig
from repro.workloads.spec2k import get_benchmark
from repro.workloads.tracegen import generate_trace

from test_fastpath import shipped_configs

REFS = 20_000
WARMUP = 0.4

_TRACES = {}


def trace_for(seed):
    if seed not in _TRACES:
        _TRACES[seed] = generate_trace(get_benchmark("twolf"), REFS, seed=seed)
    return _TRACES[seed]


def run_approx(config, seed=0, **kwargs):
    return run_benchmark(
        replace(config, engine="approx"),
        "twolf",
        n_references=REFS,
        seed=seed,
        warmup_fraction=WARMUP,
        trace=trace_for(seed),
        **kwargs,
    )


class TestSchema:
    @pytest.mark.parametrize(
        "config", shipped_configs(), ids=lambda c: c.name
    )
    def test_every_shipped_config_runs(self, config):
        result = run_approx(config)
        assert result.benchmark == "twolf"
        assert result.config_name == config.name
        assert result.instructions > 0
        assert result.cycles > 0
        assert 0 < result.ipc < get_benchmark("twolf").core_ipc
        assert 0 < result.l2_accesses
        assert result.l2_hits + result.l2_misses == result.l2_accesses
        assert result.total_energy_nj > 0
        # Same payload surface as the exact engines (minus telemetry).
        payload = run_result_to_dict(result)
        exact = run_result_to_dict(
            run_benchmark(
                config,
                "twolf",
                n_references=REFS,
                seed=0,
                warmup_fraction=WARMUP,
                trace=trace_for(0),
            )
        )
        assert set(payload) == set(exact)
        # Exact-engine counters are sparse (only events that occurred
        # appear), so require the always-present core instead of strict
        # key equality.
        core_keys = {
            "accesses",
            "hits",
            "misses",
            "stall_cycles",
            "branch_penalty_cycles",
            "memory_accesses",
            "mshr_full_stalls",
        }
        assert core_keys <= set(payload["stats"])
        assert core_keys <= set(exact["stats"])

    def test_dgroup_fractions_form_a_distribution(self):
        result = run_approx(nurapid_config())
        assert result.dgroup_fractions
        total = sum(result.dgroup_fractions.values())
        assert 0 < total <= 1.0 + 1e-9
        assert all(f > 0 for f in result.dgroup_fractions.values())

    def test_deterministic(self):
        first = run_result_to_dict(run_approx(nurapid_config(), seed=1))
        second = run_result_to_dict(run_approx(nurapid_config(), seed=1))
        assert first == second


class TestRejections:
    def test_telemetry_rejected(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            run_approx(nurapid_config(), telemetry=TelemetryConfig())

    def test_faults_rejected(self):
        faulty = nurapid_config(faults=FaultPlan(transient_per_access=1e-4))
        with pytest.raises(ConfigurationError, match="fault"):
            run_approx(faulty)

    def test_no_per_reference_replay(self):
        config = base_config()
        system = make_system(config)
        with pytest.raises(ConfigurationError, match="approx"):
            _replay(system, None, trace_for(0), engine="approx")

    def test_engine_name_resolves(self):
        assert resolve_engine("approx") == "approx"


class TestAccuracy:
    """Spot accuracy on the calibration workload at test-sized refs.

    The authoritative gate is ``repro.bench --approx-accuracy`` on
    120k-reference traces; this keeps a coarse version in the tier-1
    suite so a badly broken model fails fast.  Bounds are 2x the
    documented ledger tolerances to absorb short-trace noise.
    """

    @pytest.mark.parametrize(
        "config", shipped_configs(), ids=lambda c: c.name
    )
    def test_tracks_exact_engine(self, config):
        exact = run_benchmark(
            config,
            "twolf",
            n_references=REFS,
            seed=0,
            warmup_fraction=WARMUP,
            trace=trace_for(0),
        )
        estimate = run_approx(config)
        assert estimate.ipc == pytest.approx(
            exact.ipc, rel=2 * APPROX_TOLERANCES["ipc_rel"]
        )
        assert abs(
            estimate.l2_miss_fraction - exact.l2_miss_fraction
        ) <= 2 * APPROX_TOLERANCES["miss_ratio_abs"]
        assert estimate.total_energy_nj == pytest.approx(
            exact.total_energy_nj, rel=2 * APPROX_TOLERANCES["energy_rel"]
        )


class TestBenchGate:
    def test_matrix_matches_shipped_configs(self):
        ours = [c.name for c in accuracy_matrix_configs()]
        shipped = [c.name for c in shipped_configs()]
        assert ours == shipped

    def test_tolerance_keys(self):
        assert set(APPROX_TOLERANCES) == {
            "ipc_rel",
            "miss_ratio_abs",
            "fastest_dgroup_abs",
            "energy_rel",
        }
        assert all(0 < v < 0.05 for v in APPROX_TOLERANCES.values())

    def test_gate_runs_small(self, tmp_path):
        from repro.workloads.tracegen import TraceCache

        cache = TraceCache(str(tmp_path))
        report = approx_accuracy(cache, refs=6000, warmup=WARMUP)
        assert report["cells"] == 21
        assert report["tolerances"] == APPROX_TOLERANCES
        assert set(report["worst_errors"]) == set(APPROX_TOLERANCES)
        assert report["approx_s"] > 0

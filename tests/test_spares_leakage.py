"""Spare-subarray management, yield model, and leakage model."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import DeterministicRNG
from repro.floorplan.spares import (
    RepairDomain,
    SpareManager,
    compare_layouts,
    domain_survival_probability,
    yield_model,
)
from repro.tech.leakage import (
    LeakageModel,
    LeakageParams,
    gating_savings,
    leakage_vs_dynamic_share,
    nurapid_leakage_model,
    validate_monotone_temperature,
)


class TestRepairDomain:
    def test_remap_uses_spares(self):
        d = RepairDomain("d", data_subarrays=8, spare_subarrays=2)
        assert d.fail_subarray(3)
        assert d.healthy
        assert d.physical_subarray(3) == 8  # first spare
        assert d.physical_subarray(0) == 0

    def test_spares_exhaust(self):
        d = RepairDomain("d", 8, 1)
        assert d.fail_subarray(0)
        assert not d.fail_subarray(1)
        assert not d.healthy
        with pytest.raises(SimulationError):
            d.physical_subarray(1)

    def test_refail_is_idempotent(self):
        d = RepairDomain("d", 8, 1)
        d.fail_subarray(0)
        assert d.fail_subarray(0)
        assert d.spares_used == 1

    def test_bounds(self):
        d = RepairDomain("d", 8, 1)
        with pytest.raises(ConfigurationError):
            d.fail_subarray(8)

    def test_validation_messages_are_precise(self):
        with pytest.raises(ConfigurationError, match="data_subarrays must be positive"):
            RepairDomain("d", 0, 1)
        with pytest.raises(
            ConfigurationError, match="spare_subarrays must be non-negative"
        ):
            RepairDomain("d", 8, -1)


class TestSpareManager:
    def test_defect_injection_counts_unrepaired(self):
        mgr = SpareManager()
        mgr.add_domain("big", 100, 3)
        rng = DeterministicRNG(3, "defects")
        unrepaired = mgr.inject_defects(rng, 0.10)
        summary = mgr.summary()["big"]
        assert summary["failed"] >= summary["repaired"]
        assert unrepaired == summary["failed"] - summary["repaired"]

    def test_zero_defect_rate_keeps_healthy(self):
        mgr = SpareManager()
        mgr.add_domain("d", 50, 0)
        assert mgr.inject_defects(DeterministicRNG(1, "x"), 0.0) == 0
        assert mgr.healthy

    def test_exhaustion_takes_the_die_path_deterministically(self):
        # More defects than spares: the first two failures remap, the
        # remaining six are permanently unrepaired, and any access to
        # them raises — the documented die path, same result every run.
        mgr = SpareManager()
        mgr.add_domain("d", 8, 2)
        unrepaired = mgr.inject_defects(DeterministicRNG(5, "d"), 1.0)
        assert unrepaired == 6
        assert not mgr.healthy
        summary = mgr.summary()["d"]
        assert summary["failed"] == 8
        assert summary["repaired"] == 2
        assert mgr.domain("d").physical_subarray(0) == 8
        with pytest.raises(SimulationError):
            mgr.domain("d").physical_subarray(7)

    def test_duplicate_domain_rejected(self):
        mgr = SpareManager()
        mgr.add_domain("d", 8, 1)
        with pytest.raises(ConfigurationError):
            mgr.add_domain("d", 8, 1)


class TestYieldModel:
    def test_survival_with_no_defects(self):
        assert domain_survival_probability(64, 1, 0.0) == pytest.approx(1.0)

    def test_spares_improve_survival(self):
        p0 = domain_survival_probability(64, 0, 0.01)
        p2 = domain_survival_probability(64, 2, 0.01)
        assert p2 > p0

    def test_yield_multiplies_domains(self):
        one = yield_model(1, 64, 1, 0.005)
        four = yield_model(4, 64, 1, 0.005)
        assert four == pytest.approx(one**4)

    def test_few_large_beats_many_small(self):
        """The §3.2 argument: shared spares win at equal budget."""
        results = compare_layouts(
            total_subarrays=512, total_spares=8, defect_probability=0.005,
            few_domains=4, many_domains=128,
        )
        assert results["few-large"] > results["many-small"]

    def test_compare_layouts_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            compare_layouts(500, 8, 0.01)


class TestLeakage:
    def test_power_scales_with_bits(self):
        m = LeakageModel()
        m.add_array("a", 1000)
        p1 = m.power_nw()
        m.add_array("b", 1000)
        assert m.power_nw() == pytest.approx(2 * p1)

    def test_temperature_monotone(self):
        assert validate_monotone_temperature(LeakageParams())

    def test_gating_reduces_power(self):
        m = LeakageModel()
        m.add_array("x", 1000)
        full = m.power_nw()
        m.set_gated("x", True)
        assert m.power_nw() == pytest.approx(full * LeakageParams().gated_fraction)

    def test_energy_scales_with_cycles(self):
        m = LeakageModel()
        m.add_array("x", 10_000)
        assert m.energy_nj(2000.0) == pytest.approx(2 * m.energy_nj(1000.0))

    def test_nurapid_model_has_tag_and_dgroups(self):
        m = nurapid_leakage_model()
        assert set(m.arrays()) == {"dgroup0", "dgroup1", "dgroup2", "dgroup3", "tag"}

    def test_gating_savings_grow_with_gated_groups(self):
        m = nurapid_leakage_model()
        s2 = gating_savings(m, 2, 4)
        s1 = gating_savings(m, 1, 4)
        assert 0 < s2 < s1 < 1

    def test_share_helper(self):
        assert leakage_vs_dynamic_share(1.0, 3.0) == pytest.approx(0.25)
        assert leakage_vs_dynamic_share(0.0, 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            leakage_vs_dynamic_share(-1.0, 1.0)

    def test_validation(self):
        m = LeakageModel()
        with pytest.raises(ConfigurationError):
            m.add_array("x", 0)
        m.add_array("x", 10)
        with pytest.raises(ConfigurationError):
            m.add_array("x", 10)
        with pytest.raises(ConfigurationError):
            m.set_gated("ghost", True)
        with pytest.raises(ConfigurationError):
            LeakageParams().scale_for_temperature(-1.0)

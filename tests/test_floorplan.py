"""Floorplans: geometry primitives, placements, and derived tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.floorplan.geometry import Point, Rect, manhattan_distance
from repro.floorplan.layout import DNUCAFloorplan, NuRAPIDFloorplan
from repro.floorplan.dgroups import (
    build_dnuca_geometry,
    build_nurapid_geometry,
    build_uniform_cache_spec,
)

MB = 1024 * 1024

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestGeometry:
    def test_manhattan(self):
        assert manhattan_distance(Point(0, 0), Point(3, 4)) == 7

    @settings(max_examples=50, deadline=None)
    @given(finite, finite, finite, finite)
    def test_manhattan_symmetric(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert manhattan_distance(a, b) == pytest.approx(manhattan_distance(b, a))

    @settings(max_examples=50, deadline=None)
    @given(finite, finite, finite, finite, finite, finite)
    def test_manhattan_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert manhattan_distance(a, c) <= (
            manhattan_distance(a, b) + manhattan_distance(b, c) + 1e-9
        )

    def test_rect_properties(self):
        r = Rect(1, 2, 3, 4)
        assert r.area == 12
        assert r.centroid == Point(2.5, 4.0)
        assert r.right == 4 and r.top == 6

    def test_rect_contains(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(1, 1))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(3, 1))

    def test_rect_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # shared edge only
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_nearest_edge_distance(self):
        r = Rect(0, 0, 2, 2)
        assert r.nearest_edge_distance(Point(1, 1)) == 0.0
        assert r.nearest_edge_distance(Point(4, 1)) == 2.0
        assert r.nearest_edge_distance(Point(4, 4)) == 4.0

    def test_degenerate_rect_rejected(self):
        with pytest.raises(ConfigurationError):
            Rect(0, 0, 0, 1)


class TestNuRAPIDFloorplan:
    def test_routes_monotonically_increase(self):
        fp = NuRAPIDFloorplan([16.0] * 4)
        routes = fp.route_distances_mm
        assert routes == sorted(routes)
        assert routes[0] < routes[-1]

    def test_first_dgroup_is_near_the_core(self):
        fp = NuRAPIDFloorplan([16.0] * 4)
        assert fp.route_distances_mm[0] < 2.0

    def test_swap_distance_symmetric(self):
        fp = NuRAPIDFloorplan([16.0] * 4)
        assert fp.swap_distance_mm(0, 3) == fp.swap_distance_mm(3, 0)
        assert fp.swap_distance_mm(1, 1) == 0.0

    def test_total_area_preserved(self):
        areas = [10.0, 12.0, 14.0]
        fp = NuRAPIDFloorplan(areas)
        assert fp.total_area_mm2 == pytest.approx(sum(areas))

    def test_rects_do_not_overlap(self):
        fp = NuRAPIDFloorplan([16.0] * 4)
        rects = [p.rect for p in fp.placed]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].overlaps(rects[j])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NuRAPIDFloorplan([])
        with pytest.raises(ConfigurationError):
            NuRAPIDFloorplan([-1.0])
        with pytest.raises(ConfigurationError):
            NuRAPIDFloorplan([1.0], detour_factor=0.5)
        fp = NuRAPIDFloorplan([1.0])
        with pytest.raises(ConfigurationError):
            fp.swap_distance_mm(0, 5)


class TestDNUCAFloorplan:
    def _fp(self):
        return DNUCAFloorplan(rows=8, cols=16, bank_width_mm=0.7, bank_height_mm=0.7)

    def test_bank_count(self):
        assert self._fp().n_banks == 128

    def test_hops_grow_with_row(self):
        fp = self._fp()
        center = 8
        assert fp.hops(center) < fp.hops(center + fp.cols)

    def test_network_cycles_monotone_in_hops(self):
        fp = self._fp()
        pairs = sorted((fp.hops(b), fp.network_cycles(b)) for b in range(fp.n_banks))
        cycles = [c for _, c in pairs]
        assert cycles == sorted(cycles)

    def test_banks_by_latency_sorted(self):
        fp = self._fp()
        order = fp.banks_by_latency()
        latencies = [fp.network_cycles(b) for b in order]
        assert latencies == sorted(latencies)
        assert len(set(order)) == fp.n_banks

    def test_hop_energy_scales_with_payload(self):
        fp = self._fp()
        assert fp.hop_energy_nj(1024) == pytest.approx(16 * fp.hop_energy_nj(64))

    def test_invalid_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            self._fp().hops(9999)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DNUCAFloorplan(0, 8, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            DNUCAFloorplan(8, 8, -1.0, 1.0)


class TestNuRAPIDGeometry:
    def test_table4_matches_paper_4dg(self):
        """The calibrated 4-d-group column is the paper's, exactly."""
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.table4_column() == [14, 14, 18, 18, 22, 22, 26, 26]

    def test_tag_cycles_match_paper(self):
        assert build_nurapid_geometry(n_dgroups=4).tag_cycles == 8

    def test_fastest_latency_ordering_across_counts(self):
        fastest = {
            n: build_nurapid_geometry(n_dgroups=n).hit_latency(0) for n in (2, 4, 8)
        }
        assert fastest[8] < fastest[4] < fastest[2]

    def test_latencies_monotone_across_dgroups(self):
        geo = build_nurapid_geometry(n_dgroups=8)
        lat = [geo.hit_latency(g) for g in range(8)]
        assert lat == sorted(lat)

    def test_energies_monotone_across_dgroups(self):
        geo = build_nurapid_geometry(n_dgroups=4)
        energies = [d.read_energy_nj for d in geo.dgroups]
        assert energies == sorted(energies)

    def test_paper_energy_bands(self):
        """Table 2 values within a generous band of the paper's."""
        four = build_nurapid_geometry(n_dgroups=4)
        closest = four.dgroups[0].read_energy_nj + four.tag_energy_nj
        farthest = four.dgroups[-1].read_energy_nj + four.tag_energy_nj
        assert 0.25 <= closest <= 0.65  # paper: 0.42
        assert 2.3 <= farthest <= 4.6  # paper: 3.3

    def test_swap_energy_grows_with_distance(self):
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.swap_energy_nj(0, 3) > geo.swap_energy_nj(0, 1)

    def test_swap_occupancy_symmetric(self):
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.swap_occupancy(0, 2) == geo.swap_occupancy(2, 0)

    def test_miss_latency_is_tag_only(self):
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.miss_latency() == geo.tag_cycles

    def test_restricted_frames_shrink_forward_pointer(self):
        full = build_nurapid_geometry(n_dgroups=4)
        restricted = build_nurapid_geometry(n_dgroups=4, restricted_frames=256)
        assert restricted.forward_pointer_bits < full.forward_pointer_bits
        # 4 d-groups (2 bits) + 256 frames (8 bits) = 10 bits, as §2.4.3 says.
        assert restricted.forward_pointer_bits == 10

    def test_full_pointer_matches_paper_example(self):
        """8 MB / 128 B blocks: 16-bit pointers for full flexibility."""
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.forward_pointer_bits == 16
        assert geo.reverse_pointer_bits == 16

    def test_pointer_overhead_matches_paper(self):
        """§2.4.3: 256 KB of pointers for the fully flexible 8 MB cache."""
        geo = build_nurapid_geometry(n_dgroups=4)
        assert geo.pointer_overhead_bits() == 65536 * 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_nurapid_geometry(n_dgroups=0)
        with pytest.raises(ConfigurationError):
            build_nurapid_geometry(n_dgroups=4, restricted_frames=100000)
        geo = build_nurapid_geometry(n_dgroups=2)
        with pytest.raises(ConfigurationError):
            geo.hit_latency(5)


class TestDNUCAGeometry:
    def test_bank_count_and_chains(self):
        geo = build_dnuca_geometry()
        assert geo.n_banks == 128
        assert geo.n_chains == 16
        assert geo.ways_per_bank == 2

    def test_chain_banks_get_slower_with_level(self):
        geo = build_dnuca_geometry()
        lat = [geo.chain_bank(0, level).latency_cycles for level in range(8)]
        assert lat == sorted(lat)

    def test_table4_column_spans_capacity(self):
        geo = build_dnuca_geometry()
        col = geo.table4_column()
        assert len(col) == 8
        means = [row[2] for row in col]
        assert means == sorted(means)
        assert 4 <= means[0] <= 11  # paper: 7
        assert 24 <= means[-1] <= 34  # paper: 29

    def test_probe_cheaper_than_read(self):
        geo = build_dnuca_geometry()
        for bank in geo.banks[:8]:
            assert bank.probe_energy_nj < bank.read_energy_nj

    def test_ss_array_matches_paper_band(self):
        geo = build_dnuca_geometry()
        assert 0.1 <= geo.ss_energy_nj <= 0.3  # paper: 0.19

    def test_chain_bank_validation(self):
        geo = build_dnuca_geometry()
        with pytest.raises(ConfigurationError):
            geo.chain_bank(99, 0)
        with pytest.raises(ConfigurationError):
            geo.chain_bank(0, 99)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_dnuca_geometry(capacity_bytes=MB + 1)
        with pytest.raises(ConfigurationError):
            build_dnuca_geometry(associativity=10)


class TestUniformCacheSpec:
    def test_pinned_latency(self):
        spec = build_uniform_cache_spec("L2", MB, 128, 8, latency_cycles=11)
        assert spec.latency_cycles == 11

    def test_derived_latency_when_unpinned(self):
        spec = build_uniform_cache_spec("L2", MB, 128, 8)
        assert spec.latency_cycles > 0

    def test_parallel_access_burns_more_energy(self):
        seq = build_uniform_cache_spec("a", MB, 128, 8, sequential_tag_data=True)
        par = build_uniform_cache_spec("b", MB, 128, 8, sequential_tag_data=False)
        assert par.read_energy_nj > seq.read_energy_nj

    def test_sequential_access_is_slower(self):
        seq = build_uniform_cache_spec("a", MB, 128, 8, sequential_tag_data=True)
        par = build_uniform_cache_spec("b", MB, 128, 8, sequential_tag_data=False)
        assert seq.latency_cycles >= par.latency_cycles

    def test_ports_and_energy_factor_multiply(self):
        one = build_uniform_cache_spec("a", 64 * 1024, 32, 2)
        two = build_uniform_cache_spec("b", 64 * 1024, 32, 2, ports=2)
        fat = build_uniform_cache_spec("c", 64 * 1024, 32, 2, energy_factor=3.0)
        assert two.read_energy_nj == pytest.approx(2 * one.read_energy_nj)
        assert fat.read_energy_nj == pytest.approx(3 * one.read_energy_nj)

"""Branch-stream characterization and ASCII figure rendering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.render import (
    bar_chart,
    distribution_chart,
    render_figure_distribution,
    stacked_bar,
)
from repro.workloads.branches import (
    BranchMix,
    branch_stream,
    characterize,
    mix_for_profile,
)
from repro.workloads.spec2k import get_benchmark


class TestBranchMix:
    def test_shares_must_sum(self):
        with pytest.raises(ConfigurationError):
            BranchMix(loop=0.5, biased=0.5, patterned=0.5, random=0.0)

    def test_mix_for_fp_is_loopy(self):
        fp = mix_for_profile(get_benchmark("applu"))
        integer = mix_for_profile(get_benchmark("parser"))
        assert fp.loop > integer.loop

    def test_random_share_tracks_mispredict_rate(self):
        easy = mix_for_profile(get_benchmark("swim"))  # rate 0.01
        hard = mix_for_profile(get_benchmark("mcf"))  # rate 0.08
        assert hard.random > easy.random


class TestBranchStream:
    def test_deterministic(self):
        mix = mix_for_profile(get_benchmark("twolf"))
        a = list(branch_stream(mix, 500, seed=1))
        b = list(branch_stream(mix, 500, seed=1))
        assert a == b

    def test_loop_branches_mostly_taken(self):
        mix = BranchMix(loop=1.0, biased=0.0, patterned=0.0, random=0.0,
                        loop_trip_count=16)
        outcomes = [taken for _, taken in branch_stream(mix, 4000, seed=1)]
        taken_rate = sum(outcomes) / len(outcomes)
        assert taken_rate == pytest.approx(15 / 16, abs=0.03)

    def test_invalid_length(self):
        mix = mix_for_profile(get_benchmark("twolf"))
        with pytest.raises(ConfigurationError):
            list(branch_stream(mix, 0))


class TestCharacterize:
    def test_rate_tracks_profile_ordering(self):
        """Apps with harder control flow measure higher rates."""
        easy = characterize(get_benchmark("swim"), n_branches=30_000)
        hard = characterize(get_benchmark("mcf"), n_branches=30_000)
        assert hard > easy

    def test_rate_in_plausible_band(self):
        rate = characterize(get_benchmark("twolf"), n_branches=30_000)
        assert 0.0 < rate < 0.25

    def test_warmup_validation(self):
        with pytest.raises(ConfigurationError):
            characterize(get_benchmark("twolf"), n_branches=100, warmup=100)


class TestRendering:
    def test_stacked_bar_width(self):
        bar = stacked_bar([0.5, 0.3], 0.2, width=20)
        assert bar.startswith("[") and bar.endswith("]")
        assert len(bar) == 22

    def test_stacked_bar_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_bar([0.8, 0.5], 0.0)

    def test_distribution_chart_labels(self):
        chart = distribution_chart(
            {"art": ([0.8, 0.1], 0.1), "mcf": ([0.4, 0.3], 0.3)}, width=20
        )
        assert "art" in chart and "mcf" in chart
        assert "legend" in chart

    def test_bar_chart_directions(self):
        chart = bar_chart({"up": 1.06, "down": 0.97}, baseline=1.0, width=20)
        lines = chart.splitlines()
        up = next(line for line in lines if line.startswith("up"))
        down = next(line for line in lines if line.startswith("down"))
        assert up.index("|") < up.rindex("#")
        assert down.index("#") < down.index("|")

    def test_render_from_report_rows(self):
        rows = [
            {"benchmark": "art", "dg0": 0.7, "dg1": 0.2, "miss": 0.1},
            {"benchmark": "mcf", "dg0": 0.3, "dg1": 0.3, "miss": 0.4},
        ]
        out = render_figure_distribution(rows, ["dg0", "dg1"], ["benchmark"])
        assert "art" in out and "#" in out

    def test_empty_chart_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({})

"""The repro.telemetry subsystem: registry, tracing, reports, plumbing."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.common.stats import Counter, Distribution
from repro.sim.config import nurapid_config
from repro.sim.driver import run_benchmark, run_suite
from repro.sim.sweep import Sweep, SweepAxis
from repro.telemetry import (
    EventTracer,
    Histogram,
    LATENCY_BOUNDS,
    NullProfiler,
    PhaseProfiler,
    StatRegistry,
    Telemetry,
    TelemetryConfig,
    occupancy_bounds,
    read_trace,
    telemetry_from_env,
    trace_summary,
)
from repro.telemetry.report import (
    dgroup_caches,
    dgroup_rows,
    extract_payloads,
    merge_payloads,
    render_report,
)

REFS = 20_000


class TestHistogram:
    def test_bucketing_and_mean(self):
        hist = Histogram((10, 20))
        for value in (5, 10, 15, 100):
            hist.record(value)
        assert hist.counts == [2, 1, 1]  # <=10, <=20, overflow
        assert hist.n == 4
        assert hist.mean == pytest.approx(32.5)
        assert hist.min == 5 and hist.max == 100

    def test_quantiles_bucket_resolution(self):
        hist = Histogram((1, 2, 4, 8))
        for _ in range(90):
            hist.record(1)
        for _ in range(10):
            hist.record(8)
        assert hist.quantile(0.5) == 1
        assert hist.quantile(0.95) == 8
        assert hist.quantile(0.0) == 1

    def test_overflow_quantile_reports_observed_max(self):
        hist = Histogram((1,))
        hist.record(99)
        assert hist.quantile(1.0) == 99

    def test_merge_commutative(self):
        a, b = Histogram((5, 10)), Histogram((5, 10))
        for v in (1, 7, 12):
            a.record(v)
        for v in (3, 20):
            b.record(v)
        ab = Histogram.from_dict(a.to_dict())
        ab.merge(b)
        ba = Histogram.from_dict(b.to_dict())
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()

    def test_merge_associative(self):
        parts = []
        for seed in range(3):
            hist = Histogram((5, 10))
            for v in range(seed, 15, 3):
                hist.record(v)
            parts.append(hist)
        left = Histogram.from_dict(parts[0].to_dict())
        left.merge(parts[1])
        left.merge(parts[2])
        right_tail = Histogram.from_dict(parts[1].to_dict())
        right_tail.merge(parts[2])
        right = Histogram.from_dict(parts[0].to_dict())
        right.merge(right_tail)
        assert left.to_dict() == right.to_dict()

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ConfigurationError, match="different bounds"):
            Histogram((1, 2)).merge(Histogram((1, 3)))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Histogram(())
        with pytest.raises(ConfigurationError):
            Histogram((2, 1))
        with pytest.raises(ConfigurationError):
            Histogram((1, 1))

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram((1,)).record(0, weight=-1)

    def test_dict_roundtrip(self):
        hist = Histogram(LATENCY_BOUNDS)
        for v in (3, 17, 900):
            hist.record(v)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            Histogram.from_dict({"bounds": [1, 2]})
        with pytest.raises(ConfigurationError, match="malformed"):
            Histogram.from_dict({"bounds": [1, 2], "counts": [0], "n": 0, "sum": 0})

    def test_occupancy_bounds(self):
        assert occupancy_bounds(3) == (0.0, 1.0, 2.0, 3.0)
        with pytest.raises(ConfigurationError):
            occupancy_bounds(0)


class TestStatRegistry:
    def test_int_exact_counters(self):
        registry = StatRegistry()
        for _ in range(5):
            registry.add("l2.hits")
        assert registry.get("l2.hits") == 5
        assert isinstance(registry.get("l2.hits"), int)

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            StatRegistry().add("x", -1)

    def test_scope_prefixing(self):
        registry = StatRegistry()
        scope = registry.scope("l2").scope("dg0")
        scope.add("hits", 3)
        assert registry.get("l2.dg0.hits") == 3
        assert scope.path == "l2.dg0"
        with pytest.raises(ConfigurationError):
            registry.scope("")

    def test_set_is_gauge_overwrite(self):
        registry = StatRegistry()
        registry.set("occ", 4)
        registry.set("occ", 7)
        assert registry.get("occ") == 7

    def test_histogram_fetch_or_create_checks_bounds(self):
        registry = StatRegistry()
        hist = registry.histogram("lat", (1, 2))
        assert registry.histogram("lat", (1, 2)) is hist
        with pytest.raises(ConfigurationError, match="different bounds"):
            registry.histogram("lat", (1, 3))

    def test_merge_is_lossless_over_partitions(self):
        # Any partition of the increments merges back to the serial total.
        serial = StatRegistry()
        workers = [StatRegistry() for _ in range(3)]
        for i in range(60):
            serial.add("hits")
            serial.histogram("lat", (4, 8)).record(i % 10)
            worker = workers[i % 3]
            worker.add("hits")
            worker.histogram("lat", (4, 8)).record(i % 10)
        merged = StatRegistry.merged(w.to_dict() for w in workers)
        assert merged.to_dict() == serial.to_dict()

    def test_merge_order_invariant(self):
        parts = []
        for offset in range(3):
            registry = StatRegistry()
            registry.add("n", offset + 1)
            registry.histogram("h", (1,)).record(offset)
            parts.append(registry.to_dict())
        forward = StatRegistry.merged(parts)
        backward = StatRegistry.merged(reversed(parts))
        assert forward.to_dict() == backward.to_dict()

    def test_prefixes(self):
        registry = StatRegistry()
        registry.add("l2.dg0.hits")
        registry.add("l1d.hits")
        registry.histogram("core.occ", (1,))
        assert registry.prefixes() == ["core", "l1d", "l2"]

    def test_counters_filtered_sorted(self):
        registry = StatRegistry()
        registry.add("b.x")
        registry.add("a.y")
        registry.add("b.a")
        assert list(registry.counters("b.")) == ["b.a", "b.x"]

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            StatRegistry.from_dict({"counters": 7})


class TestCommonStats:
    def test_counter_int_exact_and_merge(self):
        a, b = Counter(), Counter()
        for _ in range(3):
            a.add("hits")
        b.add("hits", 4)
        a.merge(b)
        assert a.get("hits") == 7
        assert isinstance(a.get("hits"), int)

    def test_counter_snapshot_diff(self):
        counter = Counter()
        counter.add("hits", 2)
        before = counter.snapshot()
        counter.add("hits", 3)
        counter.add("misses")
        assert counter.diff(before) == {"hits": 3, "misses": 1}
        assert counter.diff(counter.snapshot()) == {}  # zero deltas omitted

    def test_distribution_snapshot_diff(self):
        dist = Distribution()
        dist.add(0, 5)
        before = dist.snapshot()
        dist.add(0)
        dist.add(1, 2)
        assert dist.diff(before) == {0: 1, 1: 2}


class TestTelemetryConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(trace_sample=0)
        with pytest.raises(ConfigurationError):
            TelemetryConfig(trace_limit=0)

    def test_events_enabled(self):
        assert not TelemetryConfig().events_enabled
        assert TelemetryConfig(events=True).events_enabled
        assert TelemetryConfig(trace_dir="/tmp/x").events_enabled

    def test_fingerprint_json_safe(self):
        fp = TelemetryConfig(trace_dir="d", trace_sample=2).fingerprint()
        assert json.loads(json.dumps(fp)) == fp

    def test_from_env(self, tmp_path):
        assert telemetry_from_env(None) is None
        assert telemetry_from_env("") is None
        assert telemetry_from_env("off") is None
        assert telemetry_from_env("0") is None
        on = telemetry_from_env("on")
        assert on == TelemetryConfig()
        traced = telemetry_from_env(str(tmp_path))
        assert traced.trace_dir == str(tmp_path)
        assert traced.events_enabled

    def test_session_rejects_disabled_config(self):
        with pytest.raises(ConfigurationError):
            Telemetry(TelemetryConfig(enabled=False), "run")


class TestEventTracer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventTracer(sample=0)
        with pytest.raises(ConfigurationError):
            EventTracer(limit=0)

    def test_sampling_decimates(self):
        tracer = EventTracer(sample=3)
        for i in range(10):
            tracer.emit("placement", addr=i)
        assert tracer.seen == 10
        assert [e["addr"] for e in tracer.events()] == [0, 3, 6, 9]
        assert all(e["seq"] == e["addr"] + 1 for e in tracer.events())

    def test_head_bounding_keeps_first(self):
        tracer = EventTracer(limit=3)
        for i in range(10):
            tracer.emit("placement", addr=i)
        assert [e["addr"] for e in tracer.events()] == [0, 1, 2]
        assert tracer.dropped == 7
        assert tracer.seen == 10

    def test_ring_keeps_last(self):
        tracer = EventTracer(limit=3, ring=True)
        for i in range(10):
            tracer.emit("placement", addr=i)
        assert [e["addr"] for e in tracer.events()] == [7, 8, 9]
        assert tracer.dropped == 7

    def test_per_kind_counts_unsampled(self):
        tracer = EventTracer(sample=2)
        for _ in range(4):
            tracer.emit("placement")
        tracer.emit("demotion")
        summary = tracer.summary()
        assert summary["per_kind"] == {"demotion": 1, "placement": 4}
        assert summary["kept"] == 3  # seq 1, 3, 5

    def test_flush_roundtrip_with_meta(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("placement", addr=1, dgroup=0)
        tracer.emit("eviction", addr=2)
        path = tracer.flush(str(tmp_path / "deep" / "t.jsonl"))
        events = read_trace(path)
        assert events[0]["kind"] == "meta"
        assert events[0]["kept"] == 2
        assert trace_summary(events) == {"eviction": 1, "placement": 1}
        assert events[1] == {"seq": 1, "kind": "placement", "addr": 1, "dgroup": 0}

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json{\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable"):
            read_trace(str(path))
        with pytest.raises(ConfigurationError, match="unreadable"):
            read_trace(str(tmp_path / "missing.jsonl"))


class TestProfiler:
    def test_nesting_and_own_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        summary = profiler.summary()
        assert set(summary) == {"outer", "outer/inner"}
        outer = summary["outer"]
        assert outer["count"] == 1
        assert outer["own_seconds"] <= outer["seconds"]

    def test_slash_in_name_rejected(self):
        with pytest.raises(ConfigurationError):
            with PhaseProfiler().phase("a/b"):
                pass

    def test_null_profiler(self):
        null = NullProfiler()
        with null.phase("x"):
            pass
        assert null.summary() == {}
        assert null.seconds("x") == 0.0


class TestCacheTelemetry:
    def test_on_access_counters_and_reuse(self):
        session = Telemetry(TelemetryConfig(events=True), "t")
        client = session.cache_client("l2")
        client.on_access(0x40, hit=True, dgroup=1, latency=8)
        client.on_access(0x80, hit=False, dgroup=None, latency=0)
        client.on_access(0x40, hit=True, dgroup=0, latency=4)
        registry = session.registry
        assert registry.get("l2.dg1.hits") == 1
        assert registry.get("l2.dg0.hits") == 1
        assert registry.get("l2.misses") == 1
        assert client.hit_latency.n == 2
        assert client.reuse.n == 1  # only 0x40 was re-seen (distance 2)
        client.event("placement", addr=0x80, dgroup=0)
        assert session.tracer.events()[0]["cache"] == "l2"

    def test_flat_cache_uses_plain_hits(self):
        session = Telemetry(TelemetryConfig(), "t")
        client = session.cache_client("l1d")
        client.on_access(0, hit=True, dgroup=None, latency=1)
        assert session.registry.get("l1d.hits") == 1

    def test_event_null_without_tracer(self):
        session = Telemetry(TelemetryConfig(), "t")
        client = session.cache_client("l2")
        client.event("placement", addr=0)  # no tracer: silently ignored
        assert session.tracer is None


class TestReport:
    def payload(self, run="r0"):
        session = Telemetry(TelemetryConfig(), run)
        scope = session.registry.scope("l2")
        scope.add("dg0.hits", 30)
        scope.add("dg1.hits", 10)
        scope.add("misses", 10)
        session.capture_gauge("l2.dg0.occupied", 8)
        session.capture_gauge("l2.dg0.frames", 16)
        session.capture_gauge("l2.dg1.frames", 16)
        session.capture_gauge("l2.energy_nj.dg0.read", 5.0)
        session.capture_gauge("l2.energy_nj.move.0->1", 2.0)
        return session.payload()

    def test_dgroup_rows(self):
        registry = merge_payloads([("r0", self.payload())])
        assert dgroup_caches(registry) == {"l2": [0, 1]}
        rows = dgroup_rows(registry, "l2")
        assert [r["dgroup"] for r in rows] == [0, 1, "miss"]
        assert rows[0]["hits"] == 30
        assert rows[0]["share"] == pytest.approx(0.6)
        assert rows[0]["energy_nj"] == pytest.approx(7.0)  # read + outbound move
        assert rows[0]["occupancy"] == pytest.approx(0.5)
        assert rows[1]["occupancy"] == 0.0  # frames reported, nothing occupied
        assert rows[2]["share"] == pytest.approx(0.2)

    def test_unknown_cache_rejected(self):
        registry = merge_payloads([("r0", self.payload())])
        with pytest.raises(ConfigurationError, match="no per-d-group"):
            dgroup_rows(registry, "nope")

    def test_render_report_sections(self):
        session = Telemetry(TelemetryConfig(), "r0")
        session.registry.scope("l2").add("dg0.hits", 4)
        session.histogram("lat", (1, 2)).record(1)
        text = render_report(merge_payloads([("r0", session.payload())]))
        assert "per-d-group breakdown" in text
        assert "-- histograms --" in text
        assert "-- counters --" in text

    def test_extract_payload_shapes(self):
        raw = self.payload()
        assert extract_payloads(raw) == [("r0", raw)]
        run_result = {"config_name": "c", "benchmark": "b", "telemetry": raw}
        assert extract_payloads(run_result) == [("c/b", raw)]
        checkpoint = {
            "cells": {"p0": {"b": {"result": {"telemetry": raw}}}},
        }
        assert extract_payloads(checkpoint) == [("p0/b", raw)]
        suite = {"runs": {"b": {"telemetry": raw}}}
        assert extract_payloads(suite) == [("b", raw)]
        with pytest.raises(ConfigurationError, match="no telemetry"):
            extract_payloads({"telemetry": None})

    def test_merge_payloads_sorted_by_key(self):
        a, b = self.payload("a"), self.payload("b")
        forward = merge_payloads([("a", a), ("b", b)])
        backward = merge_payloads([("b", b), ("a", a)])
        assert forward.to_dict() == backward.to_dict()
        with pytest.raises(ConfigurationError, match="no registry"):
            merge_payloads([("x", {"run": "x"})])


class TestInstrumentedRuns:
    def test_results_identical_with_and_without_telemetry(self):
        config = nurapid_config()
        plain = run_benchmark(config, "art", n_references=REFS, seed=1)
        traced = run_benchmark(
            config,
            "art",
            n_references=REFS,
            seed=1,
            telemetry=TelemetryConfig(events=True, profile=True),
        )
        assert plain.telemetry is None
        assert traced.telemetry is not None
        stripped = traced
        stripped.telemetry = None
        assert stripped == plain

    def test_payload_counters_match_run_stats(self):
        config = nurapid_config()
        result = run_benchmark(
            config, "art", n_references=REFS, seed=1,
            telemetry=TelemetryConfig(),
        )
        registry = merge_payloads([("art", result.telemetry)]).to_dict()
        counters = registry["counters"]
        l2 = "NuRAPID"  # the nurapid config's L2 scope name
        assert counters[f"{l2}.hits"] == result.l2_hits
        assert counters[f"{l2}.misses"] == result.l2_misses
        hits_by_group = sum(
            v for k, v in counters.items()
            if k.startswith(f"{l2}.dg") and k.endswith(".hits")
        )
        assert hits_by_group == result.l2_hits

    def test_serial_matches_two_workers_bit_identically(self):
        config = nurapid_config()
        reports = {}
        for jobs in (1, 2):
            suite = run_suite(
                config,
                ["art", "twolf"],
                n_references=REFS,
                seed=1,
                jobs=jobs,
                telemetry=TelemetryConfig(),
            )
            reports[jobs] = render_report(
                merge_payloads(
                    [(name, run.telemetry) for name, run in sorted(suite.runs.items())]
                )
            )
        assert reports[1] == reports[2]

    def test_trace_flushed_and_readable(self, tmp_path):
        result = run_benchmark(
            nurapid_config(),
            "art",
            n_references=REFS,
            seed=1,
            telemetry=TelemetryConfig(trace_dir=str(tmp_path), trace_limit=500),
        )
        trace = result.telemetry["trace"]
        assert os.path.dirname(trace["path"]) == str(tmp_path)
        events = read_trace(trace["path"])
        assert events[0]["kind"] == "meta"
        kinds = set(trace_summary(events))
        assert "placement" in kinds
        assert len(events) - 1 == trace["kept"] <= 500

    def test_profile_section_only_when_requested(self):
        config = nurapid_config()
        quiet = run_benchmark(
            config, "art", n_references=REFS, seed=1, telemetry=TelemetryConfig()
        )
        assert "profile" not in quiet.telemetry
        profiled = run_benchmark(
            config, "art", n_references=REFS, seed=1,
            telemetry=TelemetryConfig(profile=True),
        )
        phases = set(profiled.telemetry["profile"])
        assert {"build", "warmup", "measure"} <= phases


class TestSweepTelemetry:
    def sweep(self, telemetry=None, **kw):
        defaults = dict(
            axes=[SweepAxis("n_dgroups", (2, 4))],
            build=lambda n_dgroups: nurapid_config(n_dgroups=n_dgroups),
            benchmarks=["wupwise"],
            n_references=8_000,
            telemetry=telemetry,
        )
        defaults.update(kw)
        return Sweep(**defaults)

    def test_signature_includes_fingerprint(self):
        plain = self.sweep().signature()
        traced = self.sweep(telemetry=TelemetryConfig()).signature()
        assert plain != traced

    def test_checkpoint_resume_preserves_payloads(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = self.sweep(TelemetryConfig(), checkpoint_path=path).run()
        assert all(p.runs["wupwise"].telemetry is not None for p in first)

        import repro.sim.sweep as sweep_mod

        def never_called(config, benchmark, **kw):  # pragma: no cover
            raise AssertionError("resume must restore cells, not re-run")

        original = sweep_mod.run_benchmark
        sweep_mod.run_benchmark = never_called
        try:
            second = self.sweep(TelemetryConfig(), checkpoint_path=path).run()
        finally:
            sweep_mod.run_benchmark = original
        for a, b in zip(first, second):
            assert a.runs["wupwise"].telemetry == b.runs["wupwise"].telemetry

    def test_resume_with_different_telemetry_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        self.sweep(TelemetryConfig(), checkpoint_path=path).run()
        with pytest.raises(ConfigurationError, match="signature"):
            self.sweep(None, checkpoint_path=path).run()


class TestExperimentsDefault:
    def test_env_convention(self, monkeypatch):
        from repro.experiments.common import default_telemetry, reset_default_telemetry, set_default_telemetry

        reset_default_telemetry()
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert default_telemetry() == TelemetryConfig()
        # An explicit set — even to None — overrides the environment.
        set_default_telemetry(None)
        try:
            assert default_telemetry() is None
        finally:
            reset_default_telemetry()
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert default_telemetry() is None

"""Workloads: suite integrity, trace containers, the generator."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.spec2k import (
    SPEC2K_SUITE,
    get_benchmark,
    high_load_names,
    low_load_names,
    suite_names,
)
from repro.workloads.trace import Trace
from repro.workloads.tracegen import (
    BULK_BASE,
    HOT_BASE,
    REFERENCE_BLOCK,
    REFERENCE_L2_SETS,
    STREAM_BASE,
    WARM_BASE,
    TraceGenerator,
    generate_trace,
)


class TestSuite:
    def test_fifteen_applications(self):
        assert len(SPEC2K_SUITE) == 15

    def test_load_split_matches_paper(self):
        assert len(high_load_names()) == 12
        assert len(low_load_names()) == 3

    def test_known_members(self):
        for name in ("art", "mcf", "applu", "wupwise"):
            assert name in SPEC2K_SUITE

    def test_get_benchmark_error(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("doom3")

    def test_shares_sum_to_one(self):
        for profile in SPEC2K_SUITE.values():
            total = (
                profile.warm_share
                + profile.bulk_share
                + profile.stream_share
                + profile.l2hot_share
            )
            assert total == pytest.approx(1.0)

    def test_beyond_l1_fraction_sane(self):
        for profile in SPEC2K_SUITE.values():
            assert 0.0 < profile.beyond_l1_fraction < 0.5

    def test_suite_names_sorted(self):
        assert suite_names() == sorted(suite_names())

    def test_high_load_has_heavier_apki(self):
        high = min(SPEC2K_SUITE[n].table3_l2_apki for n in high_load_names())
        low = max(SPEC2K_SUITE[n].table3_l2_apki for n in low_load_names())
        assert high > low


class TestTrace:
    def _trace(self, n=10):
        return Trace(
            benchmark="x",
            gaps=np.full(n, 3, dtype=np.int64),
            addresses=np.arange(n, dtype=np.int64) * 128,
            writes=np.zeros(n, dtype=bool),
        )

    def test_lengths_and_instructions(self):
        t = self._trace(10)
        assert len(t) == 10
        assert t.references == 10
        assert t.instructions == 30

    def test_records_iteration(self):
        t = self._trace(3)
        records = list(t.records())
        assert records[1] == (3, 128, False)

    def test_head_and_split(self):
        t = self._trace(10)
        warm, rest = t.split(0.3)
        assert len(warm) == 3 and len(rest) == 7
        assert warm.addresses[0] == t.addresses[0]
        assert rest.addresses[0] == t.addresses[3]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace(
                benchmark="x",
                gaps=np.ones(3, dtype=np.int64),
                addresses=np.zeros(2, dtype=np.int64),
                writes=np.zeros(3, dtype=bool),
            )

    def test_zero_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace(
                benchmark="x",
                gaps=np.zeros(3, dtype=np.int64),
                addresses=np.zeros(3, dtype=np.int64),
                writes=np.zeros(3, dtype=bool),
            )

    def test_save_load_roundtrip(self, tmp_path):
        t = self._trace(10)
        path = str(tmp_path / "trace.npz")
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.benchmark == t.benchmark
        assert np.array_equal(loaded.addresses, t.addresses)
        assert np.array_equal(loaded.gaps, t.gaps)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Trace.load(str(tmp_path / "nope.npz"))


class TestTraceGenerator:
    def test_deterministic(self):
        p = get_benchmark("art")
        a = generate_trace(p, 5000, seed=3)
        b = generate_trace(p, 5000, seed=3)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.gaps, b.gaps)

    def test_seed_changes_stream(self):
        p = get_benchmark("art")
        a = generate_trace(p, 5000, seed=3)
        b = generate_trace(p, 5000, seed=4)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_addresses_fall_in_known_regions(self):
        from repro.workloads.tracegen import L2HOT_BASE

        p = get_benchmark("equake")
        t = generate_trace(p, 20000, seed=1)
        a = t.addresses
        # Tag scattering permutes bits 20-27, so membership is checked
        # against each region's 256 MB window (bits >= 28).
        in_region = (
            ((a >= HOT_BASE) & (a < L2HOT_BASE))
            | ((a >= L2HOT_BASE) & (a < WARM_BASE))
            | ((a >= WARM_BASE) & (a < BULK_BASE))
            | ((a >= BULK_BASE) & (a < STREAM_BASE))
            | (a >= STREAM_BASE)
        )
        assert bool(in_region.all())

    def test_beyond_l1_share_near_target(self):
        from repro.workloads.tracegen import L2HOT_BASE

        p = get_benchmark("applu")
        t = generate_trace(p, 60000, seed=1)
        beyond = (t.addresses >= L2HOT_BASE).mean()
        assert beyond == pytest.approx(p.beyond_l1_fraction, rel=0.15)

    def test_write_fraction_near_target(self):
        p = get_benchmark("applu")
        t = generate_trace(p, 60000, seed=1)
        assert t.writes.mean() == pytest.approx(p.write_fraction, rel=0.15)

    def test_mean_gap_matches_mem_fraction(self):
        p = get_benchmark("applu")
        t = generate_trace(p, 60000, seed=1)
        assert t.gaps.mean() == pytest.approx(1.0 / p.mem_fraction, rel=0.1)

    def test_conflict_layout_concentrates_sets(self):
        p = get_benchmark("art")  # warm_set_conflict = 3
        t = generate_trace(p, 60000, seed=1)
        warm = t.addresses[(t.addresses >= WARM_BASE) & (t.addresses < BULK_BASE)]
        sets = (warm // REFERENCE_BLOCK) % REFERENCE_L2_SETS
        used = np.unique(sets)
        assert len(used) <= REFERENCE_L2_SETS // p.warm_set_conflict
        assert bool((used % p.warm_set_conflict == 0).all())

    def test_drift_shifts_popularity(self):
        """Early and late halves of the warm stream differ in their
        most popular blocks when drift is enabled."""
        p = get_benchmark("applu")
        t = generate_trace(p, 200000, seed=1)
        warm_mask = (t.addresses >= WARM_BASE) & (t.addresses < BULK_BASE)
        warm = t.addresses[warm_mask]
        half = len(warm) // 2
        early = set(np.unique(warm[:half]).tolist())
        late_counts = {}
        for a in warm[half:]:
            late_counts[int(a)] = late_counts.get(int(a), 0) + 1
        fresh_late = [a for a in late_counts if a not in early]
        assert fresh_late  # drift introduced previously untouched blocks

    def test_stream_is_sequential(self):
        p = get_benchmark("swim")
        t = generate_trace(p, 60000, seed=1)
        stream = t.addresses[t.addresses >= STREAM_BASE]
        deltas = np.diff(stream)
        assert bool((deltas[deltas > 0] == p.stream_stride).all())

    def test_invalid_reference_count(self):
        with pytest.raises(ConfigurationError):
            generate_trace(get_benchmark("art"), 0)

    def test_invalid_conflict(self):
        with pytest.raises(ConfigurationError):
            TraceGenerator(get_benchmark("art"), warm_set_conflict=0)


class TestDecodedValidation:
    """Trace.decoded / decoded_batch reject geometry they cannot mask."""

    def _trace(self, n=16):
        p = get_benchmark("art")
        return generate_trace(p, n, seed=3)

    def test_non_power_of_two_block_bytes(self):
        t = self._trace()
        with pytest.raises(ConfigurationError, match="power of two"):
            t.decoded(block_bytes=48, n_sets=64)

    def test_non_power_of_two_sets(self):
        t = self._trace()
        with pytest.raises(ConfigurationError, match="power of two"):
            t.decoded(block_bytes=32, n_sets=12)

    def test_non_positive_geometry(self):
        t = self._trace()
        with pytest.raises(ConfigurationError):
            t.decoded(block_bytes=0, n_sets=64)
        with pytest.raises(ConfigurationError):
            t.decoded(block_bytes=32, n_sets=-8)

    def test_empty_trace(self):
        empty = Trace(
            benchmark="empty",
            gaps=np.zeros(0, dtype=np.int64),
            addresses=np.zeros(0, dtype=np.int64),
            writes=np.zeros(0, dtype=bool),
        )
        with pytest.raises(ConfigurationError, match="empty"):
            empty.decoded(block_bytes=32, n_sets=64)

    def test_batch_shares_validation(self):
        t = self._trace()
        with pytest.raises(ConfigurationError, match="power of two"):
            t.decoded_batch(block_bytes=48, n_sets=64)
        empty = Trace(
            benchmark="empty",
            gaps=np.zeros(0, dtype=np.int64),
            addresses=np.zeros(0, dtype=np.int64),
            writes=np.zeros(0, dtype=bool),
        )
        with pytest.raises(ConfigurationError, match="empty"):
            empty.decoded_batch(block_bytes=32, n_sets=64)

    def test_valid_geometry_decodes(self):
        t = self._trace()
        d = t.decoded(block_bytes=32, n_sets=64)
        assert len(d.block_addrs) == len(t)
        assert all(b % 32 == 0 for b in d.block_addrs)
        assert all(0 <= s < 64 for s in d.set_indices)

"""Zero-copy decoded-trace transport: parity, reuse, and recovery.

The transport layer (:mod:`repro.workloads.transport`) is pure
optimization: a worker that mmaps the decoded segment must produce the
exact payload bytes of one that inflates the ``.npz``, the parent must
build each segment exactly once (including across worker SIGKILLs),
and a worker process must decode each trace at most once no matter how
many cells it executes — all proven here through the ``transport.*``
runtime counters.
"""

import json
import os

import pytest

from repro.resilience import chaos
from repro.resilience.supervisor import SupervisorConfig, run_cells_supervised
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.parallel import CellTask, execute_cell, run_cells
from repro.telemetry import reset_runtime_registry, runtime_counters
from repro.workloads import transport
from repro.workloads.tracegen import TraceCache

REFS = 3_000


@pytest.fixture(autouse=True)
def _fresh_transport_state():
    reset_runtime_registry()
    transport.reset_for_tests()
    yield
    reset_runtime_registry()
    transport.reset_for_tests()


@pytest.fixture
def trace_paths(tmp_path):
    cache = TraceCache(str(tmp_path / "traces"))
    return {
        benchmark: cache.ensure(benchmark, REFS, seed=7)
        for benchmark in ("twolf", "wupwise")
    }


def make_tasks(trace_paths, with_mmap=True):
    cells = [
        (config, benchmark)
        for config in (nurapid_config(), snuca_config())
        for benchmark in ("twolf", "wupwise")
    ]
    return [
        CellTask(
            index=i,
            config=config,
            benchmark=benchmark,
            n_references=REFS,
            seed=7,
            warmup_fraction=0.3,
            trace_path=trace_paths[benchmark],
            mmap_path=(
                transport.ensure_decoded(trace_paths[benchmark])
                if with_mmap
                else None
            ),
        )
        for i, (config, benchmark) in enumerate(cells)
    ]


class TestSegmentLifecycle:
    def test_build_once_then_reuse(self, trace_paths):
        path = transport.ensure_decoded(trace_paths["twolf"])
        assert path == transport.decoded_path(trace_paths["twolf"])
        assert os.path.exists(path) and os.path.exists(path + ".sha256")
        assert runtime_counters()["transport.segment_builds"] == 1
        # Same process: memoized, no re-hash, no rebuild.
        assert transport.ensure_decoded(trace_paths["twolf"]) == path
        assert runtime_counters()["transport.segment_builds"] == 1
        # Fresh process (simulated): the file is found and verified.
        transport.reset_for_tests()
        assert transport.ensure_decoded(trace_paths["twolf"]) == path
        counters = runtime_counters()
        assert counters["transport.segment_builds"] == 1
        assert counters["transport.segment_reuses"] == 1

    def test_missing_trace_yields_none(self, tmp_path):
        assert transport.ensure_decoded(None) is None
        assert transport.ensure_decoded(str(tmp_path / "absent.npz")) is None

    def test_corrupt_segment_falls_back(self, trace_paths):
        path = transport.ensure_decoded(trace_paths["twolf"])
        with open(path, "r+b") as handle:
            handle.seek(200)
            handle.write(b"\xff\xff\xff\xff")
        transport.reset_for_tests()
        assert transport.load_mmap_trace(path, "twolf", REFS) is None
        assert runtime_counters()["transport.mmap_unusable"] == 1

    def test_wrong_shape_falls_back(self, trace_paths):
        path = transport.ensure_decoded(trace_paths["twolf"])
        assert transport.load_mmap_trace(path, "twolf", REFS + 1) is None
        assert runtime_counters()["transport.mmap_unusable"] == 1


class TestWorkerReuse:
    def test_one_decode_per_process(self, trace_paths):
        path = transport.ensure_decoded(trace_paths["twolf"])
        first = transport.load_mmap_trace(path, "twolf", REFS)
        second = transport.load_mmap_trace(path, "twolf", REFS)
        assert first is second
        counters = runtime_counters()
        assert counters["transport.trace_loads"] == 1
        assert counters["transport.trace_reuses"] == 1

    def test_cells_share_one_decode(self, trace_paths):
        # Four cells over two traces through the worker entrypoint:
        # exactly one load per trace, every later cell a pure reuse —
        # the "zero per-cell re-decodes" property.
        tasks = make_tasks(trace_paths)
        payloads = [execute_cell(task) for task in tasks]
        assert all(p["outcome"]["status"] == "ok" for p in payloads)
        counters = runtime_counters()
        assert counters["transport.trace_loads"] == 2
        assert counters["transport.trace_reuses"] == 2
        assert "transport.mmap_unusable" not in counters


class TestResultParity:
    def test_mmap_matches_npz_bytes(self, trace_paths):
        mmap_payloads = [execute_cell(t) for t in make_tasks(trace_paths)]
        npz_payloads = [
            execute_cell(t) for t in make_tasks(trace_paths, with_mmap=False)
        ]
        assert json.dumps(mmap_payloads, sort_keys=True) == json.dumps(
            npz_payloads, sort_keys=True
        )

    def test_jobs2_identical_to_serial(self, trace_paths):
        tasks = make_tasks(trace_paths)
        serial = run_cells(tasks, jobs=1)
        parallel = run_cells(tasks, jobs=2)
        assert parallel == serial


class TestKillRecovery:
    @pytest.fixture
    def chaos_dir(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "chaos")
        monkeypatch.setenv(chaos.CHAOS_ENV, directory)
        monkeypatch.setenv(chaos.HANG_ENV, "60")
        return directory

    def test_sigkill_restart_rebuilds_nothing(self, trace_paths, chaos_dir):
        # A killed worker is respawned and its cell retried; the retry
        # mmaps the same parent-built segment.  Results stay identical
        # and the parent never rebuilds a segment.
        tasks = make_tasks(trace_paths)
        expected = run_cells(tasks, jobs=1)
        builds_after_setup = runtime_counters()["transport.segment_builds"]
        assert builds_after_setup == 2

        chaos.inject_kill(chaos_dir, index=1)
        recovered = run_cells_supervised(
            tasks,
            jobs=2,
            config=SupervisorConfig(backoff_base_s=0.01, backoff_cap_s=0.05),
        )
        assert recovered == expected
        counters = runtime_counters()
        assert counters["supervisor.crashes"] == 1
        assert counters["transport.segment_builds"] == builds_after_setup

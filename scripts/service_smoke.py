"""CI smoke for the simulation service, against a *real* server process.

The in-process suite (tests/test_service.py) proves the semantics;
this script proves the deployment story: boot ``python -m
repro.service serve`` as a subprocess, drive it with two concurrent
clients, check byte-parity against a direct ``run_suite``, then
``kill -9`` the server mid-grid and show a restarted server resumes
from the content-addressed store — finished cells come back as memo
hits, the rest recompute, and the final payloads are byte-identical
to an uninterrupted run.

Run:  python scripts/service_smoke.py [n_references]
"""

import dataclasses
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import GridRequest, ServiceClient, config_spec
from repro.service.protocol import canonical_json
from repro.sim.config import nurapid_config, snuca_config
from repro.sim.driver import run_suite
from repro.sim.results import run_result_to_dict

PORT = 8911
URL = f"http://127.0.0.1:{PORT}"
BENCHMARKS = ["twolf", "galgel"]


def boot_server(store_dir: str, jobs: int) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--store", store_dir, "--port", str(PORT), "--jobs", str(jobs),
        ],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             os.environ.get("PYTHONPATH", "")])},
    )
    ServiceClient(URL).wait_healthy(timeout=30.0)
    return process


def request(n_references: int, client: str) -> GridRequest:
    return GridRequest(
        configs=[config_spec("nurapid"), config_spec("s-nuca")],
        benchmarks=BENCHMARKS,
        n_references=n_references,
        warmup_fraction=0.4,
        engine="vectorized",
        client=client,
    )


def submit_and_wait(name: str, n_references: int) -> dict:
    client = ServiceClient(URL)
    return client.wait(str(client.submit(request(n_references, name))["job"]))


def check_parity(status: dict, n_references: int) -> None:
    suites = ServiceClient.suites(status)
    for config in (
        dataclasses.replace(nurapid_config(), engine="vectorized"),
        dataclasses.replace(snuca_config(), engine="vectorized"),
    ):
        direct = run_suite(
            config, BENCHMARKS, n_references=n_references,
            seed=0, warmup_fraction=0.4,
        )
        for bench in BENCHMARKS:
            served = canonical_json(
                run_result_to_dict(suites[config.name].runs[bench])
            )
            expected = canonical_json(run_result_to_dict(direct.runs[bench]))
            assert served == expected, f"{config.name}/{bench} diverged"


def main() -> None:
    n_references = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    with tempfile.TemporaryDirectory() as store_dir:
        # Phase 1: two concurrent clients race an identical grid.
        server = boot_server(store_dir, jobs=2)
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                alice, bob = pool.map(
                    lambda name: submit_and_wait(name, n_references),
                    ("alice", "bob"),
                )
            assert all(
                canonical_json(a["payload"]) == canonical_json(b["payload"])
                for a, b in zip(alice["cells"], bob["cells"])
            ), "concurrent clients got different payloads"
            check_parity(alice, n_references)
            print(f"phase 1 ok: 2 clients x {len(alice['cells'])} cells, "
                  "byte-identical to run_suite")

            # Phase 2: submit a fresh (different-seed) grid and SIGKILL
            # the server once at least one cell has landed in the store.
            fresh = dataclasses.replace(
                request(n_references, "carol"), seed=7
            )
            client = ServiceClient(URL)
            job = str(client.submit(fresh)["job"])
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                done = [
                    c for c in client.job(job)["cells"]
                    if c["status"] in ("ok", "hit")
                ]
                if done:
                    break
                time.sleep(0.05)
            assert done, "no cell completed before the kill window"
            os.kill(server.pid, signal.SIGKILL)
            server.wait()
            print(f"phase 2: killed server with {len(done)}/4 cells stored")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

        # Phase 3: a restarted server resumes from the store.
        server = boot_server(store_dir, jobs=2)
        try:
            client = ServiceClient(URL)
            submission = client.submit(
                dataclasses.replace(request(n_references, "carol"), seed=7)
            )
            hits = submission["memo_hits"]
            assert hits >= len(done), (
                f"restart lost stored cells: {hits} hits < {len(done)}"
            )
            status = client.wait(str(submission["job"]))
            assert all(
                c["status"] in ("ok", "hit") for c in status["cells"]
            ), "resumed grid did not complete"
            # The resumed grid must match an uninterrupted direct run.
            suites = ServiceClient.suites(status)
            config = dataclasses.replace(nurapid_config(), engine="vectorized")
            direct = run_suite(
                config, BENCHMARKS, n_references=n_references,
                seed=7, warmup_fraction=0.4,
            )
            for bench in BENCHMARKS:
                assert canonical_json(
                    run_result_to_dict(suites[config.name].runs[bench])
                ) == canonical_json(
                    run_result_to_dict(direct.runs[bench])
                ), f"post-restart {bench} diverged"
            print(f"phase 3 ok: restart resumed {hits}/4 cells from store, "
                  "byte-identical to an uninterrupted run")
        finally:
            server.terminate()
            server.wait()
    print("service smoke passed")


if __name__ == "__main__":
    main()

"""Benchmark: regenerate Figure 6 - NuRAPID policy performance vs base.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure6 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure6(benchmark):
    run_and_print(benchmark, "figure6")

"""Benchmark: regenerate Figure 7 - 2/4/8-d-group access distributions.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure7 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure7(benchmark):
    run_and_print(benchmark, "figure7")

"""Benchmark: regenerate Ablation - ECC spreading (Sec 3.1 quantified).

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_ecc --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_ecc(benchmark):
    run_and_print(benchmark, "ablation_ecc")

"""Benchmark: regenerate Table 4 - per-MB latencies for NuRAPID and D-NUCA.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments table4 --scale full.
"""

from bench_common import run_and_print


def test_bench_table4(benchmark):
    run_and_print(benchmark, "table4")

"""Benchmark: regenerate Table 2 - example cache energies (nJ), mini-Cacti vs paper.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments table2 --scale full.
"""

from bench_common import run_and_print


def test_bench_table2(benchmark):
    run_and_print(benchmark, "table2")

"""Benchmark: regenerate Extension - promotion hysteresis.

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_hysteresis --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_hysteresis(benchmark):
    run_and_print(benchmark, "ablation_hysteresis")

"""Benchmark: regenerate Figure 4 - SA vs DA placement access distribution.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure4 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure4(benchmark):
    run_and_print(benchmark, "figure4")

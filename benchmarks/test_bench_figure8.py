"""Benchmark: regenerate Figure 8 - 2/4/8-d-group performance vs base.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure8 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure8(benchmark):
    run_and_print(benchmark, "figure8")

"""Benchmark: regenerate Ablation - restricted distance associativity.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments ablation_pointers --scale full.
"""

from bench_common import run_and_print


def test_bench_ablation_pointers(benchmark):
    run_and_print(benchmark, "ablation_pointers")

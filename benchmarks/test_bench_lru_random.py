"""Benchmark: regenerate Sec 5.3.1 - random vs LRU distance replacement.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments lru_random --scale full.
"""

from bench_common import run_and_print


def test_bench_lru_random(benchmark):
    run_and_print(benchmark, "lru_random")

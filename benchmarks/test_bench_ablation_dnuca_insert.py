"""Benchmark: regenerate Ablation - D-NUCA tail vs head insertion.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments ablation_dnuca_insert --scale full.
"""

from bench_common import run_and_print


def test_bench_ablation_dnuca_insert(benchmark):
    run_and_print(benchmark, "ablation_dnuca_insert")

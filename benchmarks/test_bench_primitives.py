"""Micro-benchmarks for the simulator's hot paths.

Not a paper artifact — these track the raw throughput of the cache
models and the trace generator, which bound how large an experiment
scale is affordable.
"""

import random

from repro.nuca.cache import DNUCACache
from repro.nuca.config import DNUCAConfig, SearchPolicy
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import NuRAPIDConfig
from repro.workloads import generate_trace, get_benchmark

KB = 1024


def _drive(cache, n, span):
    rng = random.Random(1)
    now = 0.0
    for _ in range(n):
        address = rng.randrange(0, span) & ~127
        result = cache.access(address, now=now)
        now += 8
        if not result.hit:
            cache.fill(address, now=now)
    return cache


def test_bench_nurapid_access(benchmark):
    def run():
        cache = NuRAPIDCache(
            NuRAPIDConfig(capacity_bytes=1024 * KB, block_bytes=128,
                          associativity=8, n_dgroups=4, name="bench")
        )
        return _drive(cache, 20_000, 2 * 1024 * KB)

    cache = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cache.stats.get("accesses") == 20_000


def test_bench_dnuca_access(benchmark):
    def run():
        cache = DNUCACache(
            DNUCAConfig(capacity_bytes=1024 * KB, bank_bytes=64 * KB,
                        policy=SearchPolicy.SS_ENERGY, name="bench-nuca")
        )
        return _drive(cache, 20_000, 2 * 1024 * KB)

    cache = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cache.stats.get("accesses") == 20_000


def test_bench_trace_generation(benchmark):
    def run():
        return generate_trace(get_benchmark("art"), 200_000, seed=5)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(trace) == 200_000

"""Benchmark: regenerate Figure 9 - D-NUCA vs NuRAPID performance.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure9 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure9(benchmark):
    run_and_print(benchmark, "figure9")

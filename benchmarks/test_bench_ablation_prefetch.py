"""Benchmark: regenerate Extension - stream prefetching.

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_prefetch --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_prefetch(benchmark):
    run_and_print(benchmark, "ablation_prefetch")

"""Benchmark: regenerate Table 3 - application characterization on the base system.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments table3 --scale full.
"""

from bench_common import run_and_print


def test_bench_table3(benchmark):
    run_and_print(benchmark, "table3")

"""Benchmark: regenerate Figure 10 - L2 dynamic energy and d-group accesses.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure10 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure10(benchmark):
    run_and_print(benchmark, "figure10")

"""Shared setup for the per-table/figure benchmark harness.

Each ``test_bench_*.py`` regenerates one paper artifact through the
same code path as ``python -m repro.experiments`` and prints its rows.
To keep the harness runnable in minutes, behavioural experiments run at
SMOKE scale over a four-application subset (two big-working-set apps,
one hot-set app, one low-load app); the ``--scale full`` CLI run is the
paper-shaped version.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from typing import List

from repro.experiments import SMOKE, run_experiment
from repro.experiments.common import clear_caches

BENCH_SUBSET: List[str] = ["art", "equake", "twolf", "wupwise"]

_PATCHED = False


def shrink_suite() -> None:
    """Point every experiment module at the benchmark subset (idempotent)."""
    global _PATCHED
    if _PATCHED:
        return
    import repro.experiments.ablations as ab
    import repro.experiments.energy_delay as ed
    import repro.experiments.figure4 as f4
    import repro.experiments.figure5 as f5
    import repro.experiments.figure6 as f6
    import repro.experiments.figure7 as f7
    import repro.experiments.figure8 as f8
    import repro.experiments.figure9 as f9
    import repro.experiments.figure10 as f10
    import repro.experiments.lru_random as lr
    import repro.experiments.table3 as t3

    def names() -> List[str]:
        return list(BENCH_SUBSET)

    def high() -> List[str]:
        return [b for b in BENCH_SUBSET if b != "wupwise"]

    def low() -> List[str]:
        return ["wupwise"]

    for module in (f4, f5, f7, f9, f10, lr, ed, t3):
        module.suite_names = names
    for module in (f6, f8):
        module.suite_names = names
        module.high_load_names = high
        module.low_load_names = low
    ab.SUBSET = list(BENCH_SUBSET)
    _PATCHED = True


def regenerate(name: str):
    """Run one experiment at bench scale and return its report."""
    shrink_suite()
    return run_experiment(name, SMOKE)


def run_and_print(benchmark, name: str) -> None:
    """pytest-benchmark entry: time one regeneration, print the rows."""
    report = benchmark.pedantic(regenerate, args=(name,), rounds=1, iterations=1)
    print()
    print(report.to_text())


def reset() -> None:
    clear_caches()

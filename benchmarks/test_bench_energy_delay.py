"""Benchmark: regenerate Sec 5.4.2 - processor energy-delay.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments energy_delay --scale full.
"""

from bench_common import run_and_print


def test_bench_energy_delay(benchmark):
    run_and_print(benchmark, "energy_delay")

"""Benchmark: regenerate Ablation - spare-subarray yield (Sec 3.2 quantified).

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_spares --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_spares(benchmark):
    run_and_print(benchmark, "ablation_spares")

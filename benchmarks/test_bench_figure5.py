"""Benchmark: regenerate Figure 5 - promotion-policy access distributions.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments figure5 --scale full.
"""

from bench_common import run_and_print


def test_bench_figure5(benchmark):
    run_and_print(benchmark, "figure5")

"""Benchmark: regenerate Extension - far d-group leakage gating.

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_leakage --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_leakage(benchmark):
    run_and_print(benchmark, "ablation_leakage")

"""Benchmark: regenerate Ablation - sequential vs parallel tag-data access.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments ablation_seqtag --scale full.
"""

from bench_common import run_and_print


def test_bench_ablation_seqtag(benchmark):
    run_and_print(benchmark, "ablation_seqtag")

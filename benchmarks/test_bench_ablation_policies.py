"""Benchmark: regenerate Ablation - promotion x distance replacement.

See bench_common for scale; the full-scale equivalent is
python -m repro.experiments ablation_policies --scale full.
"""

from bench_common import run_and_print


def test_bench_ablation_policies(benchmark):
    run_and_print(benchmark, "ablation_policies")

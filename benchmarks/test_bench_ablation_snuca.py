"""Benchmark: regenerate Ablation - static vs managed non-uniformity.

See bench_common for scale; the full-scale equivalent is
``python -m repro.experiments ablation_snuca --scale full``.
"""

from bench_common import run_and_print


def test_bench_ablation_snuca(benchmark):
    run_and_print(benchmark, "ablation_snuca")

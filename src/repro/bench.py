"""Perf-baseline harness: wall-clock trajectory for the simulator.

Times a fixed, representative replay workload — one NuRAPID and one
S-NUCA configuration over two benchmarks — first serially, then
through the :mod:`repro.sim.parallel` process pool, verifies the two
produce bit-identical results, and appends the timings to a JSON
ledger (``BENCH_sim.json`` at the repo root by default).  Each PR that
touches the hot path can re-run this and the ledger becomes the
wall-clock trajectory reviewers diff against::

    python -m repro.bench                       # defaults, appends entry
    python -m repro.bench --refs 60000 --jobs 2 --label ci
    python -m repro.bench --service --min-service-throughput 0.5

Each entry records the ``REPRO_ENGINE`` / ``REPRO_JOBS`` /
``REPRO_TELEMETRY`` environment in effect, so ledger comparisons
across machines and sessions stay honest.

The harness is informational: it never fails on slow hardware, only on
a serial/parallel result mismatch (which would mean the engine broke
determinism — the one property this file exists to guard), on an
``--engine-parity`` divergence between the exact replay engines, or on
an ``--approx-accuracy`` drift of the analytical ``engine="approx"``
tier past its documented tolerances.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

from dataclasses import replace as config_replace

from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.resilience.supervisor import SupervisorConfig, run_cells_supervised
from repro.sim.config import (
    EXACT_ENGINES,
    SystemConfig,
    base_config,
    dnuca_config,
    nurapid_config,
    resolve_engine,
    sa_nuca_config,
    snuca_config,
)
from repro.sim.driver import run_benchmark
from repro.sim.parallel import CellTask, run_cells
from repro.sim.results import RunResult, run_result_to_dict
from repro.sim.vectorized import MIN_RUN, WINDOW
from repro.telemetry import TelemetryConfig
from repro.telemetry.report import merge_payloads, render_report
from repro.telemetry.runtime import runtime_registry
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceCache, default_trace_cache_dir
from repro.workloads.transport import ensure_decoded

DEFAULT_REFS = 120_000
DEFAULT_BENCHMARKS = ["galgel", "twolf"]
DEFAULT_WARMUP = 0.4
DEFAULT_REPETITIONS = 3
LEDGER_FORMAT = 1

#: Workload for the ``--cmp`` gate: a 2-core shared-LLC run (timed)
#: plus the cores=1 bit-identity contract check.
CMP_BENCHMARK = "twolf"

#: Workload for the ``--approx-accuracy`` gate: the full shipped-config
#: parity matrix from ``tests/test_fastpath.py``, three trace seeds.
APPROX_BENCHMARK = "twolf"
APPROX_SEEDS = (0, 1, 2)

#: Documented tolerances for ``engine="approx"`` on the accuracy matrix
#: (twolf; the analytical tier is calibrated against this workload —
#: eviction-heavy benchmarks like mcf drift further).  Current worst
#: observed errors sit near half of each bound.
APPROX_TOLERANCES = {
    "ipc_rel": 0.025,
    "miss_ratio_abs": 0.008,
    "fastest_dgroup_abs": 0.02,
    "energy_rel": 0.015,
}


def standard_configs() -> List[SystemConfig]:
    """The fixed config pair the baseline times (NuRAPID + S-NUCA)."""
    return [nurapid_config(), snuca_config()]


def accuracy_matrix_configs() -> List[SystemConfig]:
    """The shipped-config parity matrix (mirrors tests/test_fastpath.py)."""
    return [
        base_config(),
        nurapid_config(),
        nurapid_config(
            n_dgroups=2,
            promotion=PromotionPolicy.DEMOTION_ONLY,
            distance_replacement=DistanceReplacementKind.LRU,
        ),
        nurapid_config(promotion_hysteresis=2),
        dnuca_config(),
        sa_nuca_config(),
        snuca_config(),
    ]


def _time_serial(
    configs: List[SystemConfig],
    benchmarks: List[str],
    traces: Dict[str, Trace],
    refs: int,
    seed: int,
    warmup: float,
    telemetry: Optional[TelemetryConfig] = None,
    repetitions: int = 1,
) -> Dict[str, object]:
    """Serial timing pass: each cell runs ``repetitions`` times, min wins.

    The replay is deterministic, so repetitions only differ by scheduler
    and allocator noise — the minimum is the honest per-cell figure.
    ``total_s`` is the sum of the per-cell minima.
    """
    per_cell = {}
    results = {}
    total = 0.0
    for config in configs:
        for benchmark in benchmarks:
            best: Optional[float] = None
            for rep in range(repetitions):
                cell_start = time.perf_counter()
                result = run_benchmark(
                    config,
                    benchmark,
                    n_references=refs,
                    trace=traces[benchmark],
                    warmup_fraction=warmup,
                    seed=seed,
                    telemetry=telemetry,
                )
                elapsed = time.perf_counter() - cell_start
                if best is None or elapsed < best:
                    best = elapsed
                if rep == 0:
                    results[(config.name, benchmark)] = run_result_to_dict(result)
            per_cell[f"{config.name}/{benchmark}"] = round(best or 0.0, 3)
            total += best or 0.0
    return {
        "total_s": round(total, 3),
        "per_cell_s": per_cell,
        "results": results,
    }


def _pool_tasks(
    configs: List[SystemConfig],
    benchmarks: List[str],
    trace_paths: Dict[str, str],
    refs: int,
    seed: int,
    warmup: float,
):
    cells = [(c, b) for c in configs for b in benchmarks]
    mmap_paths = {
        benchmark: ensure_decoded(path)
        for benchmark, path in trace_paths.items()
    }
    tasks = [
        CellTask(
            index=i,
            config=config,
            benchmark=benchmark,
            n_references=refs,
            seed=seed,
            warmup_fraction=warmup,
            trace_path=trace_paths[benchmark],
            mmap_path=mmap_paths[benchmark],
            isolate_errors=False,
        )
        for i, (config, benchmark) in enumerate(cells)
    ]
    return cells, tasks


def _time_parallel(
    configs: List[SystemConfig],
    benchmarks: List[str],
    trace_paths: Dict[str, str],
    refs: int,
    seed: int,
    warmup: float,
    jobs: int,
) -> Dict[str, object]:
    cells, tasks = _pool_tasks(
        configs, benchmarks, trace_paths, refs, seed, warmup
    )
    started = time.perf_counter()
    payloads = run_cells(tasks, jobs)
    total = time.perf_counter() - started
    results = {}
    for payload in payloads:
        config, benchmark = cells[payload["index"]]
        results[(config.name, benchmark)] = payload["result"]
    return {"total_s": round(total, 3), "results": results}


def _time_supervised(
    configs: List[SystemConfig],
    benchmarks: List[str],
    trace_paths: Dict[str, str],
    refs: int,
    seed: int,
    warmup: float,
    jobs: int,
) -> Dict[str, object]:
    """Same workload as :func:`_time_parallel`, through the supervisor.

    No faults are injected, so this measures the pure supervision tax:
    the worker pipes, deadline bookkeeping, and result plumbing that
    :func:`repro.resilience.supervisor.run_cells_supervised` adds on
    top of the plain pool.
    """
    cells, tasks = _pool_tasks(
        configs, benchmarks, trace_paths, refs, seed, warmup
    )
    started = time.perf_counter()
    payloads = run_cells_supervised(tasks, jobs, config=SupervisorConfig())
    total = time.perf_counter() - started
    results = {}
    for payload in payloads:
        config, benchmark = cells[payload["index"]]
        results[(config.name, benchmark)] = payload["result"]
    return {"total_s": round(total, 3), "results": results}


def _time_service(
    benchmarks: List[str],
    refs: int,
    seed: int,
    warmup: float,
    jobs: int,
    clients: int,
    serial_results: Dict[object, dict],
) -> Dict[str, object]:
    """Throughput of the job server under concurrent clients.

    Boots an in-process server (fresh store), has ``clients`` threads
    submit the standard workload simultaneously under distinct
    fair-share identities, and measures wall-clock from first submit to
    last completion.  Identical grids coalesce onto one computation, so
    ``cells`` counts unique simulated cells while ``delivered`` counts
    per-client deliveries; ``cells_per_s`` is the delivery rate — the
    number a reviewer cares about when N users share one server.  Every
    delivered payload is compared byte-for-byte against the serial
    pass's results.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service.client import ServiceClient
    from repro.service.protocol import GridRequest, canonical_json, config_spec
    from repro.service.server import ServerConfig, serve_in_thread

    specs = [config_spec("nurapid"), config_spec("s-nuca")]
    engine = resolve_engine(None)
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")

    def submit_and_wait(name: str):
        local = ServiceClient(bg.url)
        submission = local.submit(
            GridRequest(
                configs=specs,
                benchmarks=benchmarks,
                client=name,
                n_references=refs,
                seed=seed,
                warmup_fraction=warmup,
                engine=engine,
            )
        )
        return local.wait(str(submission["job"]))

    try:
        with serve_in_thread(ServerConfig(store_dir=store_dir, jobs=jobs)) as bg:
            probe = ServiceClient(bg.url)
            probe.wait_healthy()
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                statuses = list(
                    pool.map(
                        submit_and_wait,
                        [f"bench-{i}" for i in range(clients)],
                    )
                )
            elapsed = time.perf_counter() - started
            counters = probe.stats()["counters"]
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    identical = True
    for status in statuses:
        for cell in status["cells"]:
            expected = serial_results.get((cell["config"], cell["benchmark"]))
            delivered = (cell.get("payload") or {}).get("result")
            if expected is None or delivered is None or canonical_json(
                delivered
            ) != canonical_json(expected):
                identical = False

    cells = len(specs) * len(benchmarks)
    delivered_total = cells * clients
    return {
        "clients": clients,
        "jobs": jobs,
        "cells": cells,
        "delivered": delivered_total,
        "elapsed_s": round(elapsed, 3),
        "cells_per_s": round(delivered_total / elapsed, 3) if elapsed else 0.0,
        "memo_hits": int(counters.get("service.cells_memo_hits", 0)),
        "coalesced": int(counters.get("service.cells_coalesced", 0)),
        "identical": identical,
    }


def _strip_telemetry(results: Dict[object, dict]) -> Dict[object, dict]:
    """Result payloads without their telemetry section (for comparison)."""
    return {
        key: {k: v for k, v in payload.items() if k != "telemetry"}
        for key, payload in results.items()
    }


def engine_parity(
    configs: List[SystemConfig],
    benchmarks: List[str],
    traces: Dict[str, Trace],
    refs: int,
    seed: int,
    warmup: float,
) -> List[str]:
    """Replay every cell under all exact engines; returns mismatch descriptions.

    Each cell runs telemetry-enabled under every engine in
    ``EXACT_ENGINES`` (legacy, fast, vectorized); the full result
    payload (summary, counters, energy) must compare equal to legacy's
    and the rendered telemetry reports must match byte for byte.  Empty
    return = the engines are bit-identical on this workload.  The
    ``approx`` engine is deliberately excluded: it is held to the
    tolerance gate (:func:`approx_accuracy`), not bit-identity.
    """
    mismatches: List[str] = []
    for config in configs:
        for benchmark in benchmarks:
            cell = f"{config.name}/{benchmark}"
            payloads: Dict[str, dict] = {}
            reports: Dict[str, str] = {}
            for engine in EXACT_ENGINES:
                result = run_benchmark(
                    config_replace(config, engine=engine),
                    benchmark,
                    n_references=refs,
                    trace=traces[benchmark],
                    warmup_fraction=warmup,
                    seed=seed,
                    telemetry=TelemetryConfig(),
                )
                payload = run_result_to_dict(result)
                telem = payload.pop("telemetry", None)
                payloads[engine] = payload
                reports[engine] = render_report(merge_payloads([(cell, telem)]))
            for engine in EXACT_ENGINES[1:]:
                if payloads[engine] != payloads["legacy"]:
                    mismatches.append(
                        f"{cell}: {engine} results differ from legacy"
                    )
                if reports[engine] != reports["legacy"]:
                    mismatches.append(
                        f"{cell}: {engine} telemetry report differs from legacy"
                    )
    return mismatches


def _accuracy_metrics(result: RunResult) -> Dict[str, float]:
    """The gated observables of one cell (shared by both engines)."""
    miss_ratio = (
        result.l2_misses / result.l2_accesses if result.l2_accesses else 0.0
    )
    fractions = result.dgroup_fractions or {}
    fastest = min(fractions) if fractions else None
    return {
        "ipc": result.ipc,
        "miss_ratio": miss_ratio,
        "fastest_dgroup": fractions.get(fastest, 0.0) if fastest is not None else 0.0,
        "energy_nj": result.total_energy_nj,
    }


def approx_accuracy(
    cache: TraceCache,
    refs: int,
    warmup: float,
    repetitions: int = 1,
) -> Dict[str, object]:
    """Cross-validate ``engine="approx"`` against the exact tier.

    Runs the shipped-config parity matrix (7 configs x 3 seeds, twolf)
    under the default exact engine and under ``approx``, compares the
    gated metrics (IPC, L2 miss ratio, fastest-d-group hit fraction,
    total energy) against :data:`APPROX_TOLERANCES`, and times both
    sides (min over ``repetitions`` for approx, whose first call also
    pays geometry setup).  Returns worst-case errors, per-tolerance
    failures, and the per-cell speedup distribution.
    """
    configs = accuracy_matrix_configs()
    worst = {key: 0.0 for key in APPROX_TOLERANCES}
    failures: List[str] = []
    exact_total = 0.0
    approx_total = 0.0
    speedups: List[float] = []
    for seed in APPROX_SEEDS:
        trace, _ = cache.fetch(APPROX_BENCHMARK, refs, seed=seed)
        for config in configs:
            cell = f"{config.name}/{APPROX_BENCHMARK}/s{seed}"
            started = time.perf_counter()
            exact = run_benchmark(
                config,
                APPROX_BENCHMARK,
                n_references=refs,
                trace=trace,
                warmup_fraction=warmup,
                seed=seed,
            )
            exact_s = time.perf_counter() - started
            approx_s: Optional[float] = None
            for _ in range(repetitions):
                started = time.perf_counter()
                approximate = run_benchmark(
                    config_replace(config, engine="approx"),
                    APPROX_BENCHMARK,
                    n_references=refs,
                    trace=trace,
                    warmup_fraction=warmup,
                    seed=seed,
                )
                elapsed = time.perf_counter() - started
                if approx_s is None or elapsed < approx_s:
                    approx_s = elapsed
            exact_total += exact_s
            approx_total += approx_s or 0.0
            speedups.append(exact_s / approx_s if approx_s else 0.0)
            em = _accuracy_metrics(exact)
            am = _accuracy_metrics(approximate)
            errors = {
                "ipc_rel": abs(am["ipc"] - em["ipc"]) / em["ipc"]
                if em["ipc"]
                else 0.0,
                "miss_ratio_abs": abs(am["miss_ratio"] - em["miss_ratio"]),
                "fastest_dgroup_abs": abs(
                    am["fastest_dgroup"] - em["fastest_dgroup"]
                ),
                "energy_rel": abs(am["energy_nj"] - em["energy_nj"])
                / em["energy_nj"]
                if em["energy_nj"]
                else 0.0,
            }
            for key, error in errors.items():
                worst[key] = max(worst[key], error)
                if error > APPROX_TOLERANCES[key]:
                    failures.append(
                        f"{cell}: {key} error {error:.4f} exceeds "
                        f"tolerance {APPROX_TOLERANCES[key]:.4f}"
                    )
    cells = len(configs) * len(APPROX_SEEDS)
    return {
        "benchmark": APPROX_BENCHMARK,
        "seeds": list(APPROX_SEEDS),
        "cells": cells,
        "tolerances": dict(APPROX_TOLERANCES),
        "worst_errors": {key: round(value, 5) for key, value in worst.items()},
        "exact_s": round(exact_total, 3),
        "approx_s": round(approx_total, 3),
        "speedup": round(exact_total / approx_total, 1) if approx_total else 0.0,
        "per_cell_speedup_min": round(min(speedups), 1) if speedups else 0.0,
        "within_tolerance": not failures,
        "failures": failures,
    }


def _time_cmp(
    refs: int, seed: int, warmup: float, repetitions: int = 1
) -> Dict[str, object]:
    """The ``--cmp`` pass: timed 2-core run + cores=1 parity check.

    Times a 2-core contended shared-NuRAPID run (the new CMP engine's
    representative workload) and verifies the bit-identity contract: a
    config carrying ``CmpConfig(cores=1)`` must produce a byte-identical
    result to the same config without any ``cmp`` block, because the
    driver routes one-core runs through the unchanged single-core path.
    """
    from repro.cmp.config import CmpConfig
    from repro.cmp.scenarios import cmp_nurapid_config, per_core_ipcs

    config = cmp_nurapid_config(cores=2)
    best: Optional[float] = None
    result = None
    for rep in range(repetitions):
        start = time.perf_counter()
        run = run_benchmark(
            config,
            CMP_BENCHMARK,
            n_references=refs,
            seed=seed,
            warmup_fraction=warmup,
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        if rep == 0:
            result = run
    assert result is not None

    plain = nurapid_config()
    tagged = config_replace(plain, cmp=CmpConfig(cores=1))
    baseline = run_benchmark(
        plain, CMP_BENCHMARK, n_references=refs, seed=seed, warmup_fraction=warmup
    )
    routed = run_benchmark(
        tagged, CMP_BENCHMARK, n_references=refs, seed=seed, warmup_fraction=warmup
    )
    parity = json.dumps(
        run_result_to_dict(baseline), sort_keys=True
    ) == json.dumps(run_result_to_dict(routed), sort_keys=True)

    ipcs = per_core_ipcs(result)
    return {
        "benchmark": CMP_BENCHMARK,
        "cores": 2,
        "cmp_s": round(best or 0.0, 3),
        "throughput_ipc": round(sum(ipcs), 4),
        "single_core_parity": parity,
    }


def comparable_entry(
    ledger: Dict[str, object], entry: Dict[str, object], label: Optional[str] = None
):
    """The most recent ledger entry timing the same workload, if any.

    ``label`` restricts candidates to entries tagged with it (the
    ``--against pr3-telemetry`` form).
    """
    keys = ("refs", "warmup_fraction", "seed", "benchmarks", "configs")
    for candidate in reversed(ledger.get("entries", [])):  # type: ignore[arg-type]
        if label is not None and candidate.get("label") != label:
            continue
        if all(candidate.get(k) == entry[k] for k in keys):
            return candidate
    return None


def load_ledger(path: str) -> Dict[str, object]:
    if not os.path.exists(path):
        return {"format": LEDGER_FORMAT, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        ledger = json.load(handle)
    if not isinstance(ledger, dict) or "entries" not in ledger:
        raise SystemExit(f"{path} is not a BENCH_sim ledger; refusing to overwrite")
    return ledger


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the standard replay workload and append to the ledger.",
    )
    parser.add_argument("--refs", type=int, default=DEFAULT_REFS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=float, default=DEFAULT_WARMUP)
    parser.add_argument(
        "--benchmarks", nargs=2, default=DEFAULT_BENCHMARKS, metavar="BENCH"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workers for the parallel pass (default: up to 4 cores)",
    )
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument(
        "--label", default=None, help="free-form tag recorded with the entry"
    )
    parser.add_argument(
        "--telemetry-overhead",
        action="store_true",
        help="also time a serial pass with telemetry enabled, verify the "
        "simulated results are unchanged, and record the overhead ratio",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=DEFAULT_REPETITIONS,
        help="serial runs per cell; the minimum is recorded "
        f"(default {DEFAULT_REPETITIONS})",
    )
    parser.add_argument(
        "--engine-parity",
        action="store_true",
        help="run every cell under all exact replay engines "
        f"({', '.join(EXACT_ENGINES)}) and fail unless results and "
        "telemetry reports are identical",
    )
    parser.add_argument(
        "--approx-accuracy",
        action="store_true",
        help="cross-validate engine=approx against the exact tier over "
        "the shipped-config parity matrix (7 configs x 3 seeds, "
        f"{APPROX_BENCHMARK}) and fail if any gated metric drifts past "
        "its documented tolerance",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="also time the workload through the supervised execution "
        "layer (repro.resilience), verify results are bit-identical to "
        "the serial pass, and record the overhead vs the plain pool",
    )
    parser.add_argument(
        "--max-supervised-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="with --supervised, fail if the supervised pass is more than "
        "this fraction slower than the plain parallel pass (e.g. 0.02)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="also time the workload through the repro.service job server "
        "under concurrent clients, verify delivered payloads are "
        "byte-identical to the serial pass, and record cells/sec",
    )
    parser.add_argument(
        "--service-clients",
        type=int,
        default=2,
        metavar="N",
        help="concurrent clients for --service (default 2)",
    )
    parser.add_argument(
        "--min-service-throughput",
        type=float,
        default=None,
        metavar="CELLS_PER_S",
        help="with --service, fail if delivery throughput falls below "
        "this many cells/sec",
    )
    parser.add_argument(
        "--cmp",
        action="store_true",
        help="also time a 2-core contended shared-NuRAPID run through the "
        "CMP engine and fail unless a CmpConfig(cores=1) run is "
        "byte-identical to the plain single-core path",
    )
    parser.add_argument(
        "--against",
        default=None,
        metavar="LEDGER_OR_LABEL",
        help="compare serial time to the most recent comparable entry of "
        "this ledger (a path) or of the --out ledger's entries with this "
        "label, and fail on regression beyond --max-regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.05,
        help="allowed fractional serial-time regression for --against "
        "(default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)
    if args.repetitions < 1:
        parser.error("--repetitions must be >= 1")
    if args.service_clients < 1:
        parser.error("--service-clients must be >= 1")
    cpus = os.cpu_count() or 1
    jobs = args.jobs or min(4, cpus)
    oversubscribed = jobs > cpus
    # The supervised executor keeps the supervising parent active
    # alongside its worker processes (deadline polling, pipe plumbing),
    # so it saturates one extra CPU over the plain pool.
    supervised_oversubscribed = bool(args.supervised) and jobs + 1 > cpus
    if oversubscribed:
        print(
            f"warning: {jobs} jobs oversubscribe {cpus} CPUs; the parallel "
            "timing will understate the engine's real speedup",
            file=sys.stderr,
        )
    elif supervised_oversubscribed:
        print(
            f"warning: {jobs} workers plus the supervisor oversubscribe "
            f"{cpus} CPUs; the supervised timing will overstate the "
            "supervision tax",
            file=sys.stderr,
        )

    configs = standard_configs()
    benchmarks = list(args.benchmarks)

    cache_dir = default_trace_cache_dir()
    scratch: Optional[str] = None
    if cache_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-bench-traces-")
        cache_dir = scratch
    try:
        cache = TraceCache(cache_dir)
        trace_start = time.perf_counter()
        traces, trace_paths = {}, {}
        for benchmark in benchmarks:
            traces[benchmark], trace_paths[benchmark] = cache.fetch(
                benchmark, args.refs, seed=args.seed
            )
        trace_s = round(time.perf_counter() - trace_start, 3)

        parity_failures: List[str] = []
        if args.engine_parity:
            parity_failures = engine_parity(
                configs, benchmarks, traces, args.refs, args.seed, args.warmup
            )

        accuracy: Optional[Dict[str, object]] = None
        if args.approx_accuracy:
            accuracy = approx_accuracy(
                cache, args.refs, args.warmup, repetitions=args.repetitions
            )

        registry = runtime_registry()
        kernel_before = dict(registry.counters("vectorized."))
        serial = _time_serial(
            configs,
            benchmarks,
            traces,
            args.refs,
            args.seed,
            args.warmup,
            repetitions=args.repetitions,
        )
        kernel_after = registry.counters("vectorized.")
        kernel_delta = {
            name: value - kernel_before.get(name, 0)
            for name, value in kernel_after.items()
        }
        parallel = _time_parallel(
            configs, benchmarks, trace_paths, args.refs, args.seed, args.warmup, jobs
        )
        supervised: Optional[Dict[str, object]] = None
        if args.supervised:
            supervised = _time_supervised(
                configs,
                benchmarks,
                trace_paths,
                args.refs,
                args.seed,
                args.warmup,
                jobs,
            )
        service: Optional[Dict[str, object]] = None
        if args.service:
            service = _time_service(
                benchmarks,
                args.refs,
                args.seed,
                args.warmup,
                jobs,
                args.service_clients,
                serial["results"],  # type: ignore[arg-type]
            )
        cmp_pass: Optional[Dict[str, object]] = None
        if args.cmp:
            cmp_pass = _time_cmp(
                args.refs, args.seed, args.warmup, repetitions=args.repetitions
            )
        instrumented: Optional[Dict[str, object]] = None
        if args.telemetry_overhead:
            instrumented = _time_serial(
                configs,
                benchmarks,
                traces,
                args.refs,
                args.seed,
                args.warmup,
                telemetry=TelemetryConfig(),
                repetitions=args.repetitions,
            )
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    identical = serial["results"] == parallel["results"]
    speedup = (
        serial["total_s"] / parallel["total_s"] if parallel["total_s"] else 0.0
    )
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "label": args.label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "refs": args.refs,
        "warmup_fraction": args.warmup,
        "seed": args.seed,
        "benchmarks": benchmarks,
        "configs": [c.name for c in configs],
        "engine": resolve_engine(None),
        # The REPRO_* environment in effect: without these a ledger
        # entry timed under REPRO_ENGINE=legacy would silently compare
        # against one timed under the vectorized default.
        "env": {
            **{
                name: os.environ.get(name)
                for name in ("REPRO_ENGINE", "REPRO_JOBS", "REPRO_TELEMETRY")
            },
            # Machine facts that change what a timing means: entries
            # from a different interpreter or core count are not
            # directly comparable.
            "cpu_count": os.cpu_count(),
            "python_version": platform.python_version(),
        },
        "repetitions": args.repetitions,
        "jobs": jobs,
        "oversubscribed": oversubscribed,
        "trace_s": trace_s,
        "serial_s": serial["total_s"],
        "serial_per_cell_s": serial["per_cell_s"],
        "parallel_s": parallel["total_s"],
        "speedup": round(speedup, 3),
        "identical": identical,
    }
    kernel_refs = kernel_delta.get("vectorized.refs", 0)
    if kernel_refs:
        # Chunk-kernel strategy stats for the serial pass (all
        # repetitions), from the process-global runtime registry: how
        # many references each tier resolved (L1 run-vector, L2
        # fast-d-group, scalar walk) and where the kernel wall went.
        wall = kernel_delta.get("vectorized.wall_s", 0.0)
        probe = kernel_delta.get("vectorized.probe_wall_s", 0.0)
        apply_ = kernel_delta.get("vectorized.l1_apply_wall_s", 0.0)
        entry["kernel"] = {
            "window": WINDOW,
            "min_run": MIN_RUN,
            "refs": int(kernel_refs),
            "refs_vector": int(kernel_delta.get("vectorized.refs_vector", 0)),
            "l2_refs_vector": int(
                kernel_delta.get("vectorized.l2_refs_vector", 0)
            ),
            "l2_runs_applied": int(
                kernel_delta.get("vectorized.l2_runs_applied", 0)
            ),
            "refs_scalar": int(kernel_delta.get("vectorized.refs_scalar", 0)),
            "vector_fraction": round(
                (
                    kernel_delta.get("vectorized.refs_vector", 0)
                    + kernel_delta.get("vectorized.l2_refs_vector", 0)
                )
                / kernel_refs,
                4,
            ),
            "fallbacks": int(kernel_delta.get("vectorized.fallbacks", 0)),
            "wall_s": round(wall, 3),
            "probe_wall_share": round(probe / wall, 4) if wall else 0.0,
            "apply_wall_share": round(apply_ / wall, 4) if wall else 0.0,
            "scalar_wall_share": round(
                max(0.0, wall - probe - apply_) / wall, 4
            )
            if wall
            else 0.0,
        }
    supervised_identical = True
    if supervised is not None:
        supervised_identical = serial["results"] == supervised["results"]
        supervised_overhead = (
            supervised["total_s"] / parallel["total_s"] - 1.0
            if parallel["total_s"]
            else 0.0
        )
        entry["supervised_s"] = supervised["total_s"]
        entry["supervised_overhead"] = round(supervised_overhead, 3)
        entry["supervised_identical"] = supervised_identical

    service_identical = True
    if service is not None:
        service_identical = bool(service["identical"])
        entry["service"] = service

    cmp_parity = True
    if cmp_pass is not None:
        cmp_parity = bool(cmp_pass["single_core_parity"])
        entry["cmp"] = cmp_pass

    telemetry_identical = True
    if instrumented is not None:
        telemetry_identical = serial["results"] == _strip_telemetry(
            instrumented["results"]  # type: ignore[arg-type]
        )
        overhead = (
            instrumented["total_s"] / serial["total_s"] - 1.0
            if serial["total_s"]
            else 0.0
        )
        entry["telemetry_serial_s"] = instrumented["total_s"]
        entry["telemetry_overhead"] = round(overhead, 3)
        entry["telemetry_identical"] = telemetry_identical

    if args.engine_parity:
        entry["engine_parity"] = not parity_failures
    if accuracy is not None:
        entry["approx"] = {
            key: value for key, value in accuracy.items() if key != "failures"
        }
    if args.supervised:
        entry["supervised_oversubscribed"] = supervised_oversubscribed

    regression_failure: Optional[str] = None
    if args.against is not None:
        if os.path.exists(args.against):
            base = comparable_entry(load_ledger(args.against), entry)
        else:
            # Not a file: a label within the --out ledger.
            base = comparable_entry(
                load_ledger(args.out), entry, label=args.against
            )
        if base is None:
            regression_failure = (
                f"no comparable entry in {args.against} to regress against"
            )
        else:
            baseline_s = float(base["serial_s"])
            allowed = baseline_s * (1.0 + args.max_regression)
            entry["against_serial_s"] = baseline_s
            if entry["serial_s"] > allowed:
                regression_failure = (
                    f"serial {entry['serial_s']}s exceeds baseline "
                    f"{baseline_s}s by more than "
                    f"{args.max_regression:.0%} (allowed {allowed:.3f}s)"
                )
            baseline_service = base.get("service")
            if (
                regression_failure is None
                and service is not None
                and isinstance(baseline_service, dict)
                and baseline_service.get("clients") == service["clients"]
            ):
                baseline_rate = float(baseline_service["cells_per_s"])
                floor = baseline_rate * (1.0 - args.max_regression)
                entry["against_service_cells_per_s"] = baseline_rate
                if float(service["cells_per_s"]) < floor:
                    regression_failure = (
                        f"service throughput {service['cells_per_s']} "
                        f"cells/s fell below baseline {baseline_rate} by "
                        f"more than {args.max_regression:.0%} "
                        f"(floor {floor:.3f})"
                    )

    ledger = load_ledger(args.out)
    ledger["format"] = LEDGER_FORMAT
    ledger["entries"].append(entry)
    tmp = f"{args.out}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, args.out)

    print(
        f"traces {trace_s}s | serial(min of {args.repetitions}) "
        f"{serial['total_s']}s | "
        f"parallel(jobs={jobs}) {parallel['total_s']}s | "
        f"speedup {speedup:.2f}x | identical={identical}"
    )
    if args.engine_parity:
        cells = len(configs) * len(benchmarks)
        if parity_failures:
            for failure in parity_failures:
                print(f"ERROR: engine parity: {failure}")
        else:
            print(
                f"engine parity: ok ({cells} cells x "
                f"{len(EXACT_ENGINES)} engines)"
            )
    if accuracy is not None:
        errors = accuracy["worst_errors"]
        print(
            f"approx accuracy ({accuracy['cells']} cells, "
            f"{accuracy['benchmark']}): worst ipc {errors['ipc_rel']:.2%} | "
            f"miss ratio {errors['miss_ratio_abs']:.4f} | fastest d-group "
            f"{errors['fastest_dgroup_abs']:.4f} | energy "
            f"{errors['energy_rel']:.2%} | speedup {accuracy['speedup']}x "
            f"(per-cell min {accuracy['per_cell_speedup_min']}x)"
        )
        for failure in accuracy["failures"]:
            print(f"ERROR: approx accuracy: {failure}")
    if supervised is not None:
        print(
            f"supervised(jobs={jobs}) {supervised['total_s']}s | "
            f"overhead vs pool {entry['supervised_overhead']:+.1%} | "
            f"identical={supervised_identical}"
        )
    if service is not None:
        print(
            f"service(jobs={service['jobs']}, "
            f"clients={service['clients']}) {service['elapsed_s']}s | "
            f"{service['cells_per_s']} cells/s delivered | "
            f"coalesced={service['coalesced']} | "
            f"identical={service_identical}"
        )
    if cmp_pass is not None:
        print(
            f"cmp(cores=2, {cmp_pass['benchmark']}) {cmp_pass['cmp_s']}s | "
            f"throughput {cmp_pass['throughput_ipc']} ipc | "
            f"cores=1 parity={cmp_parity}"
        )
    if instrumented is not None:
        print(
            f"telemetry serial {instrumented['total_s']}s | "
            f"overhead {entry['telemetry_overhead']:+.1%} | "
            f"results unchanged={telemetry_identical}"
        )
    print(f"appended entry #{len(ledger['entries'])} to {args.out}")
    if not identical:
        print("ERROR: parallel results diverge from serial — engine bug")
        return 1
    if not supervised_identical:
        print("ERROR: supervised results diverge from serial — supervisor bug")
        return 1
    if (
        supervised is not None
        and args.max_supervised_overhead is not None
        and entry["supervised_overhead"] > args.max_supervised_overhead
    ):
        print(
            "ERROR: supervised overhead "
            f"{entry['supervised_overhead']:+.1%} exceeds allowed "
            f"{args.max_supervised_overhead:.1%}"
        )
        return 1
    if not service_identical:
        print("ERROR: service payloads diverge from serial — server bug")
        return 1
    if (
        service is not None
        and args.min_service_throughput is not None
        and float(service["cells_per_s"]) < args.min_service_throughput
    ):
        print(
            f"ERROR: service throughput {service['cells_per_s']} cells/s "
            f"below required floor {args.min_service_throughput}"
        )
        return 1
    if not telemetry_identical:
        print("ERROR: telemetry changed simulated results — instrumentation bug")
        return 1
    if not cmp_parity:
        print(
            "ERROR: CmpConfig(cores=1) diverged from the single-core "
            "path — bit-identity contract broken"
        )
        return 1
    if parity_failures:
        print("ERROR: replay engines diverge — fast-path bug")
        return 1
    if accuracy is not None and not accuracy["within_tolerance"]:
        print("ERROR: approx engine drifted past documented tolerances")
        return 1
    if regression_failure is not None:
        print(f"ERROR: {regression_failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Simulation-as-a-service: async job server over the cell executor.

The package stands the simulator up as a long-lived server process:

* :mod:`repro.service.store` — a content-addressed result store keyed
  by :func:`repro.sim.parallel.cell_fingerprint` (config fingerprint x
  trace parameters x engine x telemetry), with ``FileLock``-serialized
  writes, sha256 sidecars, and last-N eviction.  Shared by the server,
  ``run_suite(result_store=...)``, and ``Sweep(result_store=...)``.
* :mod:`repro.service.scheduler` — a bounded fair-share queue with
  per-client quotas and deficit-round-robin dispatch.
* :mod:`repro.service.protocol` — the JSON wire format: grid requests,
  config specs, NDJSON progress events.
* :mod:`repro.service.server` — the asyncio HTTP/1.1 server (stdlib
  only) scheduling cells onto the existing
  :class:`~repro.sim.parallel.CellTask` executor.
* :mod:`repro.service.client` — a blocking client for tests, examples,
  and the CLI.

Start a server with ``python -m repro.service serve``; see the README
"Serving simulations" section for the full tour.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import GridRequest, build_config, config_spec
from repro.service.scheduler import FairShareScheduler, QuotaExceeded
from repro.service.server import ServerConfig, SimulationServer, serve_in_thread
from repro.service.store import ResultStore

__all__ = [
    "FairShareScheduler",
    "GridRequest",
    "QuotaExceeded",
    "ResultStore",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "SimulationServer",
    "build_config",
    "config_spec",
    "serve_in_thread",
]

"""A blocking HTTP client for the simulation service.

Stdlib only (``http.client``), one connection per call (the server
speaks ``Connection: close``).  The client exists so tests, examples,
and the CLI never hand-roll HTTP::

    client = ServiceClient("http://127.0.0.1:8753")
    submission = client.submit(GridRequest(
        configs=[config_spec("nurapid"), config_spec("s-nuca")],
        benchmarks=["gzip", "gcc"],
        client="alice",
        n_references=60_000,
    ))
    status = client.wait(submission["job"])
    suite_results = client.suites(status)   # {config_name: SuiteResult}

:meth:`ServiceClient.events` yields the job's NDJSON progress events as
dicts, replaying history first, so a client reconnecting after a drop
misses nothing.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Iterator, List, Mapping, Optional, Union

from repro.common.errors import ReproError
from repro.service.protocol import GridRequest
from repro.sim.results import RunResult, SuiteResult, run_result_from_dict


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one server; safe to share across threads (no state)."""

    def __init__(self, url: str, timeout: float = 300.0) -> None:
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ReproError(
                f"service URLs look like http://host:port, got {url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # --- plumbing ---

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Connection": "close"}
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceError(
                    response.status, str(payload.get("error", raw))
                )
            if not isinstance(payload, dict):
                raise ServiceError(response.status, f"non-object body {raw!r}")
            return payload
        finally:
            conn.close()

    # --- endpoints ---

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/v1/healthz").get("ok"))
        except (OSError, ServiceError):
            return False

    def wait_healthy(self, timeout: float = 30.0, interval: float = 0.1) -> None:
        """Block until the server answers health checks (or raise)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return
            time.sleep(interval)
        raise ServiceError(503, f"service not healthy within {timeout}s")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/v1/stats")

    def submit(
        self, request: Union[GridRequest, Mapping[str, object]]
    ) -> Dict[str, object]:
        """POST a grid; returns the submission summary (job id, hits)."""
        payload = (
            request.to_payload()
            if isinstance(request, GridRequest)
            else dict(request)
        )
        return self._request("POST", "/v1/jobs", body=payload)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON events; ends after the ``done`` event."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events",
                headers={"Connection": "close"},
            )
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", raw)
                except (json.JSONDecodeError, AttributeError):
                    message = raw
                raise ServiceError(response.status, str(message))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str) -> Dict[str, object]:
        """Block until the job finishes; returns its final status payload."""
        for event in self.events(job_id):
            if event.get("event") == "done":
                break
        return self.job(job_id)

    # --- result reshaping ---

    @staticmethod
    def run_results(status: Mapping[str, object]) -> List[RunResult]:
        """The job's cells as :class:`RunResult`, in grid order.

        Raises :class:`ServiceError` if any cell failed or is still
        pending — callers wanting partial results walk ``cells``
        themselves.
        """
        results: List[RunResult] = []
        for cell in status.get("cells", ()):  # type: ignore[union-attr]
            if cell["status"] not in ("ok", "hit"):
                raise ServiceError(
                    500,
                    f"cell {cell['index']} ({cell['config']}/"
                    f"{cell['benchmark']}) is {cell['status']}",
                )
            results.append(run_result_from_dict(cell["payload"]["result"]))
        return results

    @classmethod
    def suites(cls, status: Mapping[str, object]) -> Dict[str, SuiteResult]:
        """The job reshaped as ``run_suite`` outputs: name -> SuiteResult."""
        suites: Dict[str, Dict[str, RunResult]] = {}
        for cell, result in zip(status["cells"], cls.run_results(status)):  # type: ignore[index]
            suites.setdefault(cell["config"], {})[cell["benchmark"]] = result
        return {
            name: SuiteResult(config_name=name, runs=runs)
            for name, runs in suites.items()
        }

"""The service wire format: config specs, grid requests, events.

Everything crossing the socket is JSON.  Configurations travel as
*specs* — a factory name plus JSON-safe options — rather than pickled
:class:`~repro.sim.config.SystemConfig` objects, so any HTTP client
(curl included) can submit work and the server never unpickles
untrusted bytes::

    {"kind": "nurapid", "options": {"n_dgroups": 8}, "engine": "fast"}

A grid request is the cross product of config specs and benchmarks,
with the same per-run knobs :func:`repro.sim.driver.run_suite` takes;
cells enumerate configs-outer, benchmarks-inner, exactly like
``run_suite``, so a grid's cell order matches a direct run's.

Progress flows back as NDJSON: one JSON object per line, each with an
``"event"`` discriminator (``submitted``, ``hit``, ``queued``,
``running``, ``completed``, ``failed``, ``done``) and a monotonically
increasing per-job ``"seq"`` so clients can resume a dropped stream.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.nuca.config import SearchPolicy
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import (
    ENGINES,
    SystemConfig,
    base_config,
    dnuca_config,
    nurapid_config,
    resolve_engine,
    sa_nuca_config,
    snuca_config,
)

PROTOCOL_VERSION = 1

#: Wire names for the shipped config factories and the JSON-safe
#: options each accepts (enum-valued options take the enum's value).
CONFIG_KINDS = ("base", "nurapid", "dnuca", "sa-nuca", "s-nuca")


def _build_nurapid(options: Dict[str, object]) -> SystemConfig:
    kwargs = dict(options)
    if "promotion" in kwargs:
        kwargs["promotion"] = PromotionPolicy(kwargs["promotion"])
    if "distance_replacement" in kwargs:
        kwargs["distance_replacement"] = DistanceReplacementKind(
            kwargs["distance_replacement"]
        )
    return nurapid_config(**kwargs)


def _build_dnuca(options: Dict[str, object]) -> SystemConfig:
    kwargs = dict(options)
    if "policy" in kwargs:
        kwargs["policy"] = SearchPolicy(kwargs["policy"])
    return dnuca_config(**kwargs)


_BUILDERS = {
    "base": lambda options: base_config(**options),
    "nurapid": _build_nurapid,
    "dnuca": _build_dnuca,
    "sa-nuca": lambda options: sa_nuca_config(**options),
    "s-nuca": lambda options: snuca_config(**options),
}


def config_spec(
    kind: str, engine: Optional[str] = None, **options: object
) -> Dict[str, object]:
    """A JSON-safe config spec (client-side convenience)."""
    if kind not in CONFIG_KINDS:
        raise ConfigurationError(
            f"unknown config kind {kind!r}; expected one of "
            f"{', '.join(CONFIG_KINDS)}"
        )
    spec: Dict[str, object] = {"kind": kind}
    if options:
        spec["options"] = options
    if engine is not None:
        spec["engine"] = engine
    return spec


def build_config(spec: Mapping[str, object]) -> SystemConfig:
    """Materialize a config spec; raises ConfigurationError on bad specs."""
    if not isinstance(spec, Mapping):
        raise ConfigurationError(f"config spec must be an object, got {spec!r}")
    kind = spec.get("kind")
    builder = _BUILDERS.get(kind)  # type: ignore[arg-type]
    if builder is None:
        raise ConfigurationError(
            f"unknown config kind {kind!r}; expected one of "
            f"{', '.join(CONFIG_KINDS)}"
        )
    options = spec.get("options", {})
    if not isinstance(options, Mapping):
        raise ConfigurationError("config spec 'options' must be an object")
    try:
        config = builder(dict(options))
    except ConfigurationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"bad options for config kind {kind!r}: {exc}"
        ) from exc
    engine = spec.get("engine")
    if engine is not None:
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of "
                f"{', '.join(ENGINES)}"
            )
        config = dataclasses.replace(config, engine=engine)
    return config


@dataclass
class GridRequest:
    """One submission: a grid of cells plus scheduling identity.

    ``client`` is the fair-share identity the cells are queued (and
    quota-counted) under.  ``engine`` overrides every spec's engine;
    left None, each config resolves its own (spec engine, else the
    server's default).  ``estimate=True`` runs every cell through the
    analytical ``approx`` engine synchronously and returns those
    results inline with the submission response; ``exact`` then
    controls whether the exact cells are still scheduled behind the
    estimate (it defaults to True and is meaningless without
    ``estimate`` — a non-estimate submission always schedules).
    """

    configs: List[Dict[str, object]]
    benchmarks: List[str]
    client: str = "anon"
    n_references: int = 120_000
    seed: int = 0
    warmup_fraction: float = 0.4
    warm_set_conflict: int = 1
    prewarm: bool = True
    engine: Optional[str] = None
    telemetry: bool = False
    estimate: bool = False
    exact: bool = True
    #: Reserved for forward compatibility; echoed back verbatim.
    tag: Optional[str] = None
    _parsed: List[SystemConfig] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.configs:
            raise ConfigurationError("grid needs at least one config spec")
        if not self.benchmarks:
            raise ConfigurationError("grid needs at least one benchmark")
        if self.n_references <= 0:
            raise ConfigurationError(
                f"n_references must be positive, got {self.n_references}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.warm_set_conflict < 1:
            raise ConfigurationError(
                f"warm_set_conflict must be >= 1, got {self.warm_set_conflict}"
            )
        if self.engine is not None and self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINES)}"
            )
        if not self.client or not isinstance(self.client, str):
            raise ConfigurationError("client must be a non-empty string")
        # Materialize (and thereby validate) every spec eagerly, so a
        # bad grid is rejected before any cell is admitted.
        self._parsed = [build_config(spec) for spec in self.configs]

    def resolved_configs(self, default_engine: Optional[str] = None) -> List[SystemConfig]:
        """The grid's configs with engines pinned (never None).

        Priority: the request-wide ``engine``, else the spec's own,
        else ``default_engine`` (the server's), else the library
        default — resolved once at admission so results are
        reproducible regardless of the executing worker's environment.
        """
        resolved = []
        for config in self._parsed:
            engine = self.engine or config.engine or default_engine
            resolved.append(
                dataclasses.replace(config, engine=resolve_engine(engine))
            )
        return resolved

    def cells(
        self, default_engine: Optional[str] = None
    ) -> List[Tuple[SystemConfig, str]]:
        """Grid cells in ``run_suite`` order: configs outer, benchmarks inner."""
        return [
            (config, benchmark)
            for config in self.resolved_configs(default_engine)
            for benchmark in self.benchmarks
        ]

    def to_payload(self) -> Dict[str, object]:
        payload = {
            "version": PROTOCOL_VERSION,
            "client": self.client,
            "configs": self.configs,
            "benchmarks": self.benchmarks,
            "n_references": self.n_references,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "warm_set_conflict": self.warm_set_conflict,
            "prewarm": self.prewarm,
            "telemetry": self.telemetry,
            "estimate": self.estimate,
            "exact": self.exact,
        }
        if self.engine is not None:
            payload["engine"] = self.engine
        if self.tag is not None:
            payload["tag"] = self.tag
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "GridRequest":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("grid request must be a JSON object")
        version = payload.get("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ConfigurationError(
                f"unsupported protocol version {version!r} "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        known = {
            "client", "configs", "benchmarks", "n_references", "seed",
            "warmup_fraction", "warm_set_conflict", "prewarm", "engine",
            "telemetry", "estimate", "exact", "tag",
        }
        unknown = set(payload) - known - {"version"}
        if unknown:
            raise ConfigurationError(
                f"unknown grid request fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                configs=list(payload["configs"]),  # type: ignore[arg-type]
                benchmarks=[str(b) for b in payload["benchmarks"]],  # type: ignore[union-attr]
                client=str(payload.get("client", "anon")),
                n_references=int(payload.get("n_references", 120_000)),  # type: ignore[arg-type]
                seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
                warmup_fraction=float(payload.get("warmup_fraction", 0.4)),  # type: ignore[arg-type]
                warm_set_conflict=int(payload.get("warm_set_conflict", 1)),  # type: ignore[arg-type]
                prewarm=bool(payload.get("prewarm", True)),
                engine=payload.get("engine"),  # type: ignore[arg-type]
                telemetry=bool(payload.get("telemetry", False)),
                estimate=bool(payload.get("estimate", False)),
                exact=bool(payload.get("exact", True)),
                tag=payload.get("tag"),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed grid request: {exc}") from exc


def encode_event(kind: str, seq: int, **fields: object) -> bytes:
    """One NDJSON event line (trailing newline included)."""
    body = {"event": kind, "seq": seq}
    body.update(fields)
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")


def canonical_json(payload: object) -> str:
    """The byte-stable JSON encoding used for parity comparisons."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))

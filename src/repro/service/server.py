"""The asyncio job server: HTTP/1.1 + JSON over stdlib streams.

Architecture (one event loop, ``jobs`` worker tasks, one process pool):

* **admission** (``POST /v1/jobs``) — parse and validate the grid,
  resolve engines, ensure each benchmark's shared trace exists in the
  on-disk trace cache, then for every cell: serve it from the
  content-addressed :class:`~repro.service.store.ResultStore` if
  present (a *memo hit* — zero simulation work), coalesce onto an
  identical in-flight cell if one is already queued or running
  (cross-client dedup: one computation, many subscribers), else admit
  it to the :class:`~repro.service.scheduler.FairShareScheduler` under
  the submitting client's quota.  Quota exhaustion rejects the whole
  grid with HTTP 429 before admitting anything.
* **execution** — each worker task awaits the scheduler (deficit
  round robin across clients), runs the cell through the *existing*
  executor — :func:`repro.sim.parallel.execute_cell` in a process
  pool, or :func:`repro.resilience.run_cells_supervised` when the
  server runs supervised — publishes first-attempt successes to the
  store, and resolves every subscribed job cell.
* **observation** — ``GET /v1/jobs/<id>`` returns job status with
  terminal cell payloads; ``GET /v1/jobs/<id>/events`` streams NDJSON
  progress (replaying history first, so late subscribers see the full
  story); ``GET /v1/stats`` exposes queue depths, hit rates, and
  per-client accounting from the runtime registry.

Because the server executes cells through the same ``CellTask`` path
as ``run_suite`` / ``Sweep`` — same trace cache, same seeding, same
serialization — a grid run through the server is byte-identical to a
direct ``run_suite``, and because results persist in the store, a
``kill -9`` mid-grid costs only the in-flight cells: a restarted
server serves the completed ones from disk.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import threading
import uuid
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ReproError
from repro.service.protocol import GridRequest, encode_event
from repro.service.scheduler import FairShareScheduler, QuotaExceeded
from repro.service.store import ResultStore
from repro.sim.parallel import (
    CellTask,
    cell_fingerprint,
    execute_cell,
    memoizable_payload,
)
from repro.telemetry import TelemetryConfig
from repro.telemetry.registry import StatRegistry
from repro.telemetry.runtime import runtime_registry
from repro.workloads.spec2k import get_benchmark
from repro.workloads.tracegen import TraceCache
from repro.workloads.transport import ensure_decoded

MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024


@dataclass
class ServerConfig:
    """Everything a server instance needs to stand up."""

    store_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick; see SimulationServer.port
    #: Worker processes executing cells (and concurrent worker tasks).
    jobs: int = 2
    #: Max queued cells per client (HTTP 429 beyond it).
    quota: int = 256
    #: DRR refill per scheduling visit, in reference-count units.
    quantum: float = 120_000.0
    #: Last-N store eviction bound (None: unbounded).
    max_entries: Optional[int] = None
    #: Trace cache directory (default: ``<store_dir>/traces``).
    trace_cache_dir: Optional[str] = None
    #: Engine pinned onto requests that do not name one themselves.
    default_engine: Optional[str] = None
    #: Route cells through the supervised executor (worker deadlines,
    #: crash recovery) instead of the plain process pool.
    supervised: bool = False
    #: Per-attempt deadline under supervision (None: unbounded).
    cell_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")


@dataclass
class _Cell:
    """One grid cell's lifecycle inside a job."""

    index: int
    config_name: str
    benchmark: str
    key: str
    status: str = "queued"  # queued | running | hit | ok | failed
    source: Optional[str] = None  # store | computed | coalesced
    payload: Optional[Dict[str, object]] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("hit", "ok", "failed")

    def summary(self, with_payload: bool) -> Dict[str, object]:
        body: Dict[str, object] = {
            "index": self.index,
            "config": self.config_name,
            "benchmark": self.benchmark,
            "key": self.key,
            "status": self.status,
            "source": self.source,
        }
        if with_payload and self.terminal:
            body["payload"] = self.payload
        return body


class _Job:
    """Server-side job record with an appendable event log."""

    def __init__(self, job_id: str, client: str, request: GridRequest) -> None:
        self.id = job_id
        self.client = client
        self.request = request
        self.cells: List[_Cell] = []
        self.estimates: Optional[List[Dict[str, object]]] = None
        self.events: List[bytes] = []
        self.changed = asyncio.Condition()
        self.done = False

    def _emit_locked(self, kind: str, **fields: object) -> None:
        self.events.append(encode_event(kind, len(self.events), **fields))

    async def emit(self, kind: str, **fields: object) -> None:
        async with self.changed:
            self._emit_locked(kind, **fields)
            self.changed.notify_all()

    async def maybe_finish(self) -> None:
        if self.done or not all(c.terminal for c in self.cells):
            return
        self.done = True
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        await self.emit("done", job=self.id, counts=counts)

    def status_payload(self, with_payloads: bool = True) -> Dict[str, object]:
        return {
            "job": self.id,
            "client": self.client,
            "done": self.done,
            "cells": [c.summary(with_payloads) for c in self.cells],
        }


def _supervised_cell(task: CellTask, timeout_s: Optional[float]):
    """Run one cell under the supervised executor (in a thread)."""
    from repro.resilience.supervisor import (
        SupervisorConfig,
        run_cells_supervised,
    )

    config = SupervisorConfig(cell_timeout_s=timeout_s)
    return run_cells_supervised([task], 1, config=config)[0]


class SimulationServer:
    """One server instance; drive with :meth:`start` / :meth:`stop`.

    All state except the result store and trace cache is in-memory:
    restarting the process forgets jobs but keeps every completed
    cell's bytes.
    """

    def __init__(
        self, config: ServerConfig, registry: Optional[StatRegistry] = None
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else runtime_registry()
        self.store = ResultStore(
            config.store_dir,
            max_entries=config.max_entries,
            registry=self.registry,
        )
        trace_dir = config.trace_cache_dir or f"{config.store_dir}/traces"
        self.traces = TraceCache(trace_dir)
        self.scheduler = FairShareScheduler(
            quota=config.quota, quantum=config.quantum
        )
        self.jobs: Dict[str, _Job] = {}
        #: key -> subscribed (job, cell_index) pairs for in-flight cells.
        self._inflight: Dict[str, List[Tuple[_Job, int]]] = {}
        self._pool: Optional[Executor] = None
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # --- lifecycle ---

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    def _make_pool(self) -> Executor:
        if self.config.supervised:
            # Each supervised cell spawns and babysits its own worker
            # process; the threads here only host the supervisors.
            return ThreadPoolExecutor(
                max_workers=self.config.jobs,
                thread_name_prefix="repro-service-supervise",
            )
        # Spawned (not forked) workers: forking a threaded asyncio
        # parent is unsafe, and spawn keeps the listening socket out of
        # the children, so a kill -9'd server frees its port instantly
        # instead of leaving it held by orphaned workers.
        return ProcessPoolExecutor(
            max_workers=self.config.jobs,
            mp_context=multiprocessing.get_context("spawn"),
        )

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = self._make_pool()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"service-worker-{i}")
            for i in range(self.config.jobs)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.scheduler.close()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except (asyncio.CancelledError, Exception):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # --- execution ---

    async def _worker_loop(self) -> None:
        assert self._loop is not None
        while True:
            got = await self.scheduler.get()
            if got is None:
                return
            client, item = got
            self.registry.set("service.queue_depth", self.scheduler.depth())
            key, task = item
            await self._notify_subscribers(key, "running")
            payload = await self._run_task(task)
            stored = dict(payload)
            stored.pop("index", None)
            if memoizable_payload(stored):
                await self._loop.run_in_executor(
                    None, self.store.put, key, stored
                )
            outcome = stored.get("outcome")
            ok = isinstance(outcome, dict) and outcome.get("status") == "ok"
            self.registry.add("service.cells_completed")
            self.registry.add(f"service.client.{client}.cells_completed")
            if not ok:
                self.registry.add("service.cells_failed")
            await self._resolve(key, stored, "computed")

    async def _run_task(self, task: CellTask) -> Dict[str, object]:
        """Execute one cell on the pool; never raises into the loop."""
        assert self._loop is not None and self._pool is not None
        try:
            if self.config.supervised:
                return await self._loop.run_in_executor(
                    self._pool,
                    _supervised_cell,
                    task,
                    self.config.cell_timeout_s,
                )
            return await self._loop.run_in_executor(
                self._pool, execute_cell, task
            )
        except BrokenProcessPool:
            # A worker died hard (OOM-kill, segfault).  Rebuild the
            # pool so subsequent cells still run, and fail this cell.
            self.registry.add("service.pool_rebuilds")
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = self._make_pool()
            error = "worker process died (pool rebuilt)"
            error_type = "WorkerCrash"
        except Exception as exc:  # simulator bug: surface, don't crash
            self.registry.add("service.executor_errors")
            error = str(exc)
            error_type = type(exc).__name__
        return {
            "index": task.index,
            "outcome": {
                "status": "failed",
                "attempts": 1,
                "error": error,
                "error_type": error_type,
            },
            "result": None,
        }

    async def _notify_subscribers(self, key: str, status: str) -> None:
        for job, index in self._inflight.get(key, ()):
            cell = job.cells[index]
            if not cell.terminal:
                cell.status = status
                await job.emit(
                    status, job=job.id, cell=index,
                    config=cell.config_name, benchmark=cell.benchmark,
                )

    async def _resolve(
        self, key: str, payload: Dict[str, object], source: str
    ) -> None:
        subscribers = self._inflight.pop(key, [])
        outcome = payload.get("outcome")
        ok = isinstance(outcome, dict) and outcome.get("status") == "ok"
        for job, index in subscribers:
            cell = job.cells[index]
            cell.status = "ok" if ok else "failed"
            cell.source = source if cell.source is None else cell.source
            cell.payload = payload
            await job.emit(
                "completed" if ok else "failed",
                job=job.id, cell=index,
                config=cell.config_name, benchmark=cell.benchmark,
                source=cell.source,
            )
            await job.maybe_finish()

    # --- admission ---

    async def _ensure_traces(self, request: GridRequest) -> None:
        assert self._loop is not None
        for benchmark in sorted(set(request.benchmarks)):
            get_benchmark(benchmark)  # unknown names fail pre-admission
            path = await self._loop.run_in_executor(
                None,
                self.traces.ensure,
                benchmark,
                request.n_references,
                request.seed,
                request.warm_set_conflict,
            )
            # Lay the zero-copy decoded segment down once at admission
            # (still off the event loop); workers mmap it per cell.
            await self._loop.run_in_executor(None, ensure_decoded, path)

    def _cell_task(
        self,
        request: GridRequest,
        index: int,
        config,
        benchmark: str,
        telemetry: Optional[TelemetryConfig],
    ) -> CellTask:
        trace_path = self.traces.path_for(
            benchmark,
            request.n_references,
            request.seed,
            request.warm_set_conflict,
        )
        return CellTask(
            index=index,
            config=config,
            benchmark=benchmark,
            n_references=request.n_references,
            seed=request.seed,
            warmup_fraction=request.warmup_fraction,
            trace_path=trace_path,
            mmap_path=ensure_decoded(trace_path),
            warm_set_conflict=request.warm_set_conflict,
            prewarm=request.prewarm,
            telemetry=telemetry,
        )

    async def _estimate_pass(
        self, request: GridRequest
    ) -> List[Dict[str, object]]:
        """Analytical answers for every cell, memoized like any other."""
        assert self._loop is not None and self._pool is not None
        import dataclasses as _dc

        estimates: List[Dict[str, object]] = []
        for index, (config, benchmark) in enumerate(request.cells("approx")):
            approx_config = _dc.replace(config, engine="approx")
            task = self._cell_task(
                request, index, approx_config, benchmark, telemetry=None
            )
            key = cell_fingerprint(task)
            assert key is not None
            cached = await self._loop.run_in_executor(None, self.store.get, key)
            if cached is None:
                payload = await self._run_task(task)
                cached = dict(payload)
                cached.pop("index", None)
                if memoizable_payload(cached):
                    await self._loop.run_in_executor(
                        None, self.store.put, key, cached
                    )
            self.registry.add("service.estimates")
            estimates.append({"index": index, "key": key, **cached})
        return estimates

    async def _submit(self, body: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        assert self._loop is not None
        request = GridRequest.from_payload(body)
        cells = request.cells(self.config.default_engine)
        if request.telemetry and any(
            config.engine == "approx" for config, _ in cells
        ):
            raise ConfigurationError(
                "telemetry requires an exact engine; approx has no "
                "per-reference events to record"
            )
        await self._ensure_traces(request)
        telemetry = TelemetryConfig() if request.telemetry else None

        job = _Job(uuid.uuid4().hex[:12], request.client, request)
        self.registry.add("service.jobs_submitted")
        self.registry.add(f"service.client.{request.client}.jobs")

        if request.estimate:
            job.estimates = await self._estimate_pass(request)

        schedule = request.exact or not request.estimate
        tasks: List[Tuple[_Cell, CellTask, Optional[Dict[str, object]]]] = []
        to_enqueue = 0
        if schedule:
            for index, (config, benchmark) in enumerate(cells):
                task = self._cell_task(
                    request, index, config, benchmark, telemetry
                )
                key = cell_fingerprint(task)
                assert key is not None  # protocol cells are always addressable
                cell = _Cell(
                    index=index,
                    config_name=config.name,
                    benchmark=benchmark,
                    key=key,
                )
                cached = await self._loop.run_in_executor(
                    None, self.store.get, key
                )
                tasks.append((cell, task, cached))
                if cached is None and key not in self._inflight:
                    # Planning estimate only; the admission loop below
                    # re-decides against current state.  Over-counting
                    # a cell that ends up coalescing merely makes the
                    # quota check conservative.
                    to_enqueue += 1
            if to_enqueue > self.scheduler.room(request.client):
                self.registry.add(
                    f"service.client.{request.client}.rejected"
                )
                raise QuotaExceeded(
                    f"grid needs {to_enqueue} queue slots but client "
                    f"{request.client!r} has "
                    f"{self.scheduler.room(request.client)} available "
                    f"(quota {self.scheduler.quota})"
                )

        self.jobs[job.id] = job
        async with job.changed:
            job._emit_locked(
                "submitted",
                job=job.id,
                client=request.client,
                cells=len(tasks),
                estimate=request.estimate,
            )
            job.changed.notify_all()

        hits = 0
        for cell, task, cached in tasks:
            job.cells.append(cell)
            self.registry.add("service.cells_submitted")
            self.registry.add(
                f"service.client.{request.client}.cells_submitted"
            )
            # Re-decide hit/coalesce/enqueue against *current* state:
            # the planning pass's store probe awaited the executor, so
            # a concurrent submission may have admitted (or resolved) a
            # twin since.  The inflight check and registration below
            # have no await between them, which is what makes the
            # dedup race-free on the single event loop.
            if cached is None and cell.key not in self._inflight:
                # A twin the planner saw may have resolved; its result
                # (if it succeeded) is in the store now.
                cached = await self._loop.run_in_executor(
                    None, self.store.get, cell.key
                )
            if cached is not None:
                hits += 1
                cell.status = "hit"
                cell.source = "store"
                cell.payload = cached
                self.registry.add("service.cells_memo_hits")
                self.registry.add(
                    f"service.client.{request.client}.memo_hits"
                )
                await job.emit(
                    "hit", job=job.id, cell=cell.index,
                    config=cell.config_name, benchmark=cell.benchmark,
                )
            elif cell.key in self._inflight:  # coalesce onto the twin
                cell.source = "coalesced"
                self._inflight[cell.key].append((job, cell.index))
                self.registry.add("service.cells_coalesced")
                await job.emit(
                    "queued", job=job.id, cell=cell.index,
                    config=cell.config_name, benchmark=cell.benchmark,
                    coalesced=True,
                )
            else:
                self._inflight[cell.key] = [(job, cell.index)]
                self.scheduler.put(
                    request.client,
                    (cell.key, task),
                    cost=float(request.n_references),
                )
                self.registry.add("service.cells_enqueued")
                self.registry.set(
                    "service.queue_depth", self.scheduler.depth()
                )
                await job.emit(
                    "queued", job=job.id, cell=cell.index,
                    config=cell.config_name, benchmark=cell.benchmark,
                    coalesced=False,
                )
        await job.maybe_finish()
        if not schedule and not job.cells:
            job.done = True

        response = {
            "job": job.id,
            "client": request.client,
            "cells": len(tasks),
            "memo_hits": hits,
            "done": job.done,
        }
        if job.estimates is not None:
            response["estimates"] = job.estimates
        return 200, response

    # --- stats ---

    def _stats_payload(self) -> Dict[str, object]:
        counters = self.registry.counters("service.")
        counters.update(self.registry.counters("result_store."))
        submitted = counters.get("service.cells_submitted", 0.0)
        hits = counters.get("service.cells_memo_hits", 0.0)
        return {
            "queue_depth": self.scheduler.depth(),
            "queue_depths": self.scheduler.depths(),
            "jobs": len(self.jobs),
            "store_entries": self.store.entries(),
            "memo_hit_rate": round(hits / submitted, 4) if submitted else 0.0,
            "counters": counters,
        }

    # --- HTTP plumbing ---

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
            await self._route(method, path, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:
            try:
                await self._respond(
                    writer, 500, {"error": str(exc), "type": type(exc).__name__}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict[str, object]]]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ConfigurationError(
                f"malformed request line {request_line!r}"
            ) from None
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise ConfigurationError("request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[Dict[str, object]] = None
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > MAX_BODY_BYTES:
                raise ConfigurationError(
                    f"request body of {length} bytes exceeds "
                    f"{MAX_BODY_BYTES}"
                )
            raw = await reader.readexactly(length)
            try:
                decoded = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(decoded, dict):
                raise ConfigurationError("request body must be a JSON object")
            body = decoded
        return method.upper(), path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: _Job
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        sent = 0
        while True:
            async with job.changed:
                while sent >= len(job.events) and not job.done:
                    await job.changed.wait()
                pending = job.events[sent:]
                sent = len(job.events)
                done = job.done
            for event in pending:
                writer.write(event)
            await writer.drain()
            if done and sent >= len(job.events):
                return

    async def _route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]],
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/v1/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
            return
        if path == "/v1/stats" and method == "GET":
            await self._respond(writer, 200, self._stats_payload())
            return
        if path == "/v1/jobs" and method == "POST":
            if body is None:
                await self._respond(
                    writer, 400, {"error": "POST /v1/jobs needs a JSON body"}
                )
                return
            try:
                status, payload = await self._submit(body)
            except QuotaExceeded as exc:
                await self._respond(
                    writer, 429, {"error": str(exc), "type": "QuotaExceeded"}
                )
                return
            except ReproError as exc:
                await self._respond(
                    writer, 400, {"error": str(exc), "type": type(exc).__name__}
                )
                return
            await self._respond(writer, status, payload)
            return
        if path.startswith("/v1/jobs/"):
            parts = path[len("/v1/jobs/"):].split("/")
            job = self.jobs.get(parts[0])
            if job is None:
                await self._respond(
                    writer, 404, {"error": f"unknown job {parts[0]!r}"}
                )
                return
            if len(parts) == 1 and method == "GET":
                await self._respond(writer, 200, job.status_payload())
                return
            if len(parts) == 2 and parts[1] == "events" and method == "GET":
                await self._stream_events(writer, job)
                return
        await self._respond(
            writer, 405 if path.startswith("/v1/") else 404,
            {"error": f"no route for {method} {path}"},
        )


class BackgroundServer:
    """A server running on its own thread/loop; for tests and bench.

    Use as a context manager, or call :meth:`stop` explicitly::

        with serve_in_thread(ServerConfig(store_dir=...)) as bg:
            client = ServiceClient(bg.url)
    """

    def __init__(self, server: SimulationServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            await self.server.start()
            self._started.set()

        self._loop.run_until_complete(boot())
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    config: ServerConfig, registry: Optional[StatRegistry] = None
) -> BackgroundServer:
    """Start a server on a background thread; returns once it is bound."""
    return BackgroundServer(SimulationServer(config, registry=registry)).start()

"""Content-addressed memoization of completed simulation cells.

One entry per :func:`repro.sim.parallel.cell_fingerprint` key: a JSON
file ``<key>.json`` holding the cell's ``{"outcome", "result"}``
payload (exactly the checkpoint-record shape, minus the grid-local
``index``), next to a ``<key>.json.sha256`` integrity sidecar
(:mod:`repro.resilience.integrity`).  The store is the server's source
of truth across restarts — a ``kill -9`` mid-grid loses in-flight
cells only; everything already stored is served back on resubmission —
and is equally usable by direct callers
(``run_suite(result_store=...)``, ``Sweep(result_store=...)``), so a
warmed store accelerates every execution path.

Write discipline mirrors the trace cache: writes are serialized with a
cross-process :class:`~repro.resilience.locks.FileLock` on the store
directory, land via atomic rename, and are **idempotent** — a key that
already verifies on disk is never rewritten, so two processes
completing the same cell concurrently produce exactly one entry.  A
read whose sidecar mismatches (bit rot, torn copy) deletes the entry,
counts ``result_store.corrupt_recovered``, and returns a miss so the
caller recomputes.

Eviction is last-N: ``max_entries`` caps the entry count and the
least-recently-*touched* entries (reads bump mtime) are dropped first.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.resilience.integrity import (
    remove_sidecar,
    sidecar_path,
    verify_sidecar,
    write_sidecar,
)
from repro.resilience.locks import FileLock
from repro.telemetry.registry import StatRegistry
from repro.telemetry.runtime import runtime_registry

STORE_FORMAT = 1

_KEY_HEX = frozenset("0123456789abcdef")


def _check_key(key: str) -> str:
    if len(key) != 64 or not set(key) <= _KEY_HEX:
        raise ConfigurationError(
            f"store keys are sha256 hex digests, got {key!r}"
        )
    return key


class ResultStore:
    """On-disk memo of completed cells, keyed by content address.

    ``max_entries=None`` disables eviction.  All counters land in the
    process-global runtime registry (``result_store.*``) unless a
    private ``registry`` is supplied (tests).
    """

    def __init__(
        self,
        directory: str,
        max_entries: Optional[int] = None,
        registry: Optional[StatRegistry] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.directory = directory
        self.max_entries = max_entries
        self._registry = registry if registry is not None else runtime_registry()
        os.makedirs(directory, exist_ok=True)

    # --- paths ---

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{_check_key(key)}.json")

    def _lock(self) -> FileLock:
        return FileLock(os.path.join(self.directory, ".store.lock"))

    # --- lookup ---

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored ``{"outcome", "result"}`` payload, or None.

        Verifies the sha256 sidecar before trusting the entry; a
        mismatch (or an unparseable file) evicts the entry, counts
        ``result_store.corrupt_recovered``, and misses so the caller
        recomputes — the same recover-by-recompute contract the trace
        cache keeps (``trace_cache.corrupt_recovered``).
        """
        path = self._path(key)
        if not os.path.exists(path):
            self._registry.add("result_store.misses")
            return None
        payload: Optional[Dict[str, object]] = None
        if verify_sidecar(path) is not False:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    decoded = json.load(handle)
                if (
                    isinstance(decoded, dict)
                    and decoded.get("key") == key
                    and isinstance(decoded.get("payload"), dict)
                ):
                    payload = decoded["payload"]
            except (OSError, json.JSONDecodeError):
                payload = None
        if payload is None:
            self._discard(path)
            self._registry.add("result_store.corrupt_recovered")
            self._registry.add("result_store.misses")
            return None
        self._touch(path)
        self._registry.add("result_store.hits")
        return payload

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    # --- publication ---

    def put(self, key: str, payload: Dict[str, object]) -> str:
        """Persist one cell payload under ``key``; returns the path.

        Idempotent: an existing entry that still verifies is left
        untouched (payloads are deterministic functions of the key, so
        there is nothing to reconcile).  The write itself is atomic and
        serialized under the store lock; eviction runs in the same
        critical section.
        """
        path = self._path(key)
        with self._lock():
            if os.path.exists(path) and verify_sidecar(path) is not False:
                return path
            body = {"format": STORE_FORMAT, "key": key, "payload": payload}
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(body, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            write_sidecar(path)
            self._registry.add("result_store.writes")
            if self.max_entries is not None:
                self._evict(keep=path)
        return path

    # --- maintenance ---

    def entries(self) -> int:
        """Number of entries currently on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for n in names if n.endswith(".json"))

    def _touch(self, path: str) -> None:
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass

    def _discard(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
        remove_sidecar(path)

    def _evict(self, keep: Optional[str] = None) -> None:
        """Drop least-recently-touched entries past ``max_entries``."""
        assert self.max_entries is not None
        try:
            names = [
                n for n in os.listdir(self.directory) if n.endswith(".json")
            ]
        except OSError:
            return
        if len(names) <= self.max_entries:
            return
        stamped = []
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                stamped.append((os.stat(path).st_mtime, path))
            except OSError:
                continue
        stamped.sort()
        for _, path in stamped[: max(0, len(stamped) - self.max_entries)]:
            if path == keep:
                continue
            self._discard(path)
            self._registry.add("result_store.evicted")

    def sidecar_for(self, key: str) -> str:
        """The integrity sidecar path for ``key`` (tests corrupt via this)."""
        return sidecar_path(self._path(key))

    def path_for(self, key: str) -> str:
        """The entry path for ``key`` (whether or not it exists yet)."""
        return self._path(key)

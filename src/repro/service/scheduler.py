"""Bounded fair-share queueing with deficit-round-robin dispatch.

The server cannot let one enthusiastic client monopolize the worker
pool: a tenant submitting a 500-cell grid must not starve a tenant
submitting a single cell.  The classic answer (Shreedhar & Varghese's
deficit round robin) fits exactly: each client gets a FIFO queue and a
*deficit counter*; the dispatcher visits active clients in round-robin
order, tops the visited client's deficit up by a fixed ``quantum``,
and dispatches that client's head cell only when the deficit covers
the cell's *cost* (here: its reference count, the honest proxy for
compute time).  Cheap cells therefore interleave freely while a
monster cell just makes its owner skip turns — long-run service is
proportional regardless of per-cell sizes.

Admission is bounded, not blocking: a client with ``quota`` cells
already queued gets :class:`QuotaExceeded` (the server maps it to HTTP
429) instead of growing the queue without bound.

All mutation happens on the server's event loop, so ``put`` is a plain
synchronous call; only ``get`` awaits.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError, ReproError


class QuotaExceeded(ReproError):
    """The client's queue is full; admission refused."""


class FairShareScheduler:
    """Per-client FIFOs dispatched by deficit round robin.

    ``quota`` bounds each client's queued (not yet dispatched) cells.
    ``quantum`` is the deficit refill per visit, in the same units as
    item costs; one typical cell's cost is a good value — larger
    quanta approach per-client FIFO bursts, smaller ones add rotation
    overhead without changing long-run shares.
    """

    def __init__(self, quota: int = 256, quantum: float = 120_000.0) -> None:
        if quota < 1:
            raise ConfigurationError(f"quota must be >= 1, got {quota}")
        if quantum <= 0:
            raise ConfigurationError(f"quantum must be positive, got {quantum}")
        self.quota = quota
        self.quantum = quantum
        self._queues: Dict[str, Deque[Tuple[object, float]]] = {}
        self._ring: Deque[str] = deque()
        self._deficits: Dict[str, float] = {}
        self._depth = 0
        self._closed = False
        self._wakeup = asyncio.Event()

    # --- admission ---

    def room(self, client: str) -> int:
        """How many more cells ``client`` may queue right now."""
        return self.quota - len(self._queues.get(client, ()))

    def put(self, client: str, item: object, cost: float = 1.0) -> None:
        """Queue one item for ``client``; never blocks.

        Raises :class:`QuotaExceeded` when the client's queue is full
        and :class:`ConfigurationError` after :meth:`close`.
        """
        if self._closed:
            raise ConfigurationError("scheduler is closed")
        if cost <= 0:
            raise ConfigurationError(f"cost must be positive, got {cost}")
        queue = self._queues.setdefault(client, deque())
        if len(queue) >= self.quota:
            raise QuotaExceeded(
                f"client {client!r} has {len(queue)} cells queued "
                f"(quota {self.quota})"
            )
        if not queue:
            self._ring.append(client)
            self._deficits.setdefault(client, 0.0)
        queue.append((item, cost))
        self._depth += 1
        self._wakeup.set()

    # --- dispatch ---

    def _next(self) -> Optional[Tuple[str, object]]:
        while self._ring:
            client = self._ring[0]
            queue = self._queues.get(client)
            if not queue:
                self._ring.popleft()
                self._deficits.pop(client, None)
                continue
            cost = queue[0][1]
            if self._deficits[client] >= cost:
                item, cost = queue.popleft()
                self._deficits[client] -= cost
                self._depth -= 1
                if not queue:
                    # An emptied queue leaves the ring and forfeits its
                    # remaining deficit — credit must not accrue while idle.
                    self._ring.popleft()
                    self._deficits.pop(client, None)
                return client, item
            self._deficits[client] += self.quantum
            self._ring.rotate(-1)
        return None

    async def get(self) -> Optional[Tuple[str, object]]:
        """The next ``(client, item)`` by DRR; None once closed and drained."""
        while True:
            got = self._next()
            if got is not None:
                return got
            if self._closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    # --- introspection / shutdown ---

    def depth(self) -> int:
        """Cells queued across all clients."""
        return self._depth

    def depths(self) -> Dict[str, int]:
        """Queued cells per client (only clients with pending work)."""
        return {c: len(q) for c, q in self._queues.items() if q}

    def close(self) -> None:
        """Stop admissions; waiting getters drain the queue, then get None."""
        self._closed = True
        self._wakeup.set()

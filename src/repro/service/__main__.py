"""Command-line entry points for the simulation service.

Start a server::

    python -m repro.service serve --store /tmp/repro-store --port 8753 \\
        --jobs 4 --quota 256

Submit a grid from the shell (any HTTP client works; this one wraps
:class:`repro.service.client.ServiceClient`)::

    python -m repro.service submit --url http://127.0.0.1:8753 \\
        --config nurapid --config s-nuca --benchmark gzip --benchmark gcc \\
        --refs 60000 --client alice --watch

    # the same submission via curl:
    curl -s http://127.0.0.1:8753/v1/jobs -d '{
        "configs": [{"kind": "nurapid"}, {"kind": "s-nuca"}],
        "benchmarks": ["gzip", "gcc"],
        "n_references": 60000, "client": "alice"}'

Inspect a running server::

    python -m repro.service stats --url http://127.0.0.1:8753
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.service.client import ServiceClient
from repro.service.protocol import CONFIG_KINDS, GridRequest, config_spec
from repro.service.server import ServerConfig, SimulationServer
from repro.sim.config import ENGINES


def _serve(args: argparse.Namespace) -> int:
    config = ServerConfig(
        store_dir=args.store,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        quota=args.quota,
        quantum=args.quantum,
        max_entries=args.max_entries,
        trace_cache_dir=args.trace_cache,
        default_engine=args.engine,
        supervised=args.supervised,
        cell_timeout_s=args.cell_timeout,
    )

    async def main() -> None:
        server = SimulationServer(config)
        await server.start()
        print(
            f"repro.service listening on http://{config.host}:{server.port} "
            f"(store: {config.store_dir}, jobs: {config.jobs})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    request = GridRequest(
        configs=[config_spec(kind) for kind in args.config],
        benchmarks=args.benchmark,
        client=args.client,
        n_references=args.refs,
        seed=args.seed,
        warmup_fraction=args.warmup,
        engine=args.engine,
        telemetry=args.telemetry,
        estimate=args.estimate,
        exact=not args.estimate_only,
    )
    submission = client.submit(request)
    print(json.dumps(submission, indent=2, sort_keys=True))
    if args.watch and not submission.get("done"):
        for event in client.events(str(submission["job"])):
            print(json.dumps(event, sort_keys=True), flush=True)
    return 0


def _stats(args: argparse.Namespace) -> int:
    print(json.dumps(ServiceClient(args.url).stats(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service: serve, submit, inspect.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a job server")
    serve.add_argument("--store", required=True, help="result store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8753)
    serve.add_argument("--jobs", type=int, default=2,
                       help="worker processes executing cells")
    serve.add_argument("--quota", type=int, default=256,
                       help="max queued cells per client")
    serve.add_argument("--quantum", type=float, default=120_000.0,
                       help="DRR refill per visit (reference-count units)")
    serve.add_argument("--max-entries", type=int, default=None,
                       help="store eviction bound (default: unbounded)")
    serve.add_argument("--trace-cache", default=None,
                       help="trace cache directory (default: <store>/traces)")
    serve.add_argument("--engine", choices=ENGINES, default=None,
                       help="engine for requests that name none")
    serve.add_argument("--supervised", action="store_true",
                       help="run cells under the supervised executor")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell deadline in seconds (supervised only)")
    serve.set_defaults(handler=_serve)

    submit = commands.add_parser("submit", help="submit a grid")
    submit.add_argument("--url", default="http://127.0.0.1:8753")
    submit.add_argument("--config", action="append", required=True,
                        choices=CONFIG_KINDS,
                        help="config kind; repeat for a grid")
    submit.add_argument("--benchmark", action="append", required=True,
                        help="benchmark name; repeat for a grid")
    submit.add_argument("--client", default="cli")
    submit.add_argument("--refs", type=int, default=120_000)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--warmup", type=float, default=0.4)
    submit.add_argument("--engine", choices=ENGINES, default=None)
    submit.add_argument("--telemetry", action="store_true")
    submit.add_argument("--estimate", action="store_true",
                        help="return analytical answers inline")
    submit.add_argument("--estimate-only", action="store_true",
                        help="with --estimate: skip the exact cells")
    submit.add_argument("--watch", action="store_true",
                        help="stream NDJSON events until done")
    submit.set_defaults(handler=_submit)

    stats = commands.add_parser("stats", help="server statistics")
    stats.add_argument("--url", default="http://127.0.0.1:8753")
    stats.set_defaults(handler=_stats)

    args = parser.parse_args(argv)
    if args.command == "submit" and args.estimate_only:
        args.estimate = True
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""repro.resilience — the supervised execution layer.

The process-pool engine (:mod:`repro.sim.parallel`) made grids fast;
this package makes them survivable, which is the posture a long-lived
sweep service needs: every cell execution is *bounded* (wall-clock
deadlines with SIGKILL enforcement), *recoverable* (crash/hang retry
with deterministic backoff, pool rebuilds, graceful degradation to
serial), and *verifiable* (checksummed checkpoints and trace-cache
entries, per-record seals, salvage instead of refusal, and runtime
counters for everything the supervisor did).

Entry points:

* :func:`run_cells_supervised` / :class:`SupervisorConfig` — drop-in
  supervised replacement for :func:`repro.sim.parallel.run_cells`;
  reached from ``Sweep(supervisor=...)``, ``run_matrix``'s default
  supervisor, and ``python -m repro.bench --supervised``.
* :mod:`repro.resilience.checkpoint` — checkpoint format v2 (checksum,
  record seals, v1 migration shim, structural salvage).
* :class:`FileLock` — cross-process locking for shared cache and
  checkpoint directories.
* :mod:`repro.resilience.chaos` — filesystem-driven worker kill/hang
  injection for the chaos suite (inert unless ``REPRO_CHAOS_DIR`` is
  set).

Recovered runs are bit-identical to uninterrupted ones: supervision
state lives entirely outside result payloads, and resubmitted cells
re-run the same deterministic :func:`~repro.sim.parallel.execute_cell`.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FILE_FORMAT,
    cells_checksum,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.integrity import (
    seal_record,
    strip_record,
    verify_record,
    verify_sidecar,
    write_sidecar,
)
from repro.resilience.locks import FileLock, LockTimeout

# The supervisor pulls in repro.sim.parallel, whose import chain ends
# back at repro.workloads.tracegen — which itself uses this package's
# integrity/locking primitives.  Loading the supervisor lazily (PEP
# 562) keeps that a DAG at import time while preserving
# ``from repro.resilience import run_cells_supervised``.
_SUPERVISOR_EXPORTS = ("SupervisorConfig", "backoff_s", "run_cells_supervised")


def __getattr__(name):
    if name in _SUPERVISOR_EXPORTS:
        from repro.resilience import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CHECKPOINT_FILE_FORMAT",
    "FileLock",
    "LockTimeout",
    "SupervisorConfig",
    "backoff_s",
    "cells_checksum",
    "read_checkpoint",
    "run_cells_supervised",
    "seal_record",
    "strip_record",
    "verify_record",
    "verify_sidecar",
    "write_checkpoint",
    "write_sidecar",
]

"""Cross-process file locking for shared on-disk state.

Checkpoints and the trace cache are explicitly safe to share between
concurrent sweep processes, which means two writers can race a
read-merge-write cycle.  Atomic renames already prevent *torn* files;
this module prevents *lost updates* (two processes each rewriting the
full checkpoint, last rename silently dropping the other's cells) and
duplicate work (two processes generating the same multi-megabyte trace
at once).

:class:`FileLock` is an advisory lock on a dedicated ``<path>.lock``
sidecar.  On POSIX it is ``fcntl.flock`` — automatically released by
the kernel when the holder dies, so a SIGKILLed sweep can never
deadlock the cache directory.  Where ``fcntl`` is unavailable it falls
back to ``O_CREAT | O_EXCL`` spin-locking with stale-file eviction (a
holder that died leaves a lock file behind; anything older than
``stale_s`` is broken).
"""

from __future__ import annotations

import errno
import os
import time
from typing import Optional

from repro.common.errors import ReproError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(ReproError):
    """The lock could not be acquired within the allowed wait."""


class FileLock:
    """Advisory cross-process lock; reentrant within one instance.

    Usage::

        with FileLock(path + ".lock"):
            ...read-merge-write...

    ``timeout_s=None`` waits forever (fcntl blocks natively; the
    fallback spins).  The fallback breaks locks older than ``stale_s``
    seconds on the assumption the holder died.
    """

    def __init__(
        self,
        path: str,
        timeout_s: Optional[float] = 60.0,
        poll_s: float = 0.02,
        stale_s: float = 600.0,
    ) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.stale_s = stale_s
        self._fd: Optional[int] = None
        self._depth = 0

    # --- context manager ---

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # --- acquisition ---

    def acquire(self) -> None:
        if self._depth:
            self._depth += 1
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if fcntl is not None:
            self._acquire_flock()
        else:  # pragma: no cover - non-POSIX fallback
            self._acquire_excl()
        self._depth = 1

    def release(self) -> None:
        if not self._depth:
            return
        self._depth -= 1
        if self._depth:
            return
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            try:
                os.remove(self.path)
            except OSError:
                pass

    def _acquire_flock(self) -> None:
        assert fcntl is not None
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = (
            None if self.timeout_s is None else time.monotonic() + self.timeout_s
        )
        try:
            while True:
                try:
                    if deadline is None:
                        fcntl.flock(fd, fcntl.LOCK_EX)
                    else:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError as exc:
                    if exc.errno not in (errno.EACCES, errno.EAGAIN):
                        raise
                    if deadline is not None and time.monotonic() >= deadline:
                        raise LockTimeout(
                            f"could not lock {self.path!r} within "
                            f"{self.timeout_s:g}s"
                        ) from None
                    time.sleep(self.poll_s)
        except BaseException:
            if self._fd is None:
                os.close(fd)
            raise

    def _acquire_excl(self) -> None:  # pragma: no cover - non-POSIX fallback
        deadline = (
            None if self.timeout_s is None else time.monotonic() + self.timeout_s
        )
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
                return
            except FileExistsError:
                try:
                    age = time.time() - os.stat(self.path).st_mtime
                    if age > self.stale_s:
                        os.remove(self.path)  # holder presumed dead
                        continue
                except OSError:
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {self.path!r} within {self.timeout_s:g}s"
                    ) from None
                time.sleep(self.poll_s)

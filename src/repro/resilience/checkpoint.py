"""Sweep checkpoint format v2: checksums, salvage, v1 migration.

Format v1 (PR 1) was ``{"signature": ..., "cells": ...}`` — atomic to
write, but carrying no way to *detect* corruption (a torn copy, disk
damage, a truncated download of a CI artifact) and no way to recover
from it short of deleting the file and re-running the whole grid.

Format v2 wraps the same cells in integrity metadata::

    {
      "format": 2,
      "signature": "<sweep signature sha256>",
      "checksum": "<sha256 of the canonical cells JSON>",
      "cells": {point-key: {benchmark: {"outcome": ..., "result": ...,
                                        "crc": "<sha256 of the record>"}}}
    }

Three layers of defense, used in order on load:

1. **file checksum** — cheap whole-body check; a mismatch means the
   JSON parsed but was altered, so only records whose own ``crc`` seal
   verifies are kept.
2. **record seals** — every cell record authenticates itself, so the
   salvage path can trust individual cells out of an otherwise mangled
   file instead of refusing to resume.
3. **structural salvage** — when the file is not valid JSON at all
   (truncation), a tolerant sequential parser recovers every complete,
   seal-verified record before the damage.

v1 files (and the v1-shaped files tests hand-write) stay readable: no
``format``/``checksum`` keys means the migration shim accepts the cells
as-is (counting ``checkpoint.v1_migrated``) and the next flush rewrites
the file as v2.  The sweep *signature* hash is untouched by all of
this, so a v1 checkpoint resumes under v2 with zero re-runs.

Writes are serialized with a cross-process :class:`FileLock` and
*merge* with same-signature cells already on disk, so two sweeps
sharing one checkpoint path cannot lose each other's completed cells
to a read-modify-write race (cell payloads are deterministic functions
of the signature, so merging is conflict-free by construction).
"""

from __future__ import annotations

import json
import os
import re
import warnings
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.resilience.integrity import (
    digest_bytes,
    seal_record,
    strip_record,
    verify_record,
)
from repro.resilience.locks import FileLock
from repro.telemetry.registry import StatRegistry
from repro.telemetry.runtime import runtime_registry

CHECKPOINT_FILE_FORMAT = 2

Cells = Dict[str, Dict[str, dict]]

_SIGNATURE_RE = re.compile(r'"signature"\s*:\s*"([0-9a-f]{64})"')
_FORMAT_RE = re.compile(r'"format"\s*:\s*(\d+)')


def cells_checksum(cells: Cells) -> str:
    return digest_bytes(json.dumps(cells, sort_keys=True).encode("utf-8"))


def _signature_mismatch(path: str) -> ConfigurationError:
    return ConfigurationError(
        f"checkpoint {path!r} belongs to a different sweep "
        "(signature mismatch); delete it or pick another path"
    )


def _valid_record(record: object) -> bool:
    if not isinstance(record, dict):
        return False
    outcome = record.get("outcome")
    if not isinstance(outcome, dict) or "status" not in outcome:
        return False
    return "attempts" in outcome


def _verified_cells(
    cells: Cells, registry: StatRegistry, require_seal: bool
) -> Cells:
    """Structurally valid, seal-verified records, with seals stripped."""
    kept: Cells = {}
    rejected = 0
    for point_key, benches in cells.items():
        if not isinstance(benches, dict):
            rejected += len(benches) if hasattr(benches, "__len__") else 1
            continue
        survivors = {}
        for benchmark, record in benches.items():
            if (
                _valid_record(record)
                and verify_record(record)
                and not (require_seal and "crc" not in record)
            ):
                survivors[benchmark] = strip_record(record)
            else:
                rejected += 1
        kept[point_key] = survivors
    if rejected:
        registry.add("checkpoint.record_rejected", rejected)
    return kept


def read_checkpoint(
    path: str, signature: str, registry: Optional[StatRegistry] = None
) -> Cells:
    """Completed cells from ``path``, verified and migrated as needed.

    Raises :class:`ConfigurationError` only when the file provably
    belongs to a different sweep, or is so mangled that not even its
    signature can be recovered (resuming over foreign state would be
    worse than re-running).  Every other corruption mode degrades to
    salvage: keep what verifies, warn, count, re-run the rest.
    """
    registry = registry if registry is not None else runtime_registry()
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(
            f"unreadable sweep checkpoint {path!r}: {exc}"
        ) from exc

    payload: Optional[dict] = None
    try:
        decoded = json.loads(text)
        if isinstance(decoded, dict):
            payload = decoded
    except json.JSONDecodeError:
        payload = None

    if payload is not None:
        if payload.get("signature") != signature:
            raise _signature_mismatch(path)
        cells = payload.get("cells", {})
        if not isinstance(cells, dict):
            raise ConfigurationError(f"malformed sweep checkpoint {path!r}")
        if "format" not in payload and "checksum" not in payload:
            registry.add("checkpoint.v1_migrated")
            return _verified_cells(cells, registry, require_seal=False)
        if payload.get("checksum") == cells_checksum(cells):
            return _verified_cells(cells, registry, require_seal=False)
        # Valid JSON whose body no longer matches its checksum: trust
        # only self-authenticating records.
        registry.add("checkpoint.checksum_mismatch")
        salvaged = _verified_cells(cells, registry, require_seal=True)
        _count_salvage(path, salvaged, registry)
        return salvaged

    # Not JSON at all (truncated / overwritten mid-file).
    found = _SIGNATURE_RE.search(text)
    if found is None:
        raise ConfigurationError(
            f"unreadable sweep checkpoint {path!r}: not JSON and no "
            "recoverable signature"
        )
    if found.group(1) != signature:
        raise _signature_mismatch(path)
    fmt = _FORMAT_RE.search(text)
    require_seal = bool(fmt) and int(fmt.group(1)) >= 2
    salvaged = _verified_cells(
        _salvage_cells_text(text), registry, require_seal=require_seal
    )
    _count_salvage(path, salvaged, registry)
    return salvaged


def _count_salvage(path: str, salvaged: Cells, registry: StatRegistry) -> None:
    recovered = sum(len(benches) for benches in salvaged.values())
    registry.add("checkpoint.salvaged")
    registry.add("checkpoint.salvaged_cells", recovered)
    warnings.warn(
        f"sweep checkpoint {path!r} was corrupted; salvaged {recovered} "
        "verified cells and will re-run the rest",
        RuntimeWarning,
        stacklevel=3,
    )


def write_checkpoint(
    path: str,
    signature: str,
    cells: Cells,
    registry: Optional[StatRegistry] = None,
) -> None:
    """Atomically persist ``cells`` as format v2, merged under a lock.

    Same-signature cells already on disk (another process flushing into
    the same path, or an interrupted prior run) are kept unless this
    process has its own copy of the cell; payloads are deterministic
    per signature, so the merge cannot produce conflicting values.
    """
    registry = registry if registry is not None else runtime_registry()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with FileLock(path + ".lock"):
        merged: Cells = {}
        if os.path.exists(path):
            try:
                on_disk = read_checkpoint(path, signature, registry)
            except ConfigurationError:
                on_disk = {}  # foreign or hopeless; overwrite
            for point_key, benches in on_disk.items():
                merged.setdefault(point_key, {}).update(benches)
        for point_key, benches in cells.items():
            merged.setdefault(point_key, {}).update(benches)
        sealed: Cells = {
            point_key: {
                benchmark: seal_record(record)
                for benchmark, record in benches.items()
            }
            for point_key, benches in merged.items()
        }
        payload = {
            "format": CHECKPOINT_FILE_FORMAT,
            "signature": signature,
            "checksum": cells_checksum(sealed),
            "cells": sealed,
        }
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)


# --- structural salvage of non-JSON files ---


def _skip_filler(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t\r\n,":
        i += 1
    return i


def _skip_colon(text: str, i: int) -> Optional[int]:
    i = _skip_filler(text, i)
    if i >= len(text) or text[i] != ":":
        return None
    return _skip_filler(text, i + 1)


def _salvage_cells_text(text: str) -> Cells:
    """Best-effort sequential recovery of complete cell records.

    Walks the ``"cells"`` object with a tolerant parser: every
    ``point-key -> {benchmark -> record}`` pair that decodes completely
    is kept; the first undecodable byte ends recovery (everything after
    a truncation point is gone anyway).  Records are *not* verified
    here — :func:`_verified_cells` applies structure and seal checks.
    """
    decoder = json.JSONDecoder()
    anchor = re.search(r'"cells"\s*:\s*\{', text)
    if anchor is None:
        return {}
    recovered: Cells = {}
    i = anchor.end()  # just past the '{' of the cells object
    while i < len(text):
        i = _skip_filler(text, i)
        if i >= len(text) or text[i] == "}":
            break
        try:
            point_key, j = decoder.raw_decode(text, i)
        except ValueError:
            break
        if not isinstance(point_key, str):
            break
        j2 = _skip_colon(text, j)
        if j2 is None:
            break
        benches, end, complete = _salvage_point(text, j2, decoder)
        if benches:
            recovered.setdefault(point_key, {}).update(benches)
        if not complete:
            break
        i = end
    return recovered


def _salvage_point(text: str, i: int, decoder: json.JSONDecoder):
    """Tolerantly parse one point's ``{benchmark: record}`` object."""
    if i >= len(text) or text[i] != "{":
        return {}, i, False
    i += 1
    out: Dict[str, dict] = {}
    while i < len(text):
        i = _skip_filler(text, i)
        if i >= len(text):
            return out, i, False
        if text[i] == "}":
            return out, i + 1, True
        try:
            benchmark, j = decoder.raw_decode(text, i)
            j2 = _skip_colon(text, j)
            if j2 is None or not isinstance(benchmark, str):
                return out, i, False
            record, end = decoder.raw_decode(text, j2)
        except ValueError:
            return out, i, False
        if isinstance(record, dict):
            out[benchmark] = record
        i = end
    return out, i, False

"""Supervised cell execution: bounded, recoverable, verifiable.

:func:`repro.sim.parallel.run_cells` is fast and bit-identical to
serial execution, but it trusts its workers: a hung worker stalls
``as_completed`` forever, and a worker killed by the OS (OOM, chaos)
breaks the whole pool.  This module is the supervision layer the
simulation-as-a-service roadmap item schedules onto — the same
:class:`~repro.sim.parallel.CellTask` payloads and result dictionaries,
wrapped in a parent-side supervisor that makes every cell:

* **bounded** — each attempt gets a wall-clock deadline (the cell's
  ``budget_s``, overridden by :attr:`SupervisorConfig.cell_timeout_s`);
  a worker past its deadline is SIGKILLed and the slot respawned.
  This is the *true* per-attempt budget the serial path cannot provide
  (in-process code can't be preempted; see ``CellTask.budget_s``).
* **recoverable** — a killed or crashed worker's cell is resubmitted
  unchanged (``execute_cell`` is deterministic, so the recovered run is
  bit-identical to an uninterrupted one), after an exponential backoff
  with deterministic seed-derived jitter so a thundering herd of
  retries can't re-trigger a load-correlated failure in lockstep.
  Repeated worker crashes degrade the pool to in-process serial
  execution (with a warning and a counter) rather than failing the
  grid.
* **verifiable** — every supervisor action increments a counter in
  :mod:`repro.telemetry.runtime`, kept *outside* run payloads so
  recovered results stay byte-identical to uninterrupted ones.

Cells that keep killing their worker are **quarantined**: recorded as
failed outcomes (``error_type`` ``WorkerTimeoutError`` /
``WorkerCrashError``) for isolated (sweep-style) cells, raised in the
parent for non-isolated (suite-style) ones.  Exceptions *returned* by a
worker follow :func:`~repro.sim.parallel.run_cells` semantics exactly:
isolated :class:`~repro.common.errors.ReproError` becomes a failed
payload inside the worker; anything else re-raises in the parent.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from multiprocessing import connection as mp_connection

from repro.common.errors import (
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.common.rng import derive_seed
from repro.resilience import chaos
from repro.sim.parallel import CellTask, execute_cell
from repro.telemetry.registry import StatRegistry
from repro.telemetry.runtime import runtime_registry


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for :func:`run_cells_supervised`.

    ``cell_timeout_s`` is the wall-clock deadline per dispatched
    attempt; ``None`` defers to each task's own ``budget_s`` (and a
    task with neither runs unbounded, exactly like the plain pool).
    A cell whose worker is killed (deadline or crash) more than
    ``max_worker_kills`` times is quarantined.  ``max_pool_breaks``
    worker *crashes* (not deadline kills — those are the supervisor's
    own doing) degrade the run to in-process serial execution.
    Backoff before the k-th resubmission is
    ``min(backoff_base_s * 2**(k-1), backoff_cap_s)`` plus a
    deterministic jitter of up to ``backoff_jitter`` times that value,
    derived from the task's seed and index so reruns back off
    identically.
    """

    cell_timeout_s: Optional[float] = None
    max_worker_kills: int = 2
    max_pool_breaks: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.5
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigurationError("cell_timeout_s must be positive")
        if self.max_worker_kills < 0:
            raise ConfigurationError("max_worker_kills must be >= 0")
        if self.max_pool_breaks < 1:
            raise ConfigurationError("max_pool_breaks must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff times must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")


def backoff_s(config: SupervisorConfig, task: CellTask, kills: int) -> float:
    """Delay before resubmitting ``task`` after its ``kills``-th kill.

    Deterministic: the jitter fraction comes from the task's own seed
    and index, so a re-run of the same chaos scenario schedules retries
    at identical offsets.
    """
    base = min(
        config.backoff_base_s * (2 ** max(0, kills - 1)), config.backoff_cap_s
    )
    if config.backoff_jitter == 0.0 or base == 0.0:
        return base
    raw = derive_seed(task.seed, f"supervisor-backoff/{task.index}/{kills}")
    fraction = (raw % (1 << 32)) / float(1 << 32)
    return base * (1.0 + config.backoff_jitter * fraction)


def _attempt_timeout(task: CellTask, config: SupervisorConfig) -> Optional[float]:
    """The wall-clock deadline for one dispatched attempt, in seconds."""
    if config.cell_timeout_s is not None:
        return config.cell_timeout_s
    return task.budget_s


def _worker_main(conn) -> None:
    """Long-lived worker loop: recv task, execute, send result.

    Protocol messages back to the parent: ``("ok", payload)`` for a
    completed cell (including isolated-failure payloads), ``("raise",
    exc)`` for exceptions that must propagate in the parent.  A ``None``
    task is the shutdown sentinel.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            conn.close()
            return
        try:
            chaos.probe(task.index)
            message = ("ok", execute_cell(task))
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            message = ("raise", exc)
        try:
            conn.send(message)
        except Exception:
            if message[0] == "raise":
                conn.send(
                    ("raise", SimulationError(f"worker error: {message[1]!r}"))
                )
            else:
                raise


class _Slot:
    """One worker process and its duplex pipe."""

    __slots__ = ("proc", "conn", "position", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.position: Optional[int] = None  # index into the task list
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        try:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass


def run_cells_supervised(
    tasks: Sequence[CellTask],
    jobs: int,
    config: Optional[SupervisorConfig] = None,
    callback: Optional[Callable[[Dict[str, object]], None]] = None,
    registry: Optional[StatRegistry] = None,
) -> List[Dict[str, object]]:
    """Drop-in supervised :func:`~repro.sim.parallel.run_cells`.

    Same signature contract — payloads in submission order, ``callback``
    fired in completion order — plus the supervision semantics described
    in the module docstring.  ``jobs=1`` still runs the cell in a (single)
    worker process so deadlines stay enforceable; only repeated pool
    breaks degrade to true in-process execution.
    """
    config = config or SupervisorConfig()
    registry = registry if registry is not None else runtime_registry()
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    tasks = list(tasks)
    if not tasks:
        return []

    payloads: List[Optional[Dict[str, object]]] = [None] * len(tasks)
    ready: deque = deque(range(len(tasks)))
    delayed: List = []  # heap of (ready_at, position)
    kills: Dict[int, int] = {}
    outstanding = len(tasks)
    pool_breaks = 0
    degraded = False
    slots: List[_Slot] = []
    ctx = (
        multiprocessing.get_context(config.mp_context)
        if config.mp_context
        else multiprocessing.get_context()
    )

    def spawn() -> _Slot:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        return _Slot(proc, parent_conn)

    def record(position: int, payload: Dict[str, object]) -> None:
        nonlocal outstanding
        payloads[position] = payload
        outstanding -= 1
        if callback is not None:
            callback(payload)

    def strike(slot: _Slot, cause: str) -> None:
        """Handle one dead-or-killed worker: retry, quarantine, respawn."""
        nonlocal pool_breaks, degraded
        position = slot.position
        slot.position = None
        slot.deadline = None
        slot.kill()
        registry.add(f"supervisor.{'timeouts' if cause == 'timeout' else 'crashes'}")
        if cause == "crash":
            pool_breaks += 1
        if position is not None:
            task = tasks[position]
            count = kills.get(position, 0) + 1
            kills[position] = count
            if count > config.max_worker_kills:
                registry.add("supervisor.quarantined")
                timeout = _attempt_timeout(task, config)
                if cause == "timeout":
                    error: Exception = WorkerTimeoutError(
                        task.index, timeout or 0.0, count
                    )
                else:
                    error = WorkerCrashError(task.index, count)
                if not task.isolate_errors:
                    raise error
                record(
                    position,
                    {
                        "index": task.index,
                        "outcome": {
                            "status": "failed",
                            "attempts": count,
                            "error": str(error),
                            "error_type": type(error).__name__,
                        },
                        "result": None,
                    },
                )
            else:
                registry.add("supervisor.retries")
                heapq.heappush(
                    delayed,
                    (time.monotonic() + backoff_s(config, task, count), position),
                )
        if pool_breaks >= config.max_pool_breaks and not degraded:
            degraded = True
            registry.add("supervisor.degraded")
            warnings.warn(
                f"worker pool broke {pool_breaks} times; degrading to "
                "in-process serial execution (deadlines no longer enforced)",
                RuntimeWarning,
                stacklevel=3,
            )

    def reap_expired(now: float) -> None:
        for slot in slots:
            if (
                slot.position is not None
                and slot.deadline is not None
                and now >= slot.deadline
            ):
                strike(slot, "timeout")
                if not degraded:
                    slots[slots.index(slot)] = spawn()
                    registry.add("supervisor.pool_rebuilds")

    try:
        slots = [spawn() for _ in range(min(jobs, len(tasks)))]
        while outstanding:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                ready.append(heapq.heappop(delayed)[1])

            if degraded:
                # Reclaim in-flight cells, then drain everything
                # in-process, in submission order, with run_cells'
                # serial semantics (no deadline enforcement possible).
                for slot in slots:
                    if slot.position is not None:
                        ready.append(slot.position)
                    slot.kill()
                slots = []
                remaining = sorted(
                    set(ready) | {position for _, position in delayed}
                )
                ready.clear()
                delayed.clear()
                for position in remaining:
                    record(position, execute_cell(tasks[position]))
                break

            # Dispatch ready cells onto idle workers.
            for index, slot in enumerate(slots):
                if slot.position is None and ready:
                    position = ready.popleft()
                    try:
                        slot.conn.send(tasks[position])
                    except (OSError, ValueError):
                        # Worker died while idle; respawn and retry the
                        # dispatch next iteration.
                        ready.appendleft(position)
                        strike(slot, "crash")
                        if not degraded:
                            slots[index] = spawn()
                            registry.add("supervisor.pool_rebuilds")
                        continue
                    slot.position = position
                    timeout = _attempt_timeout(tasks[position], config)
                    slot.deadline = (
                        None if timeout is None else time.monotonic() + timeout
                    )
            if degraded:
                continue

            busy = [slot for slot in slots if slot.position is not None]
            if not busy:
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue

            horizons = [s.deadline for s in busy if s.deadline is not None]
            if delayed:
                horizons.append(delayed[0][0])
            wait_timeout = (
                None
                if not horizons
                else max(0.0, min(horizons) - time.monotonic()) + 0.005
            )
            ready_conns = mp_connection.wait(
                [slot.conn for slot in busy], timeout=wait_timeout
            )
            for conn in ready_conns:
                slot = next(s for s in slots if s.conn is conn)
                try:
                    kind, value = conn.recv()
                except (EOFError, OSError):
                    strike(slot, "crash")
                    if not degraded:
                        slots[slots.index(slot)] = spawn()
                        registry.add("supervisor.pool_rebuilds")
                    continue
                if kind == "ok":
                    position = slot.position
                    slot.position = None
                    slot.deadline = None
                    kills.pop(position, None)
                    record(position, value)  # type: ignore[arg-type]
                else:
                    raise value
            reap_expired(time.monotonic())
    finally:
        for slot in slots:
            if slot.position is None and slot.proc.is_alive():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
            slot.kill()
    return payloads  # type: ignore[return-value]

"""Deterministic fault injection for the execution harness itself.

:mod:`repro.faults` injects faults into the *simulated machine*; this
module injects faults into the *harness* — worker processes that die
mid-cell or hang forever — so the chaos suite can prove the supervisor
recovers from them.  Injection is driven entirely through the
filesystem so it crosses process boundaries under every multiprocessing
start method:

* set ``REPRO_CHAOS_DIR`` to a directory;
* drop flag files into it: ``kill-<index>`` makes the worker SIGKILL
  itself just before running cell ``index``; ``hang-<index>`` makes it
  sleep far past any reasonable deadline (so the supervisor's timeout
  kill fires);
* each flag file holds a repeat count (empty = 1) and is consumed one
  unit per trigger, so "die once then succeed" and "hang every
  attempt" are both expressible and fully deterministic.

With the environment variable unset — every production run — the probe
is a single ``os.environ.get`` returning None; no filesystem traffic,
no overhead.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

CHAOS_ENV = "REPRO_CHAOS_DIR"
HANG_ENV = "REPRO_CHAOS_HANG_S"
DEFAULT_HANG_S = 3600.0


def chaos_dir() -> Optional[str]:
    """The active chaos directory, or None (the production default)."""
    return os.environ.get(CHAOS_ENV) or None


def _consume(directory: str, name: str) -> bool:
    """Take one unit from a flag file; True if the flag was armed.

    The file's content is its remaining trigger count (blank = 1); the
    last unit removes the file.  Only one worker ever owns a given cell
    index at a time, so no cross-process locking is needed.
    """
    path = os.path.join(directory, name)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read().strip()
    except OSError:
        return False
    count = int(raw) if raw else 1
    if count <= 1:
        try:
            os.remove(path)
        except OSError:
            pass
    else:
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(str(count - 1))
        os.replace(tmp, path)
    return count > 0


def probe(index: int) -> None:
    """Fire any armed chaos for this cell index (worker-side hook)."""
    directory = chaos_dir()
    if directory is None:
        return
    if _consume(directory, f"hang-{index}"):
        time.sleep(float(os.environ.get(HANG_ENV) or DEFAULT_HANG_S))
    if _consume(directory, f"kill-{index}"):
        os.kill(os.getpid(), signal.SIGKILL)


# --- test-side helpers ---


def inject_kill(directory: str, index: int, times: int = 1) -> str:
    """Arm a SIGKILL for the next ``times`` attempts of cell ``index``."""
    return _arm(directory, f"kill-{index}", times)


def inject_hang(directory: str, index: int, times: int = 1) -> str:
    """Arm a hang for the next ``times`` attempts of cell ``index``."""
    return _arm(directory, f"hang-{index}", times)


def _arm(directory: str, name: str, times: int) -> str:
    if times < 1:
        raise ValueError(f"times must be >= 1, got {times}")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(times))
    return path

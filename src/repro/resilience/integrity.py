"""Content checksums for on-disk artifacts.

Two flavors:

* **file sidecars** — a ``<file>.sha256`` next to a binary artifact
  (trace-cache ``.npz`` entries) holding the hex digest of the file's
  bytes.  A torn, truncated, or bit-rotted file is detected on load
  without trying to parse it.
* **record seals** — a ``"crc"`` field embedded in each checkpoint cell
  record, covering the record's canonical JSON.  The checkpoint salvage
  path uses these to authenticate individual cells out of a corrupted
  file: a record that parses but fails its seal is dropped rather than
  trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

SIDECAR_SUFFIX = ".sha256"
RECORD_CRC_KEY = "crc"


def digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def digest_file(path: str) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            sha.update(chunk)
    return sha.hexdigest()


def sidecar_path(path: str) -> str:
    return path + SIDECAR_SUFFIX


def write_sidecar(path: str) -> str:
    """Write ``<path>.sha256`` atomically; returns the sidecar path."""
    digest = digest_file(path)
    target = sidecar_path(path)
    tmp = f"{target}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(digest + "\n")
    os.replace(tmp, target)
    return target


def read_sidecar(path: str) -> Optional[str]:
    """The recorded digest for ``path``, or None if no sidecar exists."""
    try:
        with open(sidecar_path(path), "r", encoding="utf-8") as handle:
            return handle.read().strip() or None
    except OSError:
        return None


def verify_sidecar(path: str) -> Optional[bool]:
    """True/False when a sidecar exists and (mis)matches; None without one.

    A missing sidecar is *not* a failure: artifacts written before
    checksums existed stay readable, they just don't get integrity
    protection until rewritten.
    """
    recorded = read_sidecar(path)
    if recorded is None:
        return None
    try:
        return digest_file(path) == recorded
    except OSError:
        return False


def remove_sidecar(path: str) -> None:
    try:
        os.remove(sidecar_path(path))
    except OSError:
        pass


# --- record seals ---


def _canonical(record: Dict[str, object]) -> bytes:
    body = {k: v for k, v in record.items() if k != RECORD_CRC_KEY}
    return json.dumps(body, sort_keys=True).encode("utf-8")


def seal_record(record: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``record`` carrying its own content checksum."""
    sealed = dict(record)
    sealed[RECORD_CRC_KEY] = digest_bytes(_canonical(record))
    return sealed


def verify_record(record: Dict[str, object]) -> bool:
    """True when the record has no seal (legacy) or the seal matches."""
    recorded = record.get(RECORD_CRC_KEY)
    if recorded is None:
        return True
    return recorded == digest_bytes(_canonical(record))


def strip_record(record: Dict[str, object]) -> Dict[str, object]:
    """The record without its seal (for consumers and comparisons)."""
    if RECORD_CRC_KEY not in record:
        return record
    return {k: v for k, v in record.items() if k != RECORD_CRC_KEY}

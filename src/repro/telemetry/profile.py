"""Lightweight wall-clock phase profiling for the simulator itself.

Answers "where does *simulator* time go" (not simulated cycles): the
driver brackets its phases — trace generation, system build, warmup
replay, measured replay — and ``repro.bench`` renders the attribution
next to its timings.  Phases nest; a phase's ``own`` time excludes its
children so the tree sums cleanly.

Profiling is wall-clock and therefore **non-deterministic**: its
output lives in a separate ``profile`` section of the run payload that
reports exclude by default, keeping merged telemetry reports
byte-identical across worker counts (the registry/trace sections are
the deterministic ones).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.common.errors import ConfigurationError


class PhaseProfiler:
    """Nesting wall-clock timers keyed by phase name."""

    def __init__(self) -> None:
        #: path -> [total_seconds, entry_count]; path joins nested
        #: phase names with '/'.
        self._acc: Dict[str, List[float]] = {}
        self._stack: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a (possibly nested) phase: ``with profiler.phase("x"):``."""
        if "/" in name:
            raise ConfigurationError(f"phase name must not contain '/': {name!r}")
        self._stack.append(name)
        path = "/".join(self._stack)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            slot = self._acc.setdefault(path, [0.0, 0])
            slot[0] += elapsed
            slot[1] += 1
            self._stack.pop()

    def seconds(self, path: str) -> float:
        return self._acc.get(path, [0.0, 0])[0]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe per-phase totals with child time separated out.

        ``own`` is the phase's time minus its direct children's, so
        sums over a level never double-count.
        """
        result: Dict[str, Dict[str, float]] = {}
        for path, (total, count) in sorted(self._acc.items()):
            children = sum(
                t
                for p, (t, _) in self._acc.items()
                if p.startswith(f"{path}/") and "/" not in p[len(path) + 1 :]
            )
            result[path] = {
                "seconds": total,
                "own_seconds": max(0.0, total - children),
                "count": count,
            }
        return result


def format_profile(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Aligned-text rendering of :meth:`PhaseProfiler.summary`."""
    if not summary:
        return "(no profile data)"
    width = max(len(path) for path in summary)
    lines = [f"{'phase':<{width}}  {'total_s':>9}  {'own_s':>9}  {'calls':>6}"]
    for path, row in summary.items():
        indent = "  " * path.count("/")
        label = indent + path.rsplit("/", 1)[-1]
        lines.append(
            f"{label:<{width}}  {row['seconds']:>9.3f}  "
            f"{row['own_seconds']:>9.3f}  {int(row['count']):>6}"
        )
    return "\n".join(lines)


class NullProfiler:
    """No-op stand-in so call sites need no None checks in loops."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        del name
        yield

    def seconds(self, path: str) -> float:
        del path
        return 0.0

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {}


def profiler_or_null(enabled: bool) -> "PhaseProfiler | NullProfiler":
    return PhaseProfiler() if enabled else NullProfiler()

"""CLI: render merged telemetry reports and summarize JSONL traces.

    python -m repro.telemetry report out/run.json sweep_checkpoint.json
    python -m repro.telemetry report out/*.json --profile
    python -m repro.telemetry trace out/traces/nurapid__art__s1.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.telemetry.report import report_from_files
from repro.telemetry.trace import read_trace, trace_summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Render telemetry reports and trace summaries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="merge payloads from run/sweep JSON files and render"
    )
    report.add_argument("files", nargs="+", help="RunResult JSON, sweep checkpoint, or raw payload")
    report.add_argument(
        "--profile",
        action="store_true",
        help="include wall-clock profile sections (non-deterministic)",
    )

    trace = sub.add_parser("trace", help="summarize a JSONL event trace")
    trace.add_argument("file")

    args = parser.parse_args(argv)
    try:
        if args.command == "report":
            print(report_from_files(args.files, include_profile=args.profile))
        else:
            events = read_trace(args.file)
            meta = next((e for e in events if e.get("kind") == "meta"), None)
            if meta is not None:
                print(
                    f"events seen={meta.get('seen')} kept={meta.get('kept')} "
                    f"dropped={meta.get('dropped')} sample={meta.get('sample')} "
                    f"ring={meta.get('ring')}"
                )
            for kind, count in trace_summary(events).items():
                print(f"{kind:<14} {count}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Hierarchical stat registry: named scopes, counters, and histograms.

The registry is the aggregation backbone of :mod:`repro.telemetry`.
Every stat lives under a dotted path (``l2.dg0.hits``); producers hold
a :class:`Scope` (a prefix view onto the shared registry) so a cache
never has to know where in the hierarchy it was mounted.  Two
invariants make distributed collection safe:

* **int-exact counters** — integer increments accumulate as Python
  ints, so counters never drift through float rounding and any
  partition of the increments merges back to the serial total exactly
  (the same guarantee :class:`repro.common.stats.Counter` gives).
* **lossless merge** — :meth:`StatRegistry.merge` adds counters and
  bucket counts; merging per-worker registries from
  :mod:`repro.sim.parallel` in a deterministic order reproduces a
  serial run's registry bit for bit.

Histograms use fixed, explicit bucket bounds chosen at creation time
(access latency, reuse distance, MSHR occupancy each have a canonical
set below), so two registries built from the same code always agree on
bucketing and merge without resampling.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Canonical bucket bounds (upper edges, inclusive) for cache access
#: latencies in cycles.  Spans L1 hits through memory round trips.
LATENCY_BOUNDS: Tuple[float, ...] = (
    4, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128, 192, 256, 384, 512,
)

#: Canonical bounds for inter-access (reuse) distance, measured in
#: accesses at the observing cache.  Log-spaced: reuse behaviour is
#: heavy-tailed.
REUSE_BOUNDS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144,
)


def occupancy_bounds(capacity: int) -> Tuple[float, ...]:
    """One bucket per occupancy level for a structure of ``capacity``."""
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    return tuple(float(level) for level in range(capacity + 1))


class Histogram:
    """Fixed-bucket histogram with lossless merge.

    ``bounds`` are strictly increasing upper edges (inclusive); one
    extra overflow bucket catches values above the last edge.  Bucket
    counts are int-exact under integer weights, so merge is associative
    and commutative; ``sum`` accumulates the raw values for the mean.
    """

    __slots__ = ("bounds", "counts", "n", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ConfigurationError(f"bounds must be strictly increasing: {edges}")
        self.bounds = edges
        self.counts: List[float] = [0] * (len(edges) + 1)
        self.n: float = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float, weight: float = 1) -> None:
        if weight < 0:
            raise ConfigurationError(f"weight must be non-negative, got {weight}")
        index = bisect_left(self.bounds, value)
        self.counts[index] += weight
        self.n += weight
        self.sum += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile sample.

        Bucket-resolution only — exact enough for reports; the
        overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.n:
            return 0.0
        target = q * self.n
        seen: float = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.n += other.n
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (lists, not tuples, for round-trip equality)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "n": self.n,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Histogram":
        try:
            hist = cls(payload["bounds"])  # type: ignore[arg-type]
            counts = list(payload["counts"])  # type: ignore[arg-type]
            if len(counts) != len(hist.counts):
                raise ValueError(
                    f"expected {len(hist.counts)} buckets, got {len(counts)}"
                )
            hist.counts = counts
            hist.n = payload["n"]  # type: ignore[assignment]
            hist.sum = payload["sum"]  # type: ignore[assignment]
            hist.min = payload.get("min")  # type: ignore[assignment]
            hist.max = payload.get("max")  # type: ignore[assignment]
            return hist
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed histogram payload: {exc}") from exc

    def __repr__(self) -> str:
        return f"Histogram(n={self.n}, mean={self.mean:.3g})"


class Scope:
    """A dotted-prefix view onto a registry; producers hold these."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "StatRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def path(self) -> str:
        return self._prefix.rstrip(".")

    def scope(self, name: str) -> "Scope":
        return Scope(self._registry, f"{self._prefix}{name}.")

    def add(self, name: str, amount: float = 1) -> None:
        self._registry.add(f"{self._prefix}{name}", amount)

    def get(self, name: str) -> float:
        return self._registry.get(f"{self._prefix}{name}")

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._registry.histogram(f"{self._prefix}{name}", bounds)


class StatRegistry:
    """All of one run's (or one merged report's) counters + histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- producers ---

    def scope(self, name: str) -> Scope:
        if not name:
            raise ConfigurationError("scope name must be non-empty")
        return Scope(self, f"{name}.")

    def add(self, name: str, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be non-negative, got {amount}"
            )
        self._counters[name] = self._counters.get(name, 0) + amount

    def set(self, name: str, value: float) -> None:
        """Overwrite a gauge-style value (end-of-run censuses)."""
        self._counters[name] = value

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Fetch-or-create; re-requesting must agree on bounds."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(bounds)
            self._histograms[name] = hist
        elif hist.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} already exists with different bounds"
            )
        return hist

    # --- consumers ---

    def get(self, name: str) -> float:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Counters under ``prefix``, sorted by name."""
        return {
            name: value
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        return {
            name: hist
            for name, hist in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def prefixes(self, depth: int = 1) -> List[str]:
        """Distinct scope prefixes at ``depth`` dotted components."""
        seen = set()
        for name in list(self._counters) + list(self._histograms):
            parts = name.split(".")
            if len(parts) > depth:
                seen.add(".".join(parts[:depth]))
        return sorted(seen)

    # --- merge + serialization ---

    def merge(self, other: "StatRegistry") -> None:
        """Lossless add of another registry (per-worker aggregation)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = Histogram.from_dict(hist.to_dict())
            else:
                mine.merge(hist)

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StatRegistry":
        try:
            registry = cls()
            for name, value in dict(payload.get("counters", {})).items():  # type: ignore[arg-type]
                registry._counters[str(name)] = value
            for name, hist in dict(payload.get("histograms", {})).items():  # type: ignore[arg-type]
                registry._histograms[str(name)] = Histogram.from_dict(hist)
            return registry
        except (AttributeError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed registry payload: {exc}") from exc

    @classmethod
    def merged(cls, payloads: Iterable[Mapping[str, object]]) -> "StatRegistry":
        """Merge serialized registries; feed in a deterministic order."""
        registry = cls()
        for payload in payloads:
            registry.merge(cls.from_dict(payload))
        return registry

"""repro.telemetry — tracing, metrics, and profiling for the simulator.

The paper's headline claims are distributional (per-d-group access
breakdowns, energy split across d-groups, promotion/demotion churn),
but flat end-of-run counters can't show *why* a configuration wins.
This package is the unified instrumentation layer:

* :mod:`~repro.telemetry.registry` — hierarchical stat registry with
  named scopes (``l2.dg0.hits``), int-exact counters, and fixed-bucket
  histograms (hit latency, reuse distance, MSHR occupancy), all with
  lossless ``merge()`` so per-worker stats aggregate bit-identically
  to a serial run;
* :mod:`~repro.telemetry.trace` — sampled, bounded JSONL event streams
  (placement / demotion / promotion / writeback / fault-retire) with a
  ring-buffer mode and atomic flush;
* :mod:`~repro.telemetry.profile` — wall-clock phase timers so
  ``repro.bench`` can attribute *simulator* time;
* :mod:`~repro.telemetry.report` — the merged per-d-group
  latency/energy/occupancy report (``python -m repro.telemetry``).

Telemetry is **opt-in**: pass a :class:`TelemetryConfig` to
``run_benchmark`` / ``run_suite`` / ``Sweep`` / ``run_matrix``.  With
the default ``None``, the only residue on the hot path is a handful of
``is not None`` guards — the null sink — whose overhead the perf
baseline (``python -m repro.bench --max-regression``) polices.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.telemetry.profile import NullProfiler, PhaseProfiler, profiler_or_null
from repro.telemetry.registry import (
    LATENCY_BOUNDS,
    REUSE_BOUNDS,
    Histogram,
    Scope,
    StatRegistry,
    occupancy_bounds,
)
from repro.telemetry.runtime import (
    reset_runtime_registry,
    runtime_counters,
    runtime_registry,
)
from repro.telemetry.trace import EventTracer, read_trace, trace_summary

__all__ = [
    "CacheTelemetry",
    "EventTracer",
    "Histogram",
    "LATENCY_BOUNDS",
    "NullProfiler",
    "PhaseProfiler",
    "REUSE_BOUNDS",
    "Scope",
    "StatRegistry",
    "Telemetry",
    "TelemetryConfig",
    "occupancy_bounds",
    "profiler_or_null",
    "read_trace",
    "reset_runtime_registry",
    "runtime_counters",
    "runtime_registry",
    "telemetry_from_env",
    "trace_summary",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect; frozen and picklable so it ships to workers.

    ``enabled=False`` (or passing ``None`` where a config is accepted)
    is the null sink: no registry, no tracer, no profiler are created
    and instrumented code sees ``telemetry is None``.
    """

    enabled: bool = True
    #: Collect structural events (placement/demotion/promotion/...).
    events: bool = False
    #: Flush collected events as JSONL under this directory (implies
    #: ``events``); one file per run, named from config/benchmark/seed.
    trace_dir: Optional[str] = None
    #: Keep every Nth event.
    trace_sample: int = 1
    #: Maximum kept events (None: unbounded — test-sized runs only).
    trace_limit: Optional[int] = 100_000
    #: True: the *last* ``trace_limit`` events survive instead of the first.
    trace_ring: bool = False
    #: Wall-clock phase timers (non-deterministic; reports exclude it
    #: by default so merged reports stay byte-identical).
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trace_sample < 1:
            raise ConfigurationError(
                f"trace_sample must be >= 1, got {self.trace_sample}"
            )
        if self.trace_limit is not None and self.trace_limit < 1:
            raise ConfigurationError(
                f"trace_limit must be >= 1, got {self.trace_limit}"
            )

    @property
    def events_enabled(self) -> bool:
        return self.events or self.trace_dir is not None

    def fingerprint(self) -> Dict[str, object]:
        """Stable identity for cache keys and sweep signatures."""
        return asdict(self)


def telemetry_from_env(value: Optional[str]) -> Optional[TelemetryConfig]:
    """Parse the ``REPRO_TELEMETRY`` convention.

    Empty/``0``/``off`` → None (null sink); ``1``/``on``/``true`` →
    histograms only; any other value is a directory to flush JSONL
    traces into.
    """
    if value is None:
        return None
    value = value.strip()
    if not value or value.lower() in ("0", "off", "false"):
        return None
    if value.lower() in ("1", "on", "true"):
        return TelemetryConfig()
    return TelemetryConfig(trace_dir=value, events=True)


class CacheTelemetry:
    """One cache's telemetry client: hot-path hooks only.

    Caches hold ``self.telemetry = None`` by default and guard every
    call site with ``is not None`` — attaching one of these is what
    turns collection on.  The client pre-resolves its histograms so
    the per-access work is two dict operations and two records.
    """

    __slots__ = ("name", "scope", "tracer", "hit_latency", "reuse", "_last_seen", "_accesses")

    def __init__(self, name: str, scope: Scope, tracer: Optional[EventTracer]) -> None:
        self.name = name
        self.scope = scope
        self.tracer = tracer
        self.hit_latency = scope.histogram("hit_latency", LATENCY_BOUNDS)
        self.reuse = scope.histogram("reuse_distance", REUSE_BOUNDS)
        self._last_seen: Dict[int, int] = {}
        self._accesses = 0

    def on_access(
        self,
        block_addr: int,
        hit: bool,
        dgroup: Optional[int],
        latency: float,
    ) -> None:
        """Record one access: reuse distance, latency, per-d-group hit."""
        self._accesses += 1
        last = self._last_seen.get(block_addr)
        if last is not None:
            self.reuse.record(self._accesses - last)
        self._last_seen[block_addr] = self._accesses
        if hit:
            self.hit_latency.record(latency)
            if dgroup is None:
                self.scope.add("hits")
            else:
                self.scope.add(f"dg{dgroup}.hits")
        else:
            self.scope.add("misses")

    def event(self, kind: str, **fields: object) -> None:
        """Offer a structural event to the run's tracer (if any)."""
        if self.tracer is not None:
            self.tracer.emit(kind, cache=self.name, **fields)


class Telemetry:
    """One run's collection session: registry + tracer + profiler."""

    def __init__(self, config: TelemetryConfig, run_id: str) -> None:
        if not config.enabled:
            raise ConfigurationError(
                "Telemetry session for a disabled config; pass None instead"
            )
        self.config = config
        self.run_id = run_id
        self.registry = StatRegistry()
        self.tracer: Optional[EventTracer] = (
            EventTracer(
                sample=config.trace_sample,
                limit=config.trace_limit,
                ring=config.trace_ring,
            )
            if config.events_enabled
            else None
        )
        self.profiler = profiler_or_null(config.profile)

    def cache_client(self, name: str) -> CacheTelemetry:
        return CacheTelemetry(name, self.registry.scope(name), self.tracer)

    def histogram(self, name: str, bounds: Tuple[float, ...]) -> Histogram:
        return self.registry.histogram(name, bounds)

    # --- end-of-run captures (deterministic gauges) ---

    def capture_counters(self, name: str, counts: Dict[str, float]) -> None:
        """Adopt a cache's flat counters under its scope."""
        for key, value in sorted(counts.items()):
            self.registry.set(f"{name}.{key}", value)

    def capture_energy(self, name: str, book) -> None:
        """Per-operation energy totals (nJ) from an EnergyBook."""
        prefix = f"{name}."
        for op, nj in sorted(book.breakdown_nj().items()):
            label = op[len(prefix):] if op.startswith(prefix) else op
            self.registry.set(f"{name}.energy_nj.{label}", nj)

    def capture_gauge(self, name: str, value: float) -> None:
        self.registry.set(name, value)

    # --- payload ---

    def trace_filename(self) -> str:
        return self.run_id.replace("/", "__").replace(" ", "_") + ".jsonl"

    def flush_trace(self) -> Optional[str]:
        """Write the JSONL trace if a trace_dir was configured."""
        if self.tracer is None or self.config.trace_dir is None:
            return None
        path = os.path.join(self.config.trace_dir, self.trace_filename())
        return self.tracer.flush(path)

    def payload(self, trace_path: Optional[str] = None) -> Dict[str, object]:
        """The run's JSON-safe telemetry record.

        The ``registry`` and ``trace`` sections are deterministic
        functions of the simulation; ``profile`` (wall-clock) is only
        present when profiling was requested.
        """
        record: Dict[str, object] = {
            "run": self.run_id,
            "registry": self.registry.to_dict(),
        }
        if self.tracer is not None:
            trace = self.tracer.summary()
            if trace_path is not None:
                trace["path"] = trace_path
            record["trace"] = trace
        if self.config.profile:
            record["profile"] = self.profiler.summary()
        return record

"""Sampled, bounded JSONL event tracing.

Caches emit structural events — placement, demotion, promotion,
writeback, fault-retire — through an :class:`EventTracer`.  Tracing a
full run would dwarf the simulation itself, so the tracer is bounded
three ways:

* **sampling** — keep every ``sample``-th event (per tracer, counted
  over all kinds, so the kept stream is a deterministic decimation);
* **head bounding** — with ``ring=False`` the first ``limit`` kept
  events are stored and the rest only counted (``dropped``);
* **ring buffer** — with ``ring=True`` the *last* ``limit`` kept
  events survive, which is the mode for "what led up to the crash".

``flush()`` writes JSON Lines atomically (temp file + ``os.replace``,
the same pattern the sweep checkpoint uses) so a reader never sees a
torn trace.  Every event carries ``seq`` — its position in the *full*
event stream — so sampled or truncated traces still order and align
across caches.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional

from repro.common.errors import ConfigurationError

#: Event kinds the caches emit; tracers accept any kind, this is the
#: vocabulary instrumentation uses (and reports group by).
EVENT_KINDS = (
    "placement",
    "demotion",
    "promotion",
    "writeback",
    "eviction",
    "fault_retire",
)


class EventTracer:
    """Collects simulator events under a sampling + bounding policy."""

    def __init__(
        self,
        sample: int = 1,
        limit: Optional[int] = 100_000,
        ring: bool = False,
    ) -> None:
        if sample < 1:
            raise ConfigurationError(f"sample must be >= 1, got {sample}")
        if limit is not None and limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        self.sample = sample
        self.limit = limit
        self.ring = ring
        self._events: Deque[Dict[str, object]] = deque(
            maxlen=limit if ring else None
        )
        #: All events offered, before sampling or bounding.
        self.seen = 0
        #: Events that passed sampling but were dropped by the head bound
        #: (head mode) or displaced out of the ring (ring mode).
        self.dropped = 0
        self.per_kind: Dict[str, int] = {}

    def emit(self, kind: str, **fields: object) -> None:
        """Offer one event; cheap when sampled out."""
        self.seen += 1
        self.per_kind[kind] = self.per_kind.get(kind, 0) + 1
        if (self.seen - 1) % self.sample:
            return
        if self.ring:
            if self.limit is not None and len(self._events) == self.limit:
                self.dropped += 1
        elif self.limit is not None and len(self._events) >= self.limit:
            self.dropped += 1
            return
        event: Dict[str, object] = {"seq": self.seen, "kind": kind}
        event.update(fields)
        self._events.append(event)

    def events(self) -> List[Dict[str, object]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> Dict[str, object]:
        """Bounding bookkeeping for the run payload (JSON-safe)."""
        return {
            "seen": self.seen,
            "kept": len(self._events),
            "dropped": self.dropped,
            "sample": self.sample,
            "ring": self.ring,
            "per_kind": dict(sorted(self.per_kind.items())),
        }

    def flush(self, path: str) -> str:
        """Atomically write the kept events as JSON Lines; returns path.

        The first line is a ``meta`` record carrying the bounding
        summary, so a truncated trace is self-describing.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "meta", **self.summary()}, sort_keys=True)
            )
            handle.write("\n")
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path


def read_trace(path: str) -> List[Dict[str, object]]:
    """Load a JSONL trace written by :meth:`EventTracer.flush`."""
    events = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable trace {path!r}: {exc}") from exc
    return events


def trace_summary(events: Iterable[Mapping[str, object]]) -> Dict[str, int]:
    """Event counts by kind for a loaded trace (meta line excluded)."""
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        if kind == "meta":
            continue
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))

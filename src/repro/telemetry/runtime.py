"""Process-global counters for the execution harness itself.

Run telemetry (:class:`~repro.telemetry.TelemetryConfig` payloads) is a
deterministic function of the simulated machine, merged bit-identically
across workers — so nothing *environmental* may leak into it.  But the
supervised executor and the on-disk caches still need to account for
what happened around the simulation: worker kills, retries, salvaged
checkpoints, regenerated trace-cache entries.  Those events land here,
in a process-wide :class:`~repro.telemetry.registry.StatRegistry` that
is reported separately from run payloads and never checkpointed.

Counters used by the resilience layer:

* ``supervisor.timeouts`` / ``supervisor.crashes`` — worker kills, by cause
* ``supervisor.retries`` — cells resubmitted after a kill
* ``supervisor.quarantined`` — cells failed after repeated kills
* ``supervisor.pool_rebuilds`` — worker slots respawned
* ``supervisor.degraded`` — fall-backs to in-process serial execution
* ``checkpoint.v1_migrated`` — legacy checkpoints read through the shim
* ``checkpoint.salvaged`` / ``checkpoint.salvaged_cells`` — corrupted
  checkpoints partially recovered, and how many cells survived
* ``checkpoint.record_rejected`` — cells dropped by a per-record checksum
* ``trace_cache.corrupt_recovered`` — cache entries regenerated after a
  failed load or checksum mismatch

Counters used by the simulation service (:mod:`repro.service`):

* ``service.jobs_submitted`` / ``service.cells_submitted`` — admitted work
* ``service.cells_memo_hits`` — cells served from the result store
* ``service.cells_coalesced`` — cells merged onto an identical
  in-flight cell from another job
* ``service.cells_enqueued`` / ``service.cells_completed`` /
  ``service.cells_failed`` — cells that actually simulated, by outcome
* ``service.estimates`` — analytical (``approx``) answers served inline
* ``service.pool_rebuilds`` / ``service.executor_errors`` — worker-pool
  deaths and surfaced simulator errors
* ``result_store.hits`` / ``result_store.misses`` /
  ``result_store.writes`` / ``result_store.evicted`` — content-addressed
  result-store traffic
* ``result_store.corrupt_recovered`` — entries that failed their sha256
  sidecar, were discarded, and forced a recompute
"""

from __future__ import annotations

from typing import Dict

from repro.telemetry.registry import StatRegistry

_runtime = StatRegistry()


def runtime_registry() -> StatRegistry:
    """The process-wide harness-event registry."""
    return _runtime


def reset_runtime_registry() -> StatRegistry:
    """Fresh registry (tests isolate themselves with this)."""
    global _runtime
    _runtime = StatRegistry()
    return _runtime


def runtime_counters() -> Dict[str, float]:
    """Flat snapshot of the harness counters (empty when nothing fired)."""
    return _runtime.counters()

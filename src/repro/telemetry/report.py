"""Merged telemetry reports: per-d-group latency, energy, occupancy.

Takes one or more telemetry payloads — from a ``RunResult`` JSON, a
sweep checkpoint, or a raw session payload — merges their registries
**in sorted key order** (so a serial run and a ``jobs=N`` run of the
same grid render byte-identical reports), and renders:

* a per-d-group table per cache: hits, access share, energy, occupancy;
* the d-group access distribution as the stacked-bar chart the
  experiment figures use (:mod:`repro.experiments.render`);
* histogram summaries (hit latency, reuse distance, MSHR occupancy);
* the full counter dump.

Profile (wall-clock) sections are excluded unless asked for, since
they are non-deterministic by nature.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.telemetry.profile import format_profile
from repro.telemetry.registry import Histogram, StatRegistry

_DG_COUNTER = re.compile(r"^(?P<cache>.+)\.dg(?P<group>\d+)\.(?P<what>hits|frames)$")
_PORT_GAUGE = re.compile(
    r"^(?P<cache>.+)\.(?P<kind>port|bankq)\."
    r"(?P<what>banks|busy_cycles|wait_cycles|grants)$"
)


def extract_payloads(document: Mapping[str, object]) -> List[Tuple[str, Dict[str, object]]]:
    """(key, telemetry-payload) pairs from any supported JSON document.

    Supported shapes: a raw session payload (has ``registry``), a
    ``RunResult`` dict (has ``telemetry``), a sweep checkpoint (has
    ``cells``), and a ``{"runs": {...}}`` suite dump.  Keys are stable
    identifiers used only for deterministic merge ordering.
    """
    pairs: List[Tuple[str, Dict[str, object]]] = []
    if "registry" in document:
        pairs.append((str(document.get("run", "run")), dict(document)))  # type: ignore[arg-type]
    elif "telemetry" in document and document["telemetry"] is not None:
        key = f"{document.get('config_name', '?')}/{document.get('benchmark', '?')}"
        pairs.append((key, dict(document["telemetry"])))  # type: ignore[arg-type]
    elif "cells" in document:
        for point_key, benchmarks in sorted(dict(document["cells"]).items()):  # type: ignore[arg-type]
            for benchmark, cell in sorted(dict(benchmarks).items()):
                result = cell.get("result") if isinstance(cell, dict) else None
                if result and result.get("telemetry"):
                    pairs.append((f"{point_key}/{benchmark}", dict(result["telemetry"])))
    elif "runs" in document:
        for benchmark, run in sorted(dict(document["runs"]).items()):  # type: ignore[arg-type]
            if isinstance(run, dict) and run.get("telemetry"):
                pairs.append((str(benchmark), dict(run["telemetry"])))
    if not pairs:
        raise ConfigurationError(
            "document holds no telemetry payloads (was the run telemetry-enabled?)"
        )
    return pairs


def load_payloads(paths: Sequence[str]) -> List[Tuple[str, Dict[str, object]]]:
    pairs: List[Tuple[str, Dict[str, object]]] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable telemetry file {path!r}: {exc}") from exc
        if not isinstance(document, dict):
            raise ConfigurationError(f"{path!r} is not a JSON object")
        for key, payload in extract_payloads(document):
            pairs.append((f"{path}:{key}", payload))
    return pairs


def merge_payloads(pairs: Sequence[Tuple[str, Mapping[str, object]]]) -> StatRegistry:
    """Merge registries in sorted key order (worker-count invariant)."""
    registry = StatRegistry()
    for _, payload in sorted(pairs, key=lambda pair: pair[0]):
        section = payload.get("registry")
        if section is None:
            raise ConfigurationError("payload has no registry section")
        registry.merge(StatRegistry.from_dict(section))  # type: ignore[arg-type]
    return registry


# --- per-d-group aggregation ---


def dgroup_caches(registry: StatRegistry) -> Dict[str, List[int]]:
    """Caches with per-d-group counters, with their group indices.

    A group counts if it recorded hits *or* reported frames, so the
    table still shows the occupancy of groups a short run never hit.
    """
    caches: Dict[str, set] = {}
    for name in registry.counters():
        match = _DG_COUNTER.match(name)
        if match:
            caches.setdefault(match.group("cache"), set()).add(int(match.group("group")))
    return {cache: sorted(groups) for cache, groups in sorted(caches.items())}


def dgroup_energy_nj(registry: StatRegistry, cache: str, group: int) -> float:
    """Energy attributed to one d-group: its ops plus outbound moves."""
    total = 0.0
    for name, value in registry.counters(f"{cache}.energy_nj.").items():
        op = name[len(f"{cache}.energy_nj."):]
        if op.startswith(f"dg{group}.") or op.startswith(f"bank{group}."):
            total += value
        elif op.startswith(f"move.{group}->"):
            total += value
    return total


def dgroup_rows(registry: StatRegistry, cache: str) -> List[Dict[str, object]]:
    """The per-d-group report rows for one cache."""
    groups = dgroup_caches(registry).get(cache)
    if not groups:
        raise ConfigurationError(f"no per-d-group counters for cache {cache!r}")
    hits = {g: registry.get(f"{cache}.dg{g}.hits") for g in groups}
    misses = registry.get(f"{cache}.misses")
    accesses = sum(hits.values()) + misses
    rows = []
    for g in groups:
        row: Dict[str, object] = {
            "dgroup": g,
            "hits": hits[g],
            "share": hits[g] / accesses if accesses else 0.0,
            "energy_nj": dgroup_energy_nj(registry, cache, g),
        }
        occupied = registry.get(f"{cache}.dg{g}.occupied")
        frames = registry.get(f"{cache}.dg{g}.frames")
        if frames:
            row["occupancy"] = occupied / frames
        rows.append(row)
    rows.append(
        {
            "dgroup": "miss",
            "hits": misses,
            "share": misses / accesses if accesses else 0.0,
            "energy_nj": 0.0,
        }
    )
    return rows


def port_pressure_rows(registry: StatRegistry) -> List[Dict[str, object]]:
    """Queue-pressure rows for every single-port or banked resource.

    One row per (cache, kind): grants, busy and wait cycles, and the
    mean wait per grant — the load-dependent part of access latency.
    """
    resources: Dict[Tuple[str, str], Dict[str, float]] = {}
    for name, value in registry.counters().items():
        match = _PORT_GAUGE.match(name)
        if match:
            key = (match.group("cache"), match.group("kind"))
            resources.setdefault(key, {})[match.group("what")] = value
    rows = []
    for (cache, kind), stats in sorted(resources.items()):
        grants = stats.get("grants", 0.0)
        wait = stats.get("wait_cycles", 0.0)
        rows.append(
            {
                "resource": f"{cache}.{kind}",
                "banks": int(stats["banks"]) if "banks" in stats else 1,
                "grants": grants,
                "busy_cycles": stats.get("busy_cycles", 0.0),
                "wait_cycles": wait,
                "avg_wait": wait / grants if grants else 0.0,
            }
        )
    return rows


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(rows: List[Dict[str, object]], columns: List[str]) -> List[str]:
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = ["  ".join(c.ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return lines


def render_report(
    registry: StatRegistry,
    profiles: Optional[Sequence[Mapping[str, Mapping[str, float]]]] = None,
) -> str:
    """The merged telemetry report as aligned text."""
    lines: List[str] = ["== telemetry report =="]

    caches = dgroup_caches(registry)
    chart_rows: Dict[str, Tuple[List[float], float]] = {}
    max_groups = 0
    for cache, groups in caches.items():
        lines.append("")
        lines.append(f"-- {cache}: per-d-group breakdown --")
        rows = dgroup_rows(registry, cache)
        columns = ["dgroup", "hits", "share", "energy_nj"]
        if any("occupancy" in r for r in rows):
            columns.append("occupancy")
        lines.extend(_table(rows, columns))
        accesses = sum(r["hits"] for r in rows)  # type: ignore[misc]
        if accesses:
            fractions = [r["share"] for r in rows[:-1]]
            chart_rows[cache] = (fractions, rows[-1]["share"])  # type: ignore[index]
            max_groups = max(max_groups, len(groups))

    if chart_rows:
        # The same stacked-bar form the paper's distribution figures use.
        from repro.experiments.render import distribution_chart

        lines.append("")
        lines.append("-- d-group access distribution --")
        lines.append(distribution_chart(chart_rows, legend_groups=max_groups))

    pressure = port_pressure_rows(registry)
    if pressure:
        lines.append("")
        lines.append("-- port / bank-queue pressure --")
        lines.extend(
            _table(
                pressure,
                [
                    "resource",
                    "banks",
                    "grants",
                    "busy_cycles",
                    "wait_cycles",
                    "avg_wait",
                ],
            )
        )

    histograms = registry.histograms()
    if histograms:
        lines.append("")
        lines.append("-- histograms --")
        rows = []
        for name, hist in histograms.items():
            rows.append(
                {
                    "histogram": name,
                    "n": hist.n,
                    "mean": hist.mean,
                    "p50": hist.quantile(0.5),
                    "p90": hist.quantile(0.9),
                    "min": hist.min if hist.min is not None else "",
                    "max": hist.max if hist.max is not None else "",
                }
            )
        lines.extend(_table(rows, ["histogram", "n", "mean", "p50", "p90", "min", "max"]))

    counters = registry.counters()
    if counters:
        lines.append("")
        lines.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"{name:<{width}}  {_fmt(value)}")

    if profiles:
        for index, summary in enumerate(profiles):
            lines.append("")
            lines.append(f"-- profile[{index}] (wall-clock, non-deterministic) --")
            lines.append(format_profile(summary))

    lines.append("")
    return "\n".join(lines)


def report_from_files(paths: Sequence[str], include_profile: bool = False) -> str:
    """Load, merge, and render — the ``python -m repro.telemetry`` core."""
    pairs = load_payloads(paths)
    registry = merge_payloads(pairs)
    profiles = None
    if include_profile:
        profiles = [
            payload["profile"]  # type: ignore[misc]
            for _, payload in sorted(pairs, key=lambda pair: pair[0])
            if payload.get("profile")
        ]
    return render_report(registry, profiles=profiles)

"""Frame storage and the reverse-pointer side of distance associativity.

A :class:`FrameStore` is one d-group's worth of data frames.  Each
occupied frame records the block address resident in it — the model's
form of the paper's reverse pointer (block address determines the tag
set, and the set's tag entry is then found associatively, exactly what
the hardware's (set, way) pointer accomplishes).

Frames are grouped into *regions* to support §2.4.3's restricted
distance associativity: a block whose placement is restricted to
``restricted_frames`` frames per d-group may only occupy frames of its
own region, so free-frame search and victim selection are per-region.
With one region the store is fully flexible (the paper's default).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.common.errors import ConfigurationError, SimulationError


class FrameStore:
    """Occupancy tracking for one d-group's frames."""

    def __init__(self, n_frames: int, n_regions: int = 1) -> None:
        if n_frames <= 0:
            raise ConfigurationError(f"frame count must be positive, got {n_frames}")
        if n_regions <= 0 or n_frames % n_regions:
            raise ConfigurationError(
                f"{n_regions} regions must evenly divide {n_frames} frames"
            )
        self.n_frames = n_frames
        self.n_regions = n_regions
        self.frames_per_region = n_frames // n_regions
        #: frame index -> resident block address (None = free).
        self._resident: List[Optional[int]] = [None] * n_frames
        #: per-region free lists (frame indices).
        self._free: List[List[int]] = [
            list(range(r * self.frames_per_region, (r + 1) * self.frames_per_region))
            for r in range(n_regions)
        ]
        #: frames permanently removed from service (hard faults beyond
        #: spare capacity); never free, never allocatable.
        self._retired: Set[int] = set()

    # --- queries ---

    def occupant(self, frame: int) -> Optional[int]:
        """Block address resident in ``frame`` (the reverse pointer)."""
        self._check_frame(frame)
        return self._resident[frame]

    def region_of_frame(self, frame: int) -> int:
        self._check_frame(frame)
        return frame // self.frames_per_region

    def has_free(self, region: int) -> bool:
        self._check_region(region)
        return bool(self._free[region])

    def free_count(self, region: Optional[int] = None) -> int:
        if region is None:
            return sum(len(f) for f in self._free)
        self._check_region(region)
        return len(self._free[region])

    @property
    def occupied_count(self) -> int:
        return self.n_frames - self.free_count() - len(self._retired)

    def is_retired(self, frame: int) -> bool:
        self._check_frame(frame)
        return frame in self._retired

    def retired_count(self, region: Optional[int] = None) -> int:
        if region is None:
            return len(self._retired)
        self._check_region(region)
        return sum(1 for f in self._retired if self.region_of_frame(f) == region)

    # --- mutation ---

    def allocate(self, block_addr: int, region: int) -> int:
        """Place ``block_addr`` into a free frame of ``region``."""
        self._check_region(region)
        if not self._free[region]:
            raise SimulationError(f"allocate in full region {region}")
        frame = self._free[region].pop()
        if self._resident[frame] is not None:
            raise SimulationError(f"free list corrupt: frame {frame} occupied")
        self._resident[frame] = block_addr
        return frame

    def allocate_run(self, block_addrs: List[int], region: int) -> List[int]:
        """Allocate a frame for every block in order; returns the frames.

        Exactly equivalent to calling :meth:`allocate` once per block
        (frames come off the region's free-list tail in the same
        order), but pulls the whole run off the free list in one slice
        — prewarm fills tens of thousands of frames this way.
        """
        self._check_region(region)
        free = self._free[region]
        n = len(block_addrs)
        if len(free) < n:
            raise SimulationError(f"allocate_run of {n} in region {region}")
        frames = free[len(free) - n :]
        frames.reverse()
        del free[len(free) - n :]
        resident = self._resident
        for frame, block_addr in zip(frames, block_addrs):
            if resident[frame] is not None:
                raise SimulationError(f"free list corrupt: frame {frame} occupied")
            resident[frame] = block_addr
        return frames

    def release(self, frame: int) -> int:
        """Free ``frame``; returns the block address that was there."""
        self._check_frame(frame)
        occupant = self._resident[frame]
        if occupant is None:
            raise SimulationError(f"release of already-free frame {frame}")
        self._resident[frame] = None
        self._free[self.region_of_frame(frame)].append(frame)
        return occupant

    def replace(self, frame: int, block_addr: int) -> int:
        """Swap the occupant of ``frame``; returns the old occupant."""
        self._check_frame(frame)
        occupant = self._resident[frame]
        if occupant is None:
            raise SimulationError(f"replace on free frame {frame}")
        self._resident[frame] = block_addr
        return occupant

    def retire(self, frame: int) -> None:
        """Permanently remove a *free* frame from service.

        Callers must first evict/invalidate any resident block (via
        :meth:`release`); retirement then pulls the frame off its
        region's free list so it can never be allocated again.  This is
        the graceful-degradation path for hard subarray failures once
        spares are exhausted.
        """
        self._check_frame(frame)
        if frame in self._retired:
            return
        if self._resident[frame] is not None:
            raise SimulationError(f"retire of occupied frame {frame}")
        self._free[self.region_of_frame(frame)].remove(frame)
        self._retired.add(frame)

    # --- invariants (used by tests and debug assertions) ---

    def check_invariants(self) -> None:
        """Raise if free lists, retirement, and residency disagree."""
        free = set()
        for region, frames in enumerate(self._free):
            for frame in frames:
                if self.region_of_frame(frame) != region:
                    raise SimulationError(f"frame {frame} on wrong region free list")
                free.add(frame)
        if free & self._retired:
            raise SimulationError("retired frame on a free list")
        for frame, occupant in enumerate(self._resident):
            if frame in self._retired:
                if occupant is not None:
                    raise SimulationError(f"retired frame {frame} is occupied")
                continue
            if (occupant is None) != (frame in free):
                raise SimulationError(f"frame {frame} residency/free-list mismatch")

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self.n_frames:
            raise SimulationError(f"frame {frame} out of range")

    def _check_region(self, region: int) -> None:
        if not 0 <= region < self.n_regions:
            raise SimulationError(f"region {region} out of range")

"""NuRAPID: Non-uniform access with Replacement And Placement using
Distance associativity — the paper's contribution (§2).

The cache keeps a conventional set-associative, centralized tag array
(probed first: sequential tag-data access) whose entries carry a
*forward pointer* into the data side; the data side is a handful of
large d-groups whose frames carry *reverse pointers* back to the tag
entry.  Placement of data among d-groups is thereby decoupled from set
associativity:

* new blocks are placed directly in the fastest d-group (§2.1),
* *distance replacement* demotes some block — from anywhere, any set —
  to make room, without evicting anything (§2.2),
* promotion policies (``next-fastest`` / ``fastest``) re-promote hot
  blocks that random demotion got wrong (§2.4.1–2.4.2).

Public entry point: :class:`NuRAPIDCache` configured by
:class:`NuRAPIDConfig`.
"""

from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)
from repro.nurapid.pointers import FrameStore
from repro.nurapid.replacement import DistanceReplacer
from repro.nurapid.cache import NuRAPIDCache

__all__ = [
    "DistanceReplacementKind",
    "DistanceReplacer",
    "FrameStore",
    "NuRAPIDCache",
    "NuRAPIDConfig",
    "PromotionPolicy",
]

"""The NuRAPID cache model (§2).

Structure: a centralized set-associative tag array probed first
(sequential tag-data access), whose entries carry forward pointers to
frames in a few large d-groups; frames carry reverse pointers back.
Placement, distance replacement, and promotion follow §2.1–2.4:

* new blocks always enter d-group 0 (initial placement in the fastest
  group — the flexibility set-associative placement cannot afford),
* making room demotes blocks outward, d-group by d-group, until a free
  frame is found (at most n-1 demotions; never an eviction),
* hits outside d-group 0 optionally promote the block by swapping it
  with a distance-replacement victim of the faster group,
* the whole cache is one-ported and non-banked: every operation —
  access, swap leg, fill — serializes on a single
  :class:`~repro.caches.port.PortScheduler` (§2.3).

Timing contract: ``access``/``fill`` take the arrival cycle ``now``;
returned latencies include queueing behind earlier operations, which is
how the paper's reduced-bandwidth argument is evaluated (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cost
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan, HardFaultEvent
    from repro.telemetry import CacheTelemetry
from repro.common import prewarm_cache
from repro.common.lru import LRUPolicy
from repro.common.rng import DeterministicRNG
from repro.common.stats import Counter, Distribution
from repro.common.types import AccessResult
from repro.caches.block import block_address, set_index
from repro.caches.port import PortScheduler
from repro.faults.models import TransientOutcome
from repro.floorplan.dgroups import NuRAPIDGeometry, build_nurapid_geometry
from repro.nurapid.config import NuRAPIDConfig, PromotionPolicy
from repro.nurapid.pointers import FrameStore
from repro.nurapid.replacement import DistanceReplacer
from repro.tech.energy import EnergyBook


@dataclass
class TagEntry:
    """One tag-array entry: identity, state, and the forward pointer.

    Internally the tag array packs this state into a single int per
    block (see the ``_PACK_*`` layout below); :meth:`NuRAPIDCache.lookup`
    materializes a ``TagEntry`` snapshot for introspection and tests.
    """

    block_addr: int
    dirty: bool
    dgroup: int
    frame: int
    #: Hits taken outside the promotion target since the last move
    #: (drives the promotion_hysteresis extension).
    pending_hits: int = 0


# Packed tag-entry layout: frame in the low bits, then d-group, the
# dirty bit, and pending promotion hits on top.  Keeping the whole
# entry in one int means the hot access path does a single dict load
# and a couple of shifts instead of walking an object graph.
_PACK_FRAME_BITS = 24
_PACK_FRAME_MASK = (1 << _PACK_FRAME_BITS) - 1
_PACK_DGROUP_SHIFT = _PACK_FRAME_BITS
_PACK_DGROUP_MASK = 0xF
_PACK_DIRTY = 1 << 28
_PACK_PENDING_SHIFT = 29
#: Everything except the pending-hits counter.
_PACK_BELOW_PENDING = (1 << _PACK_PENDING_SHIFT) - 1


@dataclass
class _PrewarmSnapshot:
    """Post-prewarm container state (see :mod:`repro.common.prewarm_cache`)."""

    tags: List[Dict[int, int]]
    lru: List[object]
    stores: List[Tuple[List[Optional[int]], List[List[int]]]]
    replacer: List[List[object]]


class NuRAPIDCache:
    """Distance-associative non-uniform L2 (lower-level protocol)."""

    def __init__(
        self,
        config: NuRAPIDConfig,
        geometry: Optional[NuRAPIDGeometry] = None,
        energy: Optional[EnergyBook] = None,
    ) -> None:
        self.config = config
        self.name = config.name
        self.block_bytes = config.block_bytes
        self.geometry = geometry if geometry is not None else build_nurapid_geometry(
            n_dgroups=config.n_dgroups,
            capacity_bytes=config.capacity_bytes,
            block_bytes=config.block_bytes,
            associativity=config.associativity,
            restricted_frames=config.restricted_frames,
        )
        if self.geometry.n_dgroups != config.n_dgroups:
            raise ConfigurationError("geometry and config disagree on d-groups")
        if self.geometry.sets != config.n_sets:
            raise ConfigurationError("geometry and config disagree on sets")

        if config.frames_per_dgroup > _PACK_FRAME_MASK:
            raise ConfigurationError("d-group too large for packed tag entries")
        if config.n_dgroups > _PACK_DGROUP_MASK:
            raise ConfigurationError("too many d-groups for packed tag entries")
        # Address decomposition, pre-reduced to shift/mask form (the
        # config's n_sets is a computed property and the shared helpers
        # re-validate per call — too hot for the access path).
        self._n_sets = config.n_sets
        self._block_mask = ~(config.block_bytes - 1)
        self._set_shift = config.block_bytes.bit_length() - 1
        self._set_mask = self._n_sets - 1
        #: Per-set tag array: block address -> packed entry int.
        self._tags: List[Dict[int, int]] = [dict() for _ in range(config.n_sets)]
        self._data_lru: List[LRUPolicy] = [LRUPolicy() for _ in range(config.n_sets)]
        self._stores = [
            FrameStore(config.frames_per_dgroup, config.n_regions)
            for _ in range(config.n_dgroups)
        ]
        rng = DeterministicRNG(config.seed, f"{config.name}/distance")
        self._replacer = DistanceReplacer(
            config.n_dgroups, config.n_regions, config.distance_replacement, rng
        )
        self.port = PortScheduler(f"{config.name}.port")

        self.energy = energy if energy is not None else EnergyBook()
        self._register_energy()

        self.stats = Counter()
        self.dgroup_hits = Distribution()
        self._init_hot_caches()

        #: Optional runtime fault injection (see :mod:`repro.faults`).
        #: None keeps every fault hook dead code: the no-fault path is
        #: bit-identical to the pre-fault simulator.
        self.fault_injector: Optional["FaultInjector"] = None
        #: Optional telemetry client (see :mod:`repro.telemetry`).
        #: None is the null sink: every hook below is a dead branch.
        self.telemetry: Optional["CacheTelemetry"] = None

    def _init_hot_caches(self) -> None:
        """Precompute hot-path constants (pure re-expressions of state).

        The access path used to build f-string energy keys, re-derive
        latencies from the geometry, and go through ``Counter.add`` /
        ``EnergyBook.charge`` on every call.  Everything cached here is
        a value those calls would compute identically, so the counter
        totals, key insertion order, and float arithmetic stay
        bit-identical to the uncached path.
        """
        geo = self.geometry
        name = self.name
        groups = range(geo.n_dgroups)
        self._k_tag = f"{name}.tag_probe"
        self._k_dg_read = [f"{name}.dg{g}.read" for g in groups]
        self._k_dg_write = [f"{name}.dg{g}.write" for g in groups]
        self._k_move = [
            [f"{name}.move.{i}->{j}" if i != j else "" for j in groups]
            for i in groups
        ]
        self._tag_cost = self.energy.cost(self._k_tag)
        self._dg_read_cost = [self.energy.cost(k) for k in self._k_dg_read]
        self._dg_write_cost = [self.energy.cost(k) for k in self._k_dg_write]
        #: Direct views into the stats/energy dicts.  Counter.reset()
        #: and EnergyBook.reset_counts() mutate in place, so these stay
        #: valid across reset_stats().
        self._scounts = self.stats._counts
        self._ecounts = self.energy._count
        self._miss_lat_f = float(geo.miss_latency())
        self._hit_lat_f = [float(geo.hit_latency(g)) for g in groups]
        self._ideal_lat = geo.hit_latency(0)
        self._tag_cycles = geo.tag_cycles
        self._data_occ = [geo.data_occupancy(g) for g in groups]
        self._data_cycles = [geo.dgroups[g].data_cycles for g in groups]
        self._swap_occ = [
            [geo.swap_occupancy(i, j) if i != j else 0.0 for j in groups]
            for i in groups
        ]
        self._n_regions = self.config.n_regions
        self._rtouch = [
            [policy.touch for policy in row] for row in self._replacer._policies
        ]
        self._ideal_uniform = self.config.ideal_uniform
        self._promo_on = self.config.promotion is not PromotionPolicy.DEMOTION_ONLY
        self._promo_next = self.config.promotion is PromotionPolicy.NEXT_FASTEST
        self._hysteresis = self.config.promotion_hysteresis
        #: Tag-side residency limit per set.  Equals the configured
        #: associativity here; variant caches with more data frames
        #: than tag ways per set (compressed d-groups) raise it.
        self._assoc_limit = self.config.associativity

    # --- fault injection (opt-in) ---

    def attach_faults(self, plan: "FaultPlan") -> "FaultInjector":
        """Arm this cache with a fault campaign; returns the injector."""
        from repro.faults.injector import FaultInjector

        if self.fault_injector is not None:
            raise ConfigurationError(f"{self.name} already has a fault injector")
        self.fault_injector = FaultInjector(
            plan, self.name, n_dgroups=self.config.n_dgroups
        )
        return self.fault_injector

    # --- energy registration ---

    def _register_energy(self) -> None:
        geo = self.geometry
        self.energy.register(f"{self.name}.tag_probe", geo.tag_energy_nj)
        for spec in geo.dgroups:
            self.energy.register(f"{self.name}.dg{spec.index}.read", spec.read_energy_nj)
            self.energy.register(f"{self.name}.dg{spec.index}.write", spec.write_energy_nj)
        for i in range(geo.n_dgroups):
            for j in range(geo.n_dgroups):
                if i != j:
                    self.energy.register(
                        f"{self.name}.move.{i}->{j}", geo.swap_energy_nj(i, j)
                    )

    # --- address helpers ---

    def _set_of(self, address: int) -> int:
        # == set_index(address, self.block_bytes, n_sets) for the
        # non-negative addresses traces carry.
        return (address >> self._set_shift) & self._set_mask

    def _region_of(self, address: int) -> int:
        # Regions are selected by set-index bits so that each region's
        # resident blocks can never exceed its frames (restricted
        # placement stays deadlock-free; see tests).
        return self._set_of(address) % self.config.n_regions

    # --- lookups ---

    def lookup(self, address: int) -> Optional[TagEntry]:
        """Tag-entry snapshot for ``address`` if resident (no side effects)."""
        baddr = block_address(address, self.block_bytes)
        packed = self._tags[self._set_of(address)].get(baddr)
        if packed is None:
            return None
        return TagEntry(
            block_addr=baddr,
            dirty=bool(packed & _PACK_DIRTY),
            dgroup=(packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK,
            frame=packed & _PACK_FRAME_MASK,
            pending_hits=packed >> _PACK_PENDING_SHIFT,
        )

    def contains(self, address: int) -> bool:
        baddr = block_address(address, self.block_bytes)
        return baddr in self._tags[self._set_of(address)]

    def dgroup_of(self, address: int) -> Optional[int]:
        packed = self._tags[self._set_of(address)].get(
            block_address(address, self.block_bytes)
        )
        if packed is None:
            return None
        return (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK

    # --- the access path ---

    def access(self, address: int, is_write: bool = False, now: float = 0.0) -> AccessResult:
        """Sequential tag-data access with optional promotion."""
        if self.fault_injector is not None:
            for event in self.fault_injector.take_due_hard_faults():
                self._apply_hard_fault(event)
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        tag_set = self._tags[index]
        packed = tag_set.get(baddr)
        sc = self._scounts
        sc["accesses"] = sc.get("accesses", 0) + 1
        ec = self._ecounts
        ec[self._k_tag] += 1
        energy = self._tag_cost

        if packed is None:
            # Sequential tag-data access: the (pipelined) tag probe
            # alone determines a miss; the data port is never touched.
            if self.fault_injector is not None:
                self.fault_injector.on_access(False, False, address)
            sc["misses"] = sc.get("misses", 0) + 1
            if self.telemetry is not None:
                self.telemetry.on_access(baddr, False, None, self._miss_lat_f)
            return AccessResult(
                hit=False,
                latency=self._miss_lat_f,
                level=self.name,
                energy_nj=energy,
            )

        group = (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
        if self.fault_injector is not None:
            # May raise UncorrectableDataError for a dirty-line DUE;
            # the dirty bit is the pre-write state, which is what the
            # read-modify-write of the ECC word actually sees.
            outcome = self.fault_injector.on_access(
                True, bool(packed & _PACK_DIRTY), address
            )
            if outcome is TransientOutcome.REFETCH:
                # The d-group read that detected the error is paid; the
                # clean line is dropped and refetched from below.
                energy += self.energy.charge(self._k_dg_read[group])
                self.stats.add("dgroup_accesses")
                self.stats.add("fault_refetches")
                self.stats.add("misses")
                self._invalidate_frame(group, packed & _PACK_FRAME_MASK)
                if self.telemetry is not None:
                    self.telemetry.on_access(
                        baddr, False, None, self._hit_lat_f[group]
                    )
                return AccessResult(
                    hit=False,
                    latency=self._hit_lat_f[group],
                    level=self.name,
                    energy_nj=energy,
                )
        sc["hits"] = sc.get("hits", 0) + 1
        dh = self.dgroup_hits.counts
        dh[group] = dh.get(group, 0) + 1
        if is_write:
            ec[self._k_dg_write[group]] += 1
            energy += self._dg_write_cost[group]
        else:
            ec[self._k_dg_read[group]] += 1
            energy += self._dg_read_cost[group]
        sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 1
        if is_write:
            packed |= _PACK_DIRTY
            tag_set[baddr] = packed

        self._data_lru[index].touch(baddr)
        self._rtouch[group][index % self._n_regions](packed & _PACK_FRAME_MASK)

        if self._ideal_uniform:
            latency: float = self._ideal_lat
            done = now + latency
        else:
            # The tag array is pipelined; the data side's single port is
            # claimed after the tag probe, for the array-access time
            # only.  Data reaches the core a wire-trip after the array
            # starts, so latency = queueing + tag + data path.
            # PortScheduler.request, inlined (non-negative constant
            # occupancy, non-decreasing non-negative clock).
            port = self.port
            t0 = now + self._tag_cycles
            occ = self._data_occ[group]
            bu = port.busy_until
            start = t0 if t0 >= bu else bu
            port.busy_until = start + occ
            port.total_busy += occ
            port.total_wait += start - t0
            port.grants += 1
            latency = (start - now) + self._data_cycles[group]
            done = now + latency

        if self.telemetry is not None:
            self.telemetry.on_access(baddr, True, group, latency)

        if group > 0 and self._promo_on:
            pending = (packed >> _PACK_PENDING_SHIFT) + 1
            if pending >= self._hysteresis:
                packed &= _PACK_DIRTY | _PACK_FRAME_MASK | (
                    _PACK_DGROUP_MASK << _PACK_DGROUP_SHIFT
                )
                tag_set[baddr] = packed
                target = group - 1 if self._promo_next else 0
                self._promote(index, baddr, packed, target, done)
            else:
                tag_set[baddr] = (
                    (packed & _PACK_BELOW_PENDING) | (pending << _PACK_PENDING_SHIFT)
                )

        return AccessResult(
            hit=True,
            latency=latency,
            level=self.name,
            dgroup=group,
            energy_nj=energy,
        )

    def _occupy(self, now: float, cycles: float) -> float:
        """Claim the single port; returns observed latency incl. waiting."""
        if self.config.ideal_uniform:
            return cycles
        start, finish = self.port.request(now, cycles)
        return finish - now

    # --- promotion (swap with a distance-replacement victim) ---

    def _promote(
        self, index: int, baddr: int, packed: int, target: int, now: float
    ) -> None:
        """Move ``baddr`` to ``target``, swapping with a victim if full.

        ``packed`` is the block's current tag entry (pending hits
        already cleared by the caller and stored back).
        """
        source = (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
        if target >= source:
            raise SimulationError(f"promotion must move inward ({source}->{target})")
        region = self._region_of(baddr)
        if (
            self.fault_injector is not None
            and not self._stores[target].has_free(region)
            and self._replacer.tracked(target, region) == 0
        ):
            # The target group's region has been fully retired by hard
            # faults: nothing to swap with, so the block stays put.
            self.stats.add("fault_promotions_blocked")
            return
        self.stats.add("promotions")
        if self.telemetry is not None:
            self.telemetry.event(
                "promotion", addr=baddr, src=source, dst=target, cycle=now
            )

        old_frame = packed & _PACK_FRAME_MASK
        dirty_bit = packed & _PACK_DIRTY
        if self._stores[target].has_free(region):
            # Room in the faster group: a one-way move, no demotion.
            self._stores[source].release(old_frame)
            self._replacer.remove(source, region, old_frame)
            new_frame = self._stores[target].allocate(baddr, region)
            self._replacer.insert(target, region, new_frame)
            self._tags[index][baddr] = (
                new_frame | (target << _PACK_DGROUP_SHIFT) | dirty_bit
            )
            self._charge_move(source, target, now)
            return

        victim_frame = self._replacer.select_victim(target, region)
        victim_addr = self._stores[target].occupant(victim_frame)
        if victim_addr is None:
            raise SimulationError("distance victim frame is unexpectedly free")
        victim_set = self._tags[self._set_of(victim_addr)]

        # Swap occupants; both frames stay occupied.  The demoted
        # victim keeps its dirty bit but restarts promotion hysteresis.
        self._stores[target].replace(victim_frame, baddr)
        self._stores[source].replace(old_frame, victim_addr)
        victim_set[victim_addr] = (
            old_frame
            | (source << _PACK_DGROUP_SHIFT)
            | (victim_set[victim_addr] & _PACK_DIRTY)
        )
        self._tags[index][baddr] = (
            victim_frame | (target << _PACK_DGROUP_SHIFT) | dirty_bit
        )

        # Recency: the promoted block is MRU in its new group; the
        # demoted victim enters the slower group as a fresh arrival.
        self._replacer.touch(target, region, victim_frame)
        self._replacer.remove(source, region, old_frame)
        self._replacer.insert(source, region, old_frame)

        self.stats.add("demotions")
        if self.telemetry is not None:
            self.telemetry.event(
                "demotion", addr=victim_addr, src=target, dst=source, cycle=now
            )
        self._charge_move(source, target, now)
        self._charge_move(target, source, now)

    def _charge_move(self, src: int, dst: int, now: float, occupy: bool = True) -> None:
        """Energy (and optionally port occupancy) for one block move.

        Promotion swaps run at hit time and, per §2.3, must complete
        before a later access is served — they occupy the port.
        Fill-time demotion chains ride the fill buffers and drain
        during idle array cycles, so they charge energy only.
        """
        self._ecounts[self._k_move[src][dst]] += 1
        sc = self._scounts
        sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 2
        sc["moves"] = sc.get("moves", 0) + 1
        if occupy and not self.config.ideal_uniform:
            self.port.request(now, self._swap_occ[src][dst])

    # --- fills (placement + distance replacement, §2.2) ---

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> int:
        """Install a block after a miss; returns dirty writebacks (0/1).

        Conventional data replacement (LRU within the set) may first
        evict a block, freeing a frame somewhere; the new block then
        enters d-group 0, pushing a demotion chain outward until a free
        frame absorbs it.
        """
        baddr = address & self._block_mask
        index = (address >> self._set_shift) & self._set_mask
        resident = self._tags[index]
        if baddr in resident:
            return 0
        region = index % self._n_regions
        sc = self._scounts
        sc["fills"] = sc.get("fills", 0) + 1

        writebacks = 0
        set_evicted = len(resident) >= self._assoc_limit
        if set_evicted:
            victim_addr = self._data_lru[index].pop_victim()
            victim = resident.pop(victim_addr)
            victim_group = (victim >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
            self._stores[victim_group].release(victim & _PACK_FRAME_MASK)
            self._replacer.remove(victim_group, region, victim & _PACK_FRAME_MASK)
            sc["evictions"] = sc.get("evictions", 0) + 1
            if self.telemetry is not None:
                self.telemetry.event(
                    "eviction", addr=victim_addr, dgroup=victim_group, cycle=now
                )
            if victim & _PACK_DIRTY:
                writebacks = 1
                sc["writebacks"] = sc.get("writebacks", 0) + 1
                # Reading the victim out for writeback is a d-group read;
                # it drains through the writeback buffer off the port.
                self._ecounts[self._k_dg_read[victim_group]] += 1
                sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 1
                if self.telemetry is not None:
                    self.telemetry.event(
                        "writeback", addr=victim_addr, dgroup=victim_group, cycle=now
                    )
        elif self.fault_injector is not None and not self._region_has_free(region):
            # Hard-fault retirement left fewer usable frames than the
            # tag side admits: the region is full even though this set
            # is not, so make room by evicting a distance victim.
            writebacks += self._evict_for_space(region)

        # Demotion chain: push occupants outward until a free frame.
        group = start = self._fill_start_group(baddr)
        if start:
            # A chain entering mid-way cannot reach free frames in the
            # faster groups it skips, so a variant may need to clear
            # space in the reachable tail first (no-op in the base).
            writebacks += self._ensure_chain_space(region, start)
        incoming = baddr
        incoming_packed: Optional[int] = None  # created below for baddr
        while not self._stores[group].has_free(region):
            if (
                self.fault_injector is not None
                and self._replacer.tracked(group, region) == 0
            ):
                # Region fully retired in this d-group: nothing to
                # demote, the incoming block skips to the next group.
                group += 1
                if group >= self.config.n_dgroups:
                    raise SimulationError(
                        f"region {region} has no usable frames in any d-group"
                    )
                continue
            frame = self._replacer.select_victim(group, region)
            demoted_addr = self._stores[group].replace(frame, incoming)
            self._replacer.remove(group, region, frame)
            self._replacer.insert(group, region, frame)
            self._settle(incoming, incoming_packed, group, frame)
            demoted_packed = self._tags[self._set_of(demoted_addr)][demoted_addr]
            incoming, incoming_packed = demoted_addr, demoted_packed
            group += 1
            if group >= self.config.n_dgroups:
                raise SimulationError(
                    "demotion chain ran off the slowest d-group; "
                    "free-frame accounting is corrupt"
                )
            sc["demotions"] = sc.get("demotions", 0) + 1
            if self.telemetry is not None:
                self.telemetry.event(
                    "demotion", addr=incoming, src=group - 1, dst=group, cycle=now
                )
            self._charge_move(group - 1, group, now, occupy=False)
        frame = self._stores[group].allocate(incoming, region)
        self._replacer.insert(group, region, frame)
        self._settle(incoming, incoming_packed, group, frame)

        # The new block's own fill write into its entry d-group (fill
        # buffer; no demand-port occupancy).
        self._ecounts[self._k_dg_write[start]] += 1
        sc["dgroup_accesses"] = sc.get("dgroup_accesses", 0) + 1

        packed = self._tags[index].get(baddr)
        if packed is None:
            raise SimulationError("fill finished without installing the block")
        if dirty:
            self._tags[index][baddr] = packed | _PACK_DIRTY
        if self.telemetry is not None:
            self.telemetry.event(
                "placement",
                addr=baddr,
                dgroup=(packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK,
                cycle=now,
            )
        return writebacks

    def _fill_start_group(self, baddr: int) -> int:
        """D-group a freshly filled block enters (hook for variants).

        The paper's policy is distance placement into the fastest
        group; the compressed variant steers lines that will not
        compress past the compressed groups.
        """
        return 0

    def _settle(
        self,
        block_addr: int,
        packed: Optional[int],
        dgroup: int,
        frame: int,
    ) -> None:
        """Point a block's tag entry at its (possibly new) frame.

        ``packed`` is None exactly for the incoming block on its first
        placement, in which case the tag entry is created here (clean,
        no pending hits).  A relocated block keeps its dirty bit but
        restarts promotion hysteresis.
        """
        index = self._set_of(block_addr)
        if packed is None:
            self._tags[index][block_addr] = frame | (dgroup << _PACK_DGROUP_SHIFT)
            self._data_lru[index].insert(block_addr)
        else:
            self._tags[index][block_addr] = (
                frame | (dgroup << _PACK_DGROUP_SHIFT) | (packed & _PACK_DIRTY)
            )

    # --- fault handling: invalidation, capacity eviction, retirement ---

    def _region_has_free(self, region: int) -> bool:
        return any(store.has_free(region) for store in self._stores)

    def _invalidate_frame(self, dgroup: int, frame: int) -> int:
        """Drop the block resident in ``frame`` without writeback.

        Returns the dropped block's packed tag entry (so callers can
        check its dirty bit).
        """
        store = self._stores[dgroup]
        addr = store.occupant(frame)
        if addr is None:
            raise SimulationError(f"invalidate of free frame {frame} in dg{dgroup}")
        index = self._set_of(addr)
        packed = self._tags[index].pop(addr)
        self._data_lru[index].remove(addr)
        store.release(frame)
        self._replacer.remove(dgroup, self._region_of(addr), frame)
        return packed

    def _ensure_chain_space(self, region: int, start: int) -> int:
        """Make a frame reachable for a chain entering at ``start``.

        The base policy always starts chains at d-group 0, where every
        free frame in the region is reachable by demotion, so there is
        nothing to do.  Variants that steer fills past the fastest
        groups (compressed NuRAPID) override this to evict when the
        reachable tail is full.  Returns writebacks.
        """
        return 0

    def _evict_for_space(self, region: int) -> int:
        """Evict a distance victim of ``region``; returns writebacks.

        Only reachable under fault injection: retirement shrank the
        usable frame pool below sets x associativity, so a fill may
        find its set below associativity yet its region out of frames.
        The victim comes from the slowest d-group still holding one,
        matching where demotion pressure accumulates.
        """
        for group in range(self.config.n_dgroups - 1, -1, -1):
            if (
                not self._stores[group].occupied_count
                or self._replacer.tracked(group, region) == 0
            ):
                continue
            frame = self._replacer.select_victim(group, region)
            packed = self._invalidate_frame(group, frame)
            self.stats.add("evictions")
            self.stats.add("fault_capacity_evictions")
            if packed & _PACK_DIRTY:
                self.stats.add("writebacks")
                self.energy.charge(f"{self.name}.dg{group}.read")
                self.stats.add("dgroup_accesses")
                return 1
            return 0
        raise SimulationError(f"region {region} has no usable frames left")

    def _apply_hard_fault(self, event: "HardFaultEvent") -> None:
        """A subarray died mid-run: remap to a spare or degrade."""
        assert self.fault_injector is not None
        if self.fault_injector.repair_or_retire(event):
            # A spare absorbed the failure; with §3.1 interleaving the
            # lost bits are reconstructed word-by-word through SEC-DED,
            # so contents and capacity are unaffected.
            return
        self._retire_subarray(event.dgroup, event.subarray)

    def _retire_subarray(self, dgroup: int, subarray: int) -> None:
        """Spares exhausted: retire the subarray's frames for good.

        Resident blocks are lost (counted, not raised — the run keeps
        going on reduced capacity); the frames leave the free pool so
        placement, demotion, and promotion transparently operate on a
        smaller d-group from here on.
        """
        store = self._stores[dgroup]
        n_subarrays = self.fault_injector.plan.data_subarrays_per_dgroup
        frames_per_subarray = max(1, store.n_frames // n_subarrays)
        start = min(subarray * frames_per_subarray, store.n_frames)
        for frame in range(start, min(start + frames_per_subarray, store.n_frames)):
            if store.is_retired(frame):
                continue
            if store.occupant(frame) is not None:
                packed = self._invalidate_frame(dgroup, frame)
                self.stats.add("fault_lines_lost")
                if packed & _PACK_DIRTY:
                    self.stats.add("fault_dirty_lines_lost")
            store.retire(frame)
            self.stats.add("fault_frames_retired")
        if self.telemetry is not None:
            self.telemetry.event("fault_retire", dgroup=dgroup, subarray=subarray)

    def retired_frames(self) -> List[int]:
        """Retired frames per d-group, fastest first."""
        return [store.retired_count() for store in self._stores]

    # --- prewarm (models the paper's 5B-instruction fast-forward) ---

    #: Reserved address region for prewarm dummy blocks; far above any
    #: workload region so dummies never alias real traffic.
    PREWARM_BASE = 1 << 45

    def prewarm(self) -> None:
        """Fill every frame with a clean dummy block.

        A short trace cannot touch 8 MB worth of distinct blocks the
        way the paper's 5-billion-instruction fast-forward does; an
        empty cache would leave d-group 0 with free frames forever and
        mask all distance-replacement behaviour.  Prewarming puts the
        cache in the fully-occupied steady state: ``assoc / n_dgroups``
        dummy ways of every set in each d-group.  Dummies are clean, so
        their eviction costs no writebacks.  Call before any traffic.
        """
        if self.resident_blocks():
            raise SimulationError("prewarm on a non-empty cache")
        # Prewarm is a pure function of the cache's construction
        # parameters (no RNG draws, no stats/energy charges), so the
        # first fill of a given shape is snapshotted process-wide and
        # later fills of the same shape restore the snapshot instead.
        # Hard-fault retirement happens at access time, after prewarm,
        # so a retired frame here means a test drove the store directly
        # — fall through to the real fill without caching.
        pristine = not any(store._retired for store in self._stores)
        key = self._prewarm_cache_key() if pristine else None
        if key is not None:
            proto = prewarm_cache.get(key)
            if proto is not None:
                self._prewarm_restore(proto)
                return
        n_dgroups = self.config.n_dgroups
        ways_by_group = self._prewarm_ways()
        sets = self.config.n_sets
        n_regions = self.config.n_regions
        bb = self.block_bytes
        base = self.PREWARM_BASE

        # Bulk equivalent of the block-at-a-time loop (for index, for
        # way: allocate + insert + tag + LRU-insert).  Frames come off
        # each region's free-list tail, so the per-(group, region)
        # allocation order below — set index ascending, way ascending —
        # reproduces the exact same frame assignment and policy order;
        # allocate_run/insert_many are one-call equivalents.
        way_base = 0
        for group in range(n_dgroups):
            ways_per_group = ways_by_group[group]
            ways = np.arange(way_base, way_base + ways_per_group)
            way_base += ways_per_group
            group_bits = group << _PACK_DGROUP_SHIFT
            for region in range(n_regions):
                indices = range(region, sets, n_regions)
                # base + (way*sets + index)*bb, index-major way-minor,
                # materialized in one C pass.
                blocks = (
                    base
                    + (
                        np.arange(region, sets, n_regions, dtype=np.int64)[:, None]
                        + ways[None, :] * sets
                    )
                    * bb
                ).ravel().tolist()
                frames = self._stores[group].allocate_run(blocks, region)
                self._replacer.insert_many(group, region, frames)
                packed = [f | group_bits for f in frames]
                it_b = iter(blocks)
                it_p = iter(packed)
                for index in indices:
                    self._tags[index].update(
                        zip(islice(it_b, ways_per_group), islice(it_p, ways_per_group))
                    )
        # Per-set data LRU: dummies way-ascending, as the original
        # per-way loop inserted them.
        rows = (
            base
            + (
                np.arange(sets, dtype=np.int64)[:, None]
                + np.arange(way_base, dtype=np.int64)[None, :] * sets
            )
            * bb
        ).tolist()
        data_lru = self._data_lru
        for index, row in enumerate(rows):
            data_lru[index].insert_many(row)
        if key is not None:
            prewarm_cache.put(key, self._prewarm_snapshot())

    def _prewarm_cache_key(self) -> str:
        """Registry key: everything the prewarm result depends on.

        The dataclass repr covers every config field; variants with
        extra shape state (compressed d-groups) extend the key.
        """
        return f"{type(self).__qualname__}|{self.config!r}"

    def _prewarm_snapshot(self) -> "_PrewarmSnapshot":
        return _PrewarmSnapshot(
            tags=[dict(t) for t in self._tags],
            lru=[p.state_copy() for p in self._data_lru],
            stores=[
                (list(s._resident), [list(f) for f in s._free])
                for s in self._stores
            ],
            replacer=[
                [p.state_copy() for p in row] for row in self._replacer._policies
            ],
        )

    def _prewarm_restore(self, proto: "_PrewarmSnapshot") -> None:
        """Install a prototype (copying — prototypes never alias).

        Policy objects are mutated in place rather than replaced: the
        hot-path ``_rtouch`` table caches their bound methods.
        """
        self._tags = [dict(t) for t in proto.tags]
        for policy, state in zip(self._data_lru, proto.lru):
            policy.load_state(state)
        for store, (resident, free) in zip(self._stores, proto.stores):
            store._resident = list(resident)
            store._free = [list(f) for f in free]
        for row, saved in zip(self._replacer._policies, proto.replacer):
            for policy, state in zip(row, saved):
                policy.load_state(state)

    def _prewarm_ways(self) -> List[int]:
        """Dummy ways to fill per d-group (hook for variant caches).

        The default puts ``assoc / n_dgroups`` ways in every group —
        the paper's steady state; variants with enlarged groups return
        bigger counts so prewarm fills every frame they actually have.
        """
        assoc = self.config.associativity
        n_dgroups = self.config.n_dgroups
        if assoc % n_dgroups:
            raise SimulationError(
                "prewarm requires associativity divisible by d-groups"
            )
        return [assoc // n_dgroups] * n_dgroups

    # --- introspection / verification ---

    @property
    def accesses(self) -> int:
        return int(self.stats.get("accesses"))

    @property
    def miss_rate(self) -> float:
        total = self.stats.get("accesses")
        if not total:
            return 0.0
        return self.stats.get("misses") / total

    def resident_blocks(self) -> int:
        return sum(len(s) for s in self._tags)

    def check_invariants(self) -> None:
        """Cross-check tags, frames, pointers, and policies.

        O(capacity); intended for tests, not the hot loop.
        """
        resident = 0
        for index, tag_set in enumerate(self._tags):
            if len(tag_set) > self._assoc_limit:
                raise SimulationError(f"set {index} over associativity")
            if len(self._data_lru[index]) != len(tag_set):
                raise SimulationError(f"set {index} LRU/tag size mismatch")
            for baddr, packed in tag_set.items():
                resident += 1
                if self._set_of(baddr) != index:
                    raise SimulationError(f"block {baddr:#x} in wrong set")
                dgroup = (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
                frame = packed & _PACK_FRAME_MASK
                occupant = self._stores[dgroup].occupant(frame)
                if occupant != baddr:
                    raise SimulationError(
                        f"forward pointer of {baddr:#x} disagrees with frame"
                    )
                region = self._region_of(baddr)
                if self._stores[dgroup].region_of_frame(frame) != region:
                    raise SimulationError(f"block {baddr:#x} outside its region")
        for store in self._stores:
            store.check_invariants()
        occupied = sum(store.occupied_count for store in self._stores)
        if occupied != resident:
            raise SimulationError(
                f"{occupied} occupied frames but {resident} resident blocks"
            )
        for group in range(self.config.n_dgroups):
            for region in range(self.config.n_regions):
                tracked = self._replacer.tracked(group, region)
                free = self._stores[group].free_count(region)
                retired = self._stores[group].retired_count(region)
                per_region = self._stores[group].frames_per_region
                if tracked != per_region - free - retired:
                    raise SimulationError(
                        f"replacer tracking {tracked} frames in d-group {group} "
                        f"region {region}, expected {per_region - free - retired}"
                    )

    def reset_stats(self) -> None:
        """Zero counters after warmup; contents, recency, and the port
        timeline are kept so contention stays causal."""
        self.stats.reset()
        self.dgroup_hits = Distribution()
        self.energy.reset_counts()
        self.port.total_busy = 0.0
        self.port.total_wait = 0.0
        self.port.grants = 0

    def dgroup_occupancy(self) -> List[Tuple[int, int]]:
        """(occupied, total) frames per d-group, fastest first."""
        return [(s.occupied_count, s.n_frames) for s in self._stores]

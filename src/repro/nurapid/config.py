"""Configuration for the NuRAPID cache model."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError


class PromotionPolicy(enum.Enum):
    """What happens when a block hits outside the fastest d-group (§2.4.1).

    * ``DEMOTION_ONLY`` — nothing; blocks only move outward.
    * ``NEXT_FASTEST``  — swap the block one d-group closer (the
      paper's chosen policy, §5.2.2).
    * ``FASTEST``       — swap the block straight into d-group 0.
    """

    DEMOTION_ONLY = "demotion-only"
    NEXT_FASTEST = "next-fastest"
    FASTEST = "fastest"


class DistanceReplacementKind(enum.Enum):
    """How the victim within a d-group is chosen (§2.4.2, §5.3.1)."""

    RANDOM = "random"
    LRU = "lru"
    APPROX_LRU = "approx-lru"


@dataclass(frozen=True)
class NuRAPIDConfig:
    """A NuRAPID design point.

    Defaults are the paper's primary configuration: 8 MB, 8-way, 128 B
    blocks, 4 d-groups, random distance replacement with next-fastest
    promotion, LRU data replacement (§4, §5.3.1).

    ``restricted_frames`` limits each block to that many candidate
    frames per d-group, shrinking the forward pointer (§2.4.3);
    ``None`` means fully flexible placement.

    ``ideal_uniform`` models Figure 6's "ideal" curve: every hit
    completes at the fastest d-group's latency and block movement is
    free.  Placement still runs so miss behaviour is identical.
    """

    capacity_bytes: int = 8 * 1024 * 1024
    block_bytes: int = 128
    associativity: int = 8
    n_dgroups: int = 4
    promotion: PromotionPolicy = PromotionPolicy.NEXT_FASTEST
    distance_replacement: DistanceReplacementKind = DistanceReplacementKind.RANDOM
    restricted_frames: Optional[int] = None
    ideal_uniform: bool = False
    #: Promote only on the Nth hit taken while outside the target
    #: d-group (1 = the paper's promote-on-every-hit).  An extension
    #: ablation: hysteresis trades slower promotion for fewer swaps.
    promotion_hysteresis: int = 1
    seed: int = 0
    name: str = "NuRAPID"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigurationError("capacity and block size must be positive")
        if self.capacity_bytes % self.block_bytes:
            raise ConfigurationError("capacity must be a whole number of blocks")
        blocks = self.capacity_bytes // self.block_bytes
        if self.associativity <= 0 or blocks % self.associativity:
            raise ConfigurationError("blocks must divide evenly into sets")
        if self.n_dgroups <= 0 or blocks % self.n_dgroups:
            raise ConfigurationError("blocks must divide evenly into d-groups")
        if self.promotion_hysteresis < 1:
            raise ConfigurationError("promotion_hysteresis must be >= 1")
        frames_per_dgroup = blocks // self.n_dgroups
        if self.restricted_frames is not None:
            if not 0 < self.restricted_frames <= frames_per_dgroup:
                raise ConfigurationError(
                    f"restricted_frames must be in [1, {frames_per_dgroup}]"
                )
            if frames_per_dgroup % self.restricted_frames:
                raise ConfigurationError(
                    "restricted_frames must divide the frames per d-group"
                )
            n_sets = blocks // self.associativity
            n_regions = frames_per_dgroup // self.restricted_frames
            if n_sets % n_regions:
                raise ConfigurationError(
                    "placement regions must evenly partition the sets "
                    f"({n_regions} regions over {n_sets} sets); choose a "
                    "larger restricted_frames"
                )

    @property
    def n_blocks(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.associativity

    @property
    def frames_per_dgroup(self) -> int:
        return self.n_blocks // self.n_dgroups

    @property
    def n_regions(self) -> int:
        """Placement regions per d-group (1 = fully flexible)."""
        if self.restricted_frames is None:
            return 1
        return self.frames_per_dgroup // self.restricted_frames

"""Distance replacement: choosing which block leaves a d-group.

Distance replacement is the paper's second decoupling (§2.2): it picks
a *frame* within a d-group whose occupant will be demoted one group
outward — it never evicts from the cache.  The selection pool is the
whole d-group (thousands of frames), which is why the paper evaluates
random selection against true LRU (§5.3.1): random is hardware-trivial
and the promotion policy repairs its mistakes.

:class:`DistanceReplacer` keeps one eviction policy per (d-group,
region); regions are the §2.4.3 pointer-restriction granularity and
collapse to one per d-group in the default fully-flexible design.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigurationError
from repro.common.lru import EvictionPolicy, make_policy
from repro.common.rng import DeterministicRNG
from repro.nurapid.config import DistanceReplacementKind


class DistanceReplacer:
    """Victim selection over frames, per d-group and region."""

    def __init__(
        self,
        n_dgroups: int,
        n_regions: int,
        kind: DistanceReplacementKind,
        rng: DeterministicRNG,
    ) -> None:
        if n_dgroups <= 0 or n_regions <= 0:
            raise ConfigurationError("d-group and region counts must be positive")
        self.n_dgroups = n_dgroups
        self.n_regions = n_regions
        self.kind = kind
        self._policies: List[List[EvictionPolicy]] = [
            [
                make_policy(kind.value, rng.spawn(f"dg{g}/r{r}"))
                for r in range(n_regions)
            ]
            for g in range(n_dgroups)
        ]

    def _policy(self, dgroup: int, region: int) -> EvictionPolicy:
        if not 0 <= dgroup < self.n_dgroups:
            raise ConfigurationError(f"d-group {dgroup} out of range")
        if not 0 <= region < self.n_regions:
            raise ConfigurationError(f"region {region} out of range")
        return self._policies[dgroup][region]

    def insert(self, dgroup: int, region: int, frame: int) -> None:
        """Track a newly occupied frame (as most recently used)."""
        self._policy(dgroup, region).insert(frame)

    def insert_many(self, dgroup: int, region: int, frames: List[int]) -> None:
        """Track ``frames`` in order; equivalent to ``insert`` per frame."""
        self._policy(dgroup, region).insert_many(frames)

    def remove(self, dgroup: int, region: int, frame: int) -> None:
        """Stop tracking a frame whose occupant left the d-group."""
        self._policy(dgroup, region).remove(frame)

    def touch(self, dgroup: int, region: int, frame: int) -> None:
        """Record a hit on a frame's occupant."""
        self._policy(dgroup, region).touch(frame)

    def select_victim(self, dgroup: int, region: int) -> int:
        """Choose the frame whose occupant will be demoted.

        The frame stays tracked; the cache moves occupants around and
        then calls :meth:`remove`/:meth:`insert` to reflect the moves.
        """
        return int(self._policy(dgroup, region).victim())

    def tracked(self, dgroup: int, region: int) -> int:
        """Occupied-frame count seen by the policy (invariant checks)."""
        return len(self._policy(dgroup, region))

"""Compressed-line NuRAPID: compression ratio buys fast-frame capacity.

Following the compressed non-uniform LLC line of work (arXiv
2201.00774), the fast d-groups store lines compressed ``ratio``:1 so
each data frame holds ``ratio`` compressed lines — modeled here as the
compressed groups simply having ``ratio x`` frames, with the tag-side
set limit raised to match.  Whether a given line compresses is a
deterministic per-address draw against the workload's compressible
share (a synthetic stand-in for FPC/BDI-style compressibility), so
runs stay bit-reproducible and engine-independent:

* compressible lines behave exactly like the paper's NuRAPID, just
  with more room in the fast groups;
* incompressible lines are placed into, and never promoted past, the
  first uncompressed d-group;
* reads served by a compressed group pay ``decompression_cycles``.

The variant only overrides placement hooks (`_fill_start_group`,
`_promote`, `_prewarm_ways`) and construction, so every replay engine
drives it through the unchanged access/fill protocol.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cmp.config import CompressionConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.nurapid.cache import (
    NuRAPIDCache,
    _PACK_DGROUP_MASK,
    _PACK_DGROUP_SHIFT,
    _PACK_DIRTY,
    _PACK_FRAME_MASK,
)
from repro.nurapid.config import NuRAPIDConfig
from repro.nurapid.pointers import FrameStore
from repro.workloads.interleave import CORE_ADDR_SHIFT, MAX_CORES

#: Fixed 64-bit multiplicative hash (golden-ratio constant) mapping a
#: block address to a uniform 16-bit compressibility draw.
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = 0xFFFFFFFFFFFFFFFF


def _share_threshold(share: float) -> int:
    return int(round(share * 65536.0))


class CompressedNuRAPIDCache(NuRAPIDCache):
    """NuRAPID whose fastest d-groups hold compressed lines."""

    def __init__(
        self,
        config: NuRAPIDConfig,
        compression: CompressionConfig,
        geometry=None,
        energy=None,
    ) -> None:
        if compression.compressed_dgroups >= config.n_dgroups:
            raise ConfigurationError(
                "at least one d-group must stay uncompressed to hold "
                f"incompressible lines (got {compression.compressed_dgroups} "
                f"compressed of {config.n_dgroups})"
            )
        if config.associativity % config.n_dgroups:
            raise ConfigurationError(
                "compressed NuRAPID requires associativity divisible by d-groups"
            )
        super().__init__(config, geometry=geometry, energy=energy)
        self.compression = compression
        ratio = compression.ratio
        k = compression.compressed_dgroups
        self._compressed_groups = k
        expanded = config.frames_per_dgroup * ratio
        if expanded > _PACK_FRAME_MASK:
            raise ConfigurationError(
                f"compressed d-group of {expanded} frames overflows packed tags"
            )
        for group in range(k):
            self._stores[group] = FrameStore(expanded, config.n_regions)
        ways_per_group = config.associativity // config.n_dgroups
        self._assoc_limit = (
            config.associativity + k * ways_per_group * (ratio - 1)
        )
        for group in range(k):
            self._data_cycles[group] = (
                self._data_cycles[group] + compression.decompression_cycles
            )
            self._hit_lat_f[group] = (
                self._hit_lat_f[group] + compression.decompression_cycles
            )
        self._default_threshold = _share_threshold(compression.compressible_share)
        self._core_thresholds: Optional[List[int]] = None
        if compression.core_shares is not None:
            self.set_core_shares(compression.core_shares)

    def set_core_shares(self, shares: Sequence[float]) -> None:
        """Per-core compressible shares for CMP runs.

        Core ids are recovered from the interleaver's address offset;
        cores beyond ``shares`` keep the config's scalar share.  The
        CMP engine calls this at build time with each core's benchmark
        compressibility, so the draw is per workload.
        """
        if len(shares) > MAX_CORES:
            raise ConfigurationError(f"at most {MAX_CORES} core shares")
        thresholds = [self._default_threshold] * MAX_CORES
        for core, share in enumerate(shares):
            if not 0.0 <= share <= 1.0:
                raise ConfigurationError(f"core share must be in [0, 1], got {share}")
            thresholds[core] = _share_threshold(share)
        self._core_thresholds = thresholds

    # --- the synthetic compressibility model ---

    def is_compressible(self, baddr: int) -> bool:
        """Deterministic per-line draw against the workload share."""
        if baddr >= self.PREWARM_BASE:
            return True  # prewarm dummies always fit the compressed frames
        if self._core_thresholds is not None:
            threshold = self._core_thresholds[
                (baddr >> CORE_ADDR_SHIFT) & (MAX_CORES - 1)
            ]
        else:
            threshold = self._default_threshold
        return ((baddr * _HASH_MULT) & _HASH_MASK) >> 48 < threshold

    # --- placement hooks ---

    def _fill_start_group(self, baddr: int) -> int:
        sc = self._scounts
        if self.is_compressible(baddr):
            sc["compressible_fills"] = sc.get("compressible_fills", 0) + 1
            return 0
        sc["incompressible_fills"] = sc.get("incompressible_fills", 0) + 1
        return self._compressed_groups

    def _promote(
        self, index: int, baddr: int, packed: int, target: int, now: float
    ) -> None:
        if target < self._compressed_groups and not self.is_compressible(baddr):
            target = self._compressed_groups
            source = (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
            if target >= source:
                # Already in the first uncompressed group: nowhere
                # faster this line can live.
                sc = self._scounts
                sc["compression_promotions_blocked"] = (
                    sc.get("compression_promotions_blocked", 0) + 1
                )
                return
        super()._promote(index, baddr, packed, target, now)

    def _ensure_chain_space(self, region: int, start: int) -> int:
        """Evict when the uncompressed tail of the region is full.

        An incompressible fill's demotion chain enters at the first
        uncompressed d-group and cannot reach free frames in the
        compressed groups it skipped, so if every group in the tail is
        out of frames for this region the chain would run off the end.
        Evict a distance victim from the slowest group holding one —
        the incompressible share of the region is simply over capacity.
        """
        n_dgroups = self.config.n_dgroups
        for group in range(start, n_dgroups):
            if self._stores[group].has_free(region):
                return 0
        for group in range(n_dgroups - 1, start - 1, -1):
            if (
                not self._stores[group].occupied_count
                or self._replacer.tracked(group, region) == 0
            ):
                continue
            frame = self._replacer.select_victim(group, region)
            packed = self._invalidate_frame(group, frame)
            self.stats.add("evictions")
            self.stats.add("compression_capacity_evictions")
            if packed & _PACK_DIRTY:
                self.stats.add("writebacks")
                self.energy.charge(f"{self.name}.dg{group}.read")
                self.stats.add("dgroup_accesses")
                return 1
            return 0
        raise SimulationError(
            f"region {region} has no evictable frame in the uncompressed tail"
        )

    def _prewarm_cache_key(self) -> str:
        # Compressed d-groups change the store shapes and way counts,
        # so the prototype key must carry the compression config too.
        return f"{super()._prewarm_cache_key()}|{self.compression!r}"

    def _prewarm_ways(self) -> List[int]:
        ratio = self.compression.ratio
        k = self._compressed_groups
        ways_per_group = self.config.associativity // self.config.n_dgroups
        return [
            ways_per_group * ratio if group < k else ways_per_group
            for group in range(self.config.n_dgroups)
        ]

    # --- verification ---

    def check_invariants(self) -> None:
        super().check_invariants()
        for tag_set in self._tags:
            for baddr, packed in tag_set.items():
                dgroup = (packed >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
                if dgroup < self._compressed_groups and not self.is_compressible(
                    baddr
                ):
                    raise SimulationError(
                        f"incompressible block {baddr:#x} resident in "
                        f"compressed d-group {dgroup}"
                    )

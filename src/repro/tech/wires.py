"""Repeated global-wire delay and energy.

Long on-chip wires are broken into repeated segments, making delay
linear in distance rather than quadratic; this is the regime the paper
is about ("the access latency of distant subarrays is dominated by the
long wires between the subarrays and the core", §3.3).  The model here
is the standard first-order one: a velocity (ps/mm) and a switching
energy (pJ/bit/mm), both from :class:`~repro.tech.params.TechnologyParams`.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.tech.params import TechnologyParams


class WireModel:
    """Delay and energy of optimally repeated on-chip wires."""

    def __init__(self, tech: TechnologyParams) -> None:
        self.tech = tech

    def delay_ps(self, distance_mm: float) -> float:
        """One-way signal delay over ``distance_mm`` of repeated wire."""
        if distance_mm < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance_mm}")
        return distance_mm * self.tech.wire_delay_ps_per_mm

    def round_trip_ps(self, distance_mm: float) -> float:
        """Request out + data back over the same distance."""
        return 2.0 * self.delay_ps(distance_mm)

    def energy_pj(self, distance_mm: float, bits: int) -> float:
        """Switching energy to move ``bits`` over ``distance_mm``.

        Charged once per traversal; a round trip that carries an address
        out and a data block back should be charged as two calls with
        the respective widths.
        """
        if bits < 0:
            raise ConfigurationError(f"bits must be non-negative, got {bits}")
        if distance_mm < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance_mm}")
        return distance_mm * bits * self.tech.wire_energy_pj_per_bit_mm

    def transfer_energy_pj(self, distance_mm: float, address_bits: int, data_bits: int) -> float:
        """Energy for a full transaction: address out, data back."""
        return self.energy_pj(distance_mm, address_bits) + self.energy_pj(distance_mm, data_bits)

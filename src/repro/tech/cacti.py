"""Analytical whole-array cache model ("mini-Cacti").

The paper modifies Cacti 3 to (1) treat each d-group as an independent
tagless cache optimized for size and access time, (2) account for the
wire delay to route around closer d-groups, and (3) optimize the
unified tag array for access time (§4).  This module reproduces step
(1) and (3): given a capacity and output width it searches subarray
organizations, composes tile delay with H-tree routing, and reports
access time, per-access energy, and area.  Step (2) — placement-
dependent routing — lives in :mod:`repro.floorplan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.tech.params import TECH_70NM, TechnologyParams
from repro.tech.subarray import SubarrayModel
from repro.tech.wires import WireModel

#: Candidate subarray dimensions explored by the organization search.
_ROW_CANDIDATES = (64, 128, 256, 512, 1024)
_COL_CANDIDATES = (64, 128, 256, 512, 1024, 2048)

#: Physical address bits routed to subarrays on each access.
ADDRESS_BITS = 44


@dataclass(frozen=True)
class ArrayOrganization:
    """A concrete tiling of an array into identical subarrays."""

    subarray: SubarrayModel
    count: int
    grid_width: int
    grid_height: int

    @property
    def width_mm(self) -> float:
        overhead = math.sqrt(self.subarray.tech.array_overhead)
        return self.grid_width * self.subarray.width_mm * overhead

    @property
    def height_mm(self) -> float:
        overhead = math.sqrt(self.subarray.tech.array_overhead)
        return self.grid_height * self.subarray.height_mm * overhead

    @property
    def htree_levels(self) -> int:
        """Branching depth of the H-tree distributing the address."""
        return max(1, math.ceil(math.log2(self.count))) if self.count > 1 else 1

    @property
    def area_mm2(self) -> float:
        return self.count * self.subarray.area_mm2

    @property
    def routing_distance_mm(self) -> float:
        """H-tree distance from the array edge to the farthest tile."""
        return (self.width_mm + self.height_mm) / 2.0


@dataclass(frozen=True)
class CacheArrayModel:
    """Timing/energy/area of one array (a d-group, bank, or tag array).

    ``access_time_ps`` covers decode through data-at-edge for the
    array itself; routing from the processor to the array's edge is the
    floorplan's job.
    """

    name: str
    tech: TechnologyParams
    capacity_bits: int
    output_bits: int
    organization: ArrayOrganization
    access_time_ps: float
    read_energy_pj: float
    compare_bits: int = 0

    @property
    def area_mm2(self) -> float:
        return self.organization.area_mm2

    @property
    def access_cycles(self) -> int:
        return self.tech.ps_to_cycles(self.access_time_ps)

    @property
    def read_energy_nj(self) -> float:
        return self.read_energy_pj / 1000.0

    def write_energy_pj(self) -> float:
        """Writes swing full bitlines; charge a small premium over reads."""
        return self.read_energy_pj * 1.15


class MiniCacti:
    """Searches subarray organizations and builds :class:`CacheArrayModel` s."""

    def __init__(self, tech: TechnologyParams = TECH_70NM) -> None:
        self.tech = tech
        self.wires = WireModel(tech)

    # --- public constructors ---

    def data_array(
        self,
        capacity_bytes: int,
        block_bytes: int,
        name: str = "",
        extra_bits_per_block: int = 0,
    ) -> CacheArrayModel:
        """A tagless data array (a NuRAPID d-group or conventional data side).

        One access reads a full ``block_bytes`` block.
        ``extra_bits_per_block`` widens every frame (NuRAPID's reverse
        pointer rides alongside the data — §2.2).
        """
        if capacity_bytes <= 0 or block_bytes <= 0:
            raise ConfigurationError("capacity and block size must be positive")
        if capacity_bytes % block_bytes:
            raise ConfigurationError("capacity must be a whole number of blocks")
        if extra_bits_per_block < 0:
            raise ConfigurationError("extra_bits_per_block must be non-negative")
        blocks = capacity_bytes // block_bytes
        bits_per_block = block_bytes * 8 + extra_bits_per_block
        return self._build(
            name=name or f"data-{capacity_bytes // 1024}KB",
            capacity_bits=blocks * bits_per_block,
            output_bits=bits_per_block,
            compare_bits=0,
        )

    def tag_array(
        self,
        sets: int,
        associativity: int,
        entry_bits: int,
        name: str = "",
    ) -> CacheArrayModel:
        """A set-associative tag array; one access reads a full set of tags.

        ``entry_bits`` includes tag, state, and (for NuRAPID) the
        forward pointer — the paper notes the pointer only makes the tag
        array "a little wider than usual" (§2.1).
        """
        if sets <= 0 or associativity <= 0 or entry_bits <= 0:
            raise ConfigurationError("tag array parameters must be positive")
        model = self._build(
            name=name or f"tag-{sets}x{associativity}",
            capacity_bits=sets * associativity * entry_bits,
            output_bits=associativity * entry_bits,
            compare_bits=associativity * entry_bits,
        )
        return model

    # --- organization search ---

    def _build(
        self,
        name: str,
        capacity_bits: int,
        output_bits: int,
        compare_bits: int,
    ) -> CacheArrayModel:
        best: Optional[Tuple[float, float, ArrayOrganization]] = None
        for org in self._organizations(capacity_bits):
            delay = self._access_time_ps(org, compare_bits)
            energy = self._read_energy_pj(org, output_bits, compare_bits)
            # Optimize for access time first (the paper's objective for
            # both d-groups and the tag array), then energy.
            key = (delay, energy)
            if best is None or key < (best[0], best[1]):
                best = (delay, energy, org)
        if best is None:
            raise ConfigurationError(f"no valid organization for {capacity_bits} bits")
        delay, energy, org = best
        return CacheArrayModel(
            name=name,
            tech=self.tech,
            capacity_bits=capacity_bits,
            output_bits=output_bits,
            organization=org,
            access_time_ps=delay,
            read_energy_pj=energy,
            compare_bits=compare_bits,
        )

    def _organizations(self, capacity_bits: int) -> Iterable[ArrayOrganization]:
        # Arrays smaller than the smallest tile (tiny tag arrays) just
        # occupy one minimally-sized tile.
        min_tile = _ROW_CANDIDATES[0] * _COL_CANDIDATES[0]
        if capacity_bits < min_tile:
            yield ArrayOrganization(
                subarray=SubarrayModel(
                    self.tech, _ROW_CANDIDATES[0], _COL_CANDIDATES[0]
                ),
                count=1,
                grid_width=1,
                grid_height=1,
            )
            return
        for rows in _ROW_CANDIDATES:
            for cols in _COL_CANDIDATES:
                tile_bits = rows * cols
                if tile_bits > capacity_bits:
                    continue
                count = math.ceil(capacity_bits / tile_bits)
                grid_w = math.ceil(math.sqrt(count))
                grid_h = math.ceil(count / grid_w)
                yield ArrayOrganization(
                    subarray=SubarrayModel(self.tech, rows, cols),
                    count=count,
                    grid_width=grid_w,
                    grid_height=grid_h,
                )

    def _access_time_ps(self, org: ArrayOrganization, compare_bits: int) -> float:
        tile = org.subarray
        routing = self.wires.round_trip_ps(org.routing_distance_mm)
        routing *= self.tech.internal_wire_factor
        routing += org.htree_levels * self.tech.htree_level_ps
        capacity_mb = org.count * tile.bits / (8 * 1024 * 1024)
        penalty = (
            max(0.0, capacity_mb - 2.0) ** 2
            * self.tech.large_array_penalty_ps_per_mb2
        )
        delay = tile.access_delay_ps + routing + penalty
        if compare_bits:
            # Comparators and way-select mux after the tags arrive.
            delay += 4.0 * self.tech.fo4_ps
        return delay

    def _read_energy_pj(self, org: ArrayOrganization, output_bits: int, compare_bits: int) -> float:
        tile = org.subarray
        activated = max(1, math.ceil(output_bits / tile.cols))
        activated = min(activated, org.count)
        bits_per_tile = math.ceil(output_bits / activated)
        tiles = activated * tile.read_energy_pj(min(bits_per_tile, tile.cols))
        # Address fans out over the H-tree; data returns along a single
        # H-tree path whose average length is a third of the maximum
        # (output muxing keeps frequently-selected tiles near the port).
        address = self.wires.energy_pj(org.routing_distance_mm, ADDRESS_BITS)
        data = self.wires.energy_pj(org.routing_distance_mm / 3.0, output_bits)
        compare = compare_bits * self.tech.compare_energy_pj_per_bit
        return tiles + address + data + compare

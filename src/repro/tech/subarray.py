"""SRAM subarray timing, energy, and area.

A subarray is the atomic SRAM tile: a grid of 6T cells with a row
decoder on one edge and sense amplifiers on another.  Large caches are
built from many subarrays (the Itanium II's 3 MB L3 uses 135 of them —
§3.1); the :mod:`repro.tech.cacti` model composes these tiles and adds
inter-tile routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.tech.params import TechnologyParams


@dataclass(frozen=True)
class SubarrayModel:
    """A ``rows`` x ``cols`` SRAM tile (cols counted in bits).

    Delay components follow the classic Cacti decomposition: predecode
    + row decode, wordline RC across the tile, bitline RC down the
    tile, then sensing.  Within-tile wires are thin local metal; we
    model their RC with the elmore-style square-law term rather than
    the repeated-wire velocity used between tiles.
    """

    tech: TechnologyParams
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ConfigurationError(
                f"subarray must be at least 2x2, got {self.rows}x{self.cols}"
            )
        if self.rows & (self.rows - 1) or self.cols & (self.cols - 1):
            raise ConfigurationError("subarray dimensions must be powers of two")

    # --- geometry ---

    @property
    def bits(self) -> int:
        return self.rows * self.cols

    @property
    def width_mm(self) -> float:
        """Physical width (along the wordline), including the decoder strip."""
        cell_edge_um = math.sqrt(self.tech.sram_cell_um2)
        return (self.cols * cell_edge_um + self.tech.decode_strip_um) / 1000.0

    @property
    def height_mm(self) -> float:
        """Physical height (along the bitline), including the sense strip."""
        cell_edge_um = math.sqrt(self.tech.sram_cell_um2)
        return (self.rows * cell_edge_um + self.tech.sense_strip_um) / 1000.0

    @property
    def area_mm2(self) -> float:
        """Tile area including peripheral strips and routing overhead.

        The per-tile strips are what make armies of tiny tiles
        unattractive: halving the tile dimensions quadruples the number
        of strips paid for the same capacity.
        """
        return self.width_mm * self.height_mm * self.tech.array_overhead

    # --- timing ---

    @property
    def decode_delay_ps(self) -> float:
        levels = max(1, int(math.ceil(math.log2(self.rows))))
        return self.tech.decode_fixed_ps + levels * self.tech.decode_ps_per_level

    @property
    def wordline_delay_ps(self) -> float:
        # Local-wire RC grows quadratically with length but the lengths
        # are sub-millimetre; fold the constants into the global wire
        # velocity with a 0.5 distributed-RC factor.
        return 0.5 * self.width_mm * self.tech.wire_delay_ps_per_mm

    @property
    def bitline_delay_ps(self) -> float:
        return 0.5 * self.height_mm * self.tech.wire_delay_ps_per_mm

    @property
    def access_delay_ps(self) -> float:
        """Decode through sense for one read of this tile."""
        return (
            self.decode_delay_ps
            + self.wordline_delay_ps
            + self.bitline_delay_ps
            + self.tech.sense_delay_ps
        )

    # --- energy ---

    def read_energy_pj(self, bits_out: int) -> float:
        """Energy of one read activating a full row, sensing ``bits_out``."""
        if bits_out < 0 or bits_out > self.cols:
            raise ConfigurationError(
                f"bits_out must be in [0, {self.cols}], got {bits_out}"
            )
        bitline = self.cols * self.tech.bitline_energy_pj_per_cell
        sense = bits_out * self.tech.sense_energy_pj_per_bit
        return self.tech.decode_energy_pj + bitline + sense

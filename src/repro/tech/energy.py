"""Per-operation energy bookkeeping.

Caches don't compute circuit energies on the fly; at construction time
they register each operation they can perform (tag probe, d-group read,
swap leg, smart-search probe, network hop...) in an :class:`EnergyBook`
with its cost in nanojoules, then charge operations by name during
simulation.  This keeps the hot path cheap and makes the energy model
auditable: ``book.table()`` is exactly the paper's Table 2 shape.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError, SimulationError


class EnergyBook:
    """Registry of named operation energies plus consumption counters."""

    def __init__(self) -> None:
        self._cost_nj: Dict[str, float] = {}
        self._count: Dict[str, int] = {}

    def register(self, operation: str, cost_nj: float) -> None:
        """Define (or redefine) the cost of an operation."""
        if cost_nj < 0:
            raise ConfigurationError(
                f"energy cost must be non-negative, got {cost_nj} for {operation!r}"
            )
        self._cost_nj[operation] = cost_nj
        self._count.setdefault(operation, 0)

    def cost(self, operation: str) -> float:
        try:
            return self._cost_nj[operation]
        except KeyError:
            raise SimulationError(f"unregistered energy operation {operation!r}") from None

    def charge(self, operation: str, times: int = 1) -> float:
        """Record ``times`` occurrences; returns the energy consumed (nJ)."""
        if times < 0:
            raise SimulationError(f"cannot charge negative count {times}")
        cost = self.cost(operation)
        self._count[operation] = self._count.get(operation, 0) + times
        return cost * times

    def count(self, operation: str) -> int:
        return self._count.get(operation, 0)

    def total_nj(self) -> float:
        return sum(self._cost_nj[op] * n for op, n in self._count.items())

    def breakdown_nj(self) -> Dict[str, float]:
        """Total energy per operation, for reporting."""
        return {op: self._cost_nj[op] * n for op, n in self._count.items() if n}

    def table(self) -> List[Tuple[str, float]]:
        """(operation, cost-in-nJ) rows sorted by name — the Table 2 shape."""
        return sorted(self._cost_nj.items())

    def reset_counts(self) -> None:
        for op in self._count:
            self._count[op] = 0

    def operations(self) -> List[str]:
        return sorted(self._cost_nj)

"""Process technology parameters.

All experiments in the paper run at 70 nm and 5 GHz (§4).  The
constants below are representative of a 70 nm process (ITRS-era
projections, the same vintage Cacti 3 extrapolated to); the handful
marked *calibration* are tuned so the mini-Cacti outputs land near the
paper's Table 2 (energies) and Table 4 (latencies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyParams:
    """A process corner plus the clock the system runs at.

    Units are explicit in the field names: seconds, meters (mm), farads
    (fF), joules (pJ) as noted.
    """

    name: str
    feature_nm: float
    vdd: float
    clock_ghz: float
    # One fan-out-of-4 inverter delay; the basic unit of logic delay.
    fo4_ps: float
    # Repeated global wire: effective signal velocity and switching energy.
    wire_delay_ps_per_mm: float
    wire_energy_pj_per_bit_mm: float
    # 6T SRAM cell footprint (square micrometres) including intra-array
    # overhead (wordline drivers amortized, well spacing).
    sram_cell_um2: float
    # Area overhead factor for inter-subarray routing channels.
    array_overhead: float
    # Per-subarray peripheral strips (decoder edge, sense-amp edge), um.
    decode_strip_um: float
    sense_strip_um: float
    # Buffer delay per H-tree branching level (ps).
    htree_level_ps: float
    # Intra-array wires are thinner local metal with sparser repeaters
    # than the global fabric; their effective velocity is this factor
    # slower.  *Calibration.*
    internal_wire_factor: float
    # Cacti 3 shows superlinear access-time growth for monolithic
    # arrays beyond ~2 MB (bitline/wordline partitioning limits); this
    # quadratic penalty reproduces that knee.  *Calibration.*
    large_array_penalty_ps_per_mb2: float
    # Bitline energy per cell on an activated wordline (pJ); dominated
    # by bitline swing and sense amplification.  *Calibration.*
    bitline_energy_pj_per_cell: float
    # Sense amp + output driver delay (ps) and energy per output bit (pJ).
    sense_delay_ps: float
    sense_energy_pj_per_bit: float
    # Row decoder: delay per doubling of rows, plus fixed predecode (ps).
    decode_ps_per_level: float
    decode_fixed_ps: float
    decode_energy_pj: float
    # Comparator energy per tag bit compared (pJ).
    compare_energy_pj_per_bit: float

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigurationError("clock_ghz must be positive")
        if self.fo4_ps <= 0 or self.wire_delay_ps_per_mm <= 0:
            raise ConfigurationError("delays must be positive")

    @property
    def cycle_ps(self) -> float:
        """Clock period in picoseconds."""
        return 1000.0 / self.clock_ghz

    def ps_to_cycles(self, delay_ps: float) -> int:
        """Round a delay up to whole clock cycles (pipeline registers)."""
        if delay_ps < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ps}")
        cycles = int(delay_ps / self.cycle_ps)
        if cycles * self.cycle_ps < delay_ps - 1e-9:
            cycles += 1
        return max(cycles, 1)


#: The 70 nm / 5 GHz corner used throughout the paper's evaluation.
TECH_70NM = TechnologyParams(
    name="70nm-5GHz",
    feature_nm=70.0,
    vdd=0.9,
    clock_ghz=5.0,
    fo4_ps=17.5,
    # ~16 mm/ns for optimally repeated global wire at this node; routing
    # around other d-groups uses the same fabric.
    wire_delay_ps_per_mm=62.0,
    wire_energy_pj_per_bit_mm=0.17,
    sram_cell_um2=0.7,
    array_overhead=1.2,
    decode_strip_um=22.0,
    sense_strip_um=28.0,
    htree_level_ps=11.0,
    internal_wire_factor=1.5,
    large_array_penalty_ps_per_mb2=125.0,
    bitline_energy_pj_per_cell=0.00115,
    sense_delay_ps=90.0,
    sense_energy_pj_per_bit=0.009,
    decode_ps_per_level=14.0,
    decode_fixed_ps=30.0,
    decode_energy_pj=1.8,
    compare_energy_pj_per_bit=0.04,
)

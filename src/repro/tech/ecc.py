"""SEC-DED error-correcting codes over cache blocks (§3.1).

The paper's third layout argument: spreading an error-corrected block
over many subarrays makes it unlikely that one particle strike corrupts
more bits than the code protects.  This module provides the actual
code — an extended Hamming (SEC-DED) encoder/decoder over arbitrary
word widths — plus the interleaving math that turns a physical
multi-bit upset into per-word single-bit errors when a block is spread
across enough subarrays.

Used by :mod:`repro.floorplan.spares` and the layout ablation
experiments; fully self-contained and exhaustively testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigurationError


def _parity_positions(data_bits: int) -> List[int]:
    """1-based positions of Hamming parity bits for ``data_bits``."""
    positions = []
    p = 1
    while p <= data_bits + len(positions):
        positions.append(p)
        p <<= 1
    return positions


def parity_bits_needed(data_bits: int) -> int:
    """Hamming parity count r such that 2^r >= data + r + 1."""
    if data_bits <= 0:
        raise ConfigurationError("data width must be positive")
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class DecodeStatus(enum.Enum):
    """Outcome of a SEC-DED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected-uncorrectable"
    #: >2 bit errors may alias to a "corrected" word with wrong data;
    #: the decoder cannot see this, but tests can, via the oracle.
    MISCORRECTED = "miscorrected"


@dataclass(frozen=True)
class DecodeResult:
    status: DecodeStatus
    data: int
    corrected_position: int = 0  # 1-based codeword position, 0 = none


class SECDED:
    """Single-error-correct, double-error-detect extended Hamming code."""

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ConfigurationError("data width must be positive")
        self.data_bits = data_bits
        self.parity_bits = parity_bits_needed(data_bits)
        #: total codeword length including the overall parity bit.
        self.codeword_bits = data_bits + self.parity_bits + 1
        self._parity_positions = set(_parity_positions(data_bits))

    # --- bit layout: positions 1..n, powers of two are parity ---

    def _data_positions(self) -> List[int]:
        positions = []
        p = 1
        while len(positions) < self.data_bits:
            if p not in self._parity_positions:
                positions.append(p)
            p += 1
        return positions

    def encode(self, data: int) -> int:
        """Return the codeword (bit 0 = position 1, MSB = overall parity)."""
        if data < 0 or data >= (1 << self.data_bits):
            raise ConfigurationError(
                f"data {data:#x} out of range for {self.data_bits} bits"
            )
        word = 0
        for i, pos in enumerate(self._data_positions()):
            if (data >> i) & 1:
                word |= 1 << (pos - 1)
        for p in self._parity_positions:
            parity = 0
            pos = 1
            while pos <= self.data_bits + self.parity_bits:
                if pos & p and (word >> (pos - 1)) & 1:
                    parity ^= 1
                pos += 1
            if parity:
                word |= 1 << (p - 1)
        # Extended (overall) parity over everything so far.
        if bin(word).count("1") & 1:
            word |= 1 << (self.codeword_bits - 1)
        return word

    def _syndrome(self, word: int) -> int:
        syndrome = 0
        for pos in range(1, self.data_bits + self.parity_bits + 1):
            if (word >> (pos - 1)) & 1:
                syndrome ^= pos
        return syndrome

    def _extract(self, word: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions()):
            if (word >> (pos - 1)) & 1:
                data |= 1 << i
        return data

    def decode(self, word: int) -> DecodeResult:
        """Correct one flipped bit, detect two."""
        if word < 0 or word >= (1 << self.codeword_bits):
            raise ConfigurationError("codeword out of range")
        syndrome = self._syndrome(word)
        overall = bin(word).count("1") & 1  # should be even
        if syndrome == 0 and overall == 0:
            return DecodeResult(DecodeStatus.CLEAN, self._extract(word))
        if overall == 1:
            # Odd total parity: a single-bit error (possibly in the
            # overall parity bit itself) — correctable.
            if syndrome == 0:
                corrected = word ^ (1 << (self.codeword_bits - 1))
                return DecodeResult(
                    DecodeStatus.CORRECTED,
                    self._extract(corrected),
                    corrected_position=self.codeword_bits,
                )
            corrected = word ^ (1 << (syndrome - 1))
            return DecodeResult(
                DecodeStatus.CORRECTED,
                self._extract(corrected),
                corrected_position=syndrome,
            )
        # Even overall parity with a nonzero syndrome: double error.
        return DecodeResult(
            DecodeStatus.DETECTED_UNCORRECTABLE, self._extract(word)
        )


@dataclass(frozen=True)
class InterleavingPlan:
    """How a block's ECC words spread over subarrays (§3.1).

    A block holds ``words`` ECC codewords of ``word_bits`` each,
    spread over ``subarrays`` tiles with ideal bit-interleaving: each
    word's bits land in as many different subarrays as possible, and
    within a subarray adjacent cells cycle through different words.
    """

    words: int
    word_bits: int
    subarrays: int

    def __post_init__(self) -> None:
        if min(self.words, self.word_bits, self.subarrays) <= 0:
            raise ConfigurationError("plan parameters must be positive")

    @property
    def total_bits(self) -> int:
        return self.words * self.word_bits

    @property
    def cells_per_subarray(self) -> int:
        return -(-self.total_bits // self.subarrays)  # ceil

    def bits_per_word_per_subarray(self) -> int:
        """Max bits of any single ECC word stored in one subarray.

        The §3.1 figure of merit: once this is 1, *any* failure
        confined to one subarray — including losing the whole tile —
        flips at most one bit per word and SEC-DED corrects it.
        """
        return -(-self.word_bits // self.subarrays)  # ceil

    def survives_subarray_loss(self) -> bool:
        """True if a whole-subarray failure stays correctable."""
        return self.bits_per_word_per_subarray() <= 1

    def widest_correctable_adjacent_upset(self) -> int:
        """Widest run of adjacent flipped cells in ONE subarray that is
        guaranteed correctable.

        With word-cycling cell assignment a run revisits a word only
        after ``words`` cells — unless the word has a single bit in the
        subarray, in which case the entire subarray's contents are
        correctable.
        """
        if self.survives_subarray_loss():
            return self.cells_per_subarray
        return self.words

    def survives_adjacent_upset(self, upset_bits: int) -> bool:
        """True if an ``upset_bits``-wide strike stays correctable."""
        if upset_bits < 0:
            raise ConfigurationError("upset width must be non-negative")
        return upset_bits <= self.widest_correctable_adjacent_upset()


def protection_overhead(block_bytes: int, word_bits: int = 64) -> Tuple[int, float]:
    """(total ECC bits, fractional overhead) to protect a block.

    The conventional choice is SEC-DED per 64-bit word: 8 check bits
    per word, 12.5% overhead — the figure large caches of the paper's
    era (Itanium II) actually paid.
    """
    if block_bytes <= 0 or word_bits <= 0:
        raise ConfigurationError("sizes must be positive")
    total_bits = block_bytes * 8
    if total_bits % word_bits:
        raise ConfigurationError("block must be a whole number of ECC words")
    words = total_bits // word_bits
    check_bits_per_word = parity_bits_needed(word_bits) + 1
    total = words * check_bits_per_word
    return total, total / total_bits

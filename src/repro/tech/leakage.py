"""Static (leakage) power model for the cache arrays.

The paper evaluates dynamic energy only, but at 70 nm leakage was
already a first-order concern, and NuRAPID's few-large-d-group
organization admits a natural extension the paper leaves as future
work: gating the sleep transistors of far d-groups that hold only cold
data.  This module provides the substrate — per-bit leakage power,
per-array totals, temperature dependence, and a gating model — used by
the ``ablation_leakage`` experiment.

The baseline per-bit leakage is representative of 70 nm high-VT SRAM;
relative comparisons (gated vs ungated, NuRAPID vs D-NUCA tag
overheads) are the meaningful outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.common.errors import ConfigurationError
from repro.tech.params import TECH_70NM, TechnologyParams


@dataclass(frozen=True)
class LeakageParams:
    """Leakage behaviour of the SRAM arrays."""

    #: Leakage power per storage bit at the reference temperature (nW).
    nw_per_bit: float = 0.02
    #: Reference junction temperature (Kelvin).
    reference_temp_k: float = 353.0
    #: Exponential temperature sensitivity: leakage doubles every
    #: ``doubling_k`` Kelvin (a standard first-order subthreshold fit).
    doubling_k: float = 25.0
    #: Fraction of leakage that remains when an array sleeps (drowsy /
    #: gated-VDD retention mode).
    gated_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.nw_per_bit < 0 or self.doubling_k <= 0:
            raise ConfigurationError("invalid leakage parameters")
        if not 0.0 <= self.gated_fraction <= 1.0:
            raise ConfigurationError("gated_fraction must be in [0, 1]")

    def scale_for_temperature(self, temp_k: float) -> float:
        """Multiplier on leakage at ``temp_k`` vs the reference."""
        if temp_k <= 0:
            raise ConfigurationError("temperature must be positive Kelvin")
        return 2.0 ** ((temp_k - self.reference_temp_k) / self.doubling_k)


class LeakageModel:
    """Leakage accounting for a set of named arrays."""

    def __init__(
        self,
        params: LeakageParams = LeakageParams(),
        tech: TechnologyParams = TECH_70NM,
    ) -> None:
        self.params = params
        self.tech = tech
        self._array_bits: Dict[str, int] = {}
        self._gated: Dict[str, bool] = {}

    def add_array(self, name: str, bits: int) -> None:
        if bits <= 0:
            raise ConfigurationError(f"array {name!r} needs positive bits")
        if name in self._array_bits:
            raise ConfigurationError(f"duplicate array {name!r}")
        self._array_bits[name] = bits
        self._gated[name] = False

    def set_gated(self, name: str, gated: bool) -> None:
        if name not in self._array_bits:
            raise ConfigurationError(f"unknown array {name!r}")
        self._gated[name] = gated

    def power_nw(self, temp_k: float = 353.0) -> float:
        """Total leakage power in nanowatts at ``temp_k``."""
        scale = self.params.scale_for_temperature(temp_k)
        total = 0.0
        for name, bits in self._array_bits.items():
            per = bits * self.params.nw_per_bit * scale
            if self._gated[name]:
                per *= self.params.gated_fraction
            total += per
        return total

    def energy_nj(self, cycles: float, temp_k: float = 353.0) -> float:
        """Leakage energy over ``cycles`` at the technology's clock."""
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        seconds = cycles * self.tech.cycle_ps * 1e-12
        return self.power_nw(temp_k) * seconds  # nW * s = nJ

    def arrays(self) -> Sequence[str]:
        return sorted(self._array_bits)


def nurapid_leakage_model(
    capacity_bytes: int = 8 * 1024 * 1024,
    block_bytes: int = 128,
    n_dgroups: int = 4,
    pointer_bits_per_block: int = 32,
    params: LeakageParams = LeakageParams(),
) -> LeakageModel:
    """A leakage model with one array per d-group plus the tag array.

    Pointer overhead (forward + reverse, §2.4.3) leaks too; it is
    charged to the arrays that store it.
    """
    if capacity_bytes % (n_dgroups * block_bytes):
        raise ConfigurationError("capacity must divide into d-groups of blocks")
    model = LeakageModel(params)
    blocks = capacity_bytes // block_bytes
    per_dgroup_bits = (capacity_bytes // n_dgroups) * 8 + (
        blocks // n_dgroups
    ) * (pointer_bits_per_block // 2)
    for group in range(n_dgroups):
        model.add_array(f"dgroup{group}", per_dgroup_bits)
    tag_bits = blocks * (48 + pointer_bits_per_block // 2)
    model.add_array("tag", tag_bits)
    return model


def gating_savings(
    model: LeakageModel, gate_from_dgroup: int, n_dgroups: int, temp_k: float = 353.0
) -> float:
    """Fractional leakage saved by gating d-groups >= ``gate_from_dgroup``.

    The future-work extension: far d-groups mostly hold demoted, cold
    blocks; retention-mode gating keeps their contents while cutting
    their leakage to ``gated_fraction``.
    """
    if not 0 <= gate_from_dgroup <= n_dgroups:
        raise ConfigurationError("gate boundary out of range")
    baseline = model.power_nw(temp_k)
    for group in range(n_dgroups):
        model.set_gated(f"dgroup{group}", group >= gate_from_dgroup)
    gated = model.power_nw(temp_k)
    for group in range(n_dgroups):
        model.set_gated(f"dgroup{group}", False)
    if baseline == 0:
        return 0.0
    return 1.0 - gated / baseline


def leakage_vs_dynamic_share(
    leakage_nj: float, dynamic_nj: float
) -> float:
    """Leakage share of total cache energy (reporting helper)."""
    if leakage_nj < 0 or dynamic_nj < 0:
        raise ConfigurationError("energies must be non-negative")
    total = leakage_nj + dynamic_nj
    if total <= 0:
        return 0.0
    return leakage_nj / total


def arrhenius_table(params: LeakageParams, temps_k: Sequence[float]) -> Dict[float, float]:
    """Leakage multipliers at several temperatures (for reports)."""
    return {t: params.scale_for_temperature(t) for t in temps_k}


def validate_monotone_temperature(params: LeakageParams) -> bool:
    """Sanity helper used by tests: hotter must leak more."""
    scales = [params.scale_for_temperature(t) for t in (300.0, 330.0, 360.0, 390.0)]
    return all(a < b for a, b in zip(scales, scales[1:])) and not math.isinf(scales[-1])

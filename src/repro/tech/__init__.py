"""Technology and circuit models (a "mini-Cacti").

The paper derives d-group latencies and per-access energies from a
modified Cacti 3 at 70 nm / 5 GHz (§4, Tables 2 and 4).  This package
provides the equivalent substrate:

* :mod:`repro.tech.params` — 70 nm process constants and calibration
  knobs,
* :mod:`repro.tech.wires` — repeated-wire RC delay and switching
  energy,
* :mod:`repro.tech.subarray` — SRAM subarray timing/energy/area,
* :mod:`repro.tech.cacti` — whole-cache (or tagless d-group) analytical
  model with a subarray-organization search, and
* :mod:`repro.tech.energy` — the per-operation energy book that caches
  charge against.

Absolute numbers are calibrated to land near the paper's tables; the
*structure* (larger arrays are slower, farther arrays cost more wire
energy) is physical and uncalibrated.
"""

from repro.tech.params import TechnologyParams, TECH_70NM
from repro.tech.wires import WireModel
from repro.tech.subarray import SubarrayModel
from repro.tech.cacti import ArrayOrganization, CacheArrayModel, MiniCacti
from repro.tech.energy import EnergyBook
from repro.tech.ecc import InterleavingPlan, SECDED
from repro.tech.leakage import LeakageModel, LeakageParams

__all__ = [
    "ArrayOrganization",
    "InterleavingPlan",
    "LeakageModel",
    "LeakageParams",
    "SECDED",
    "CacheArrayModel",
    "EnergyBook",
    "MiniCacti",
    "SubarrayModel",
    "TECH_70NM",
    "TechnologyParams",
    "WireModel",
]

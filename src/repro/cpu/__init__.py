"""Processor substrate: core timing, branch prediction, energy.

The paper evaluates on an 8-wide out-of-order SimpleScalar/Wattch
system (Table 1).  Cycle-level OoO simulation of 500 M instructions
per application is not feasible in pure Python, so the core here is an
*analytic* timing model (see :mod:`repro.cpu.core`): non-memory work
proceeds at a per-benchmark core IPC, memory references walk the real
cache hierarchy, and each lower-level access charges its exposed
latency after an MLP/overlap discount bounded by the L1 MSHRs.  The
paper's performance deltas are produced entirely by the distribution
of L2 hit latencies and port/bank contention, which this model carries
through exactly.

:mod:`repro.cpu.branch` implements the Table 1 hybrid 2-level branch
predictor as a real substrate; :mod:`repro.cpu.wattch` implements the
Wattch-style whole-processor energy accounting used for the paper's
energy-delay results.
"""

from repro.cpu.branch import BimodalPredictor, GSharePredictor, HybridPredictor
from repro.cpu.core import CoreModel, CoreParams
from repro.cpu.wattch import EnergyDelayReport, ProcessorEnergyModel

__all__ = [
    "BimodalPredictor",
    "CoreModel",
    "CoreParams",
    "EnergyDelayReport",
    "GSharePredictor",
    "HybridPredictor",
    "ProcessorEnergyModel",
]

"""Analytic out-of-order core timing model.

The model charges three kinds of time, mirroring how an 8-wide OoO
core with a 64-entry RUU actually spends it (Table 1):

* *pipeline time*: instructions retire at the benchmark's core IPC
  (its IPC when every memory reference hits in the L1), including the
  L1's pipelined 3-cycle hits;
* *branch time*: mispredictions flush the pipeline for
  ``mispredict_penalty`` cycles, at the benchmark's mispredict rate
  (derived by running its branch stream through the real
  :class:`~repro.cpu.branch.HybridPredictor`);
* *memory stall time*: every access that misses the L1 exposes
  ``exposure`` of its beyond-L1 latency (the RUU hides the rest), and
  the 8 L1 MSHRs bound how many misses can be outstanding — when they
  are full the core waits for the earliest fill.

Because stalls are charged from the *measured* latency of each access
— including NuRAPID port queueing and D-NUCA bank contention — every
effect the paper studies flows through to IPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import AccessResult
from repro.caches.block import block_address
from repro.caches.mshr import MSHRFile


@dataclass(frozen=True)
class CoreParams:
    """Microarchitectural constants (Table 1)."""

    issue_width: int = 8
    ruu_entries: int = 64
    lsq_entries: int = 32
    mshrs: int = 8
    mispredict_penalty: int = 9
    l1_hit_cycles: int = 3
    l1_block_bytes: int = 32
    #: Optional asymmetry knob: exposed fraction of an off-chip miss
    #: relative to an on-chip hit (misses batch through MSHRs, hit
    #: chains serialize).  1.0 = symmetric, the default.
    memory_mlp_discount: float = 1.0

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.mshrs <= 0:
            raise ConfigurationError("issue width and MSHR count must be positive")
        if self.mispredict_penalty < 0 or self.l1_hit_cycles < 0:
            raise ConfigurationError("penalties must be non-negative")


class CoreModel:
    """Owns the cycle clock during one benchmark run."""

    def __init__(
        self,
        params: CoreParams,
        core_ipc: float,
        exposure: float,
        branch_fraction: float = 0.0,
        mispredict_rate: float = 0.0,
    ) -> None:
        if core_ipc <= 0:
            raise ConfigurationError(f"core IPC must be positive, got {core_ipc}")
        if not 0.0 <= exposure <= 1.0:
            raise ConfigurationError(f"exposure must be in [0, 1], got {exposure}")
        if not 0.0 <= branch_fraction <= 1.0:
            raise ConfigurationError("branch_fraction must be in [0, 1]")
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ConfigurationError("mispredict_rate must be in [0, 1]")
        self.params = params
        self.core_ipc = core_ipc
        self.exposure = exposure
        self.branch_fraction = branch_fraction
        self.mispredict_rate = mispredict_rate

        self.cycle = 0.0
        self.instructions = 0
        self.memory_accesses = 0
        self.stall_cycles = 0.0
        self.branch_penalty_cycles = 0.0
        self.mshr_stall_cycles = 0.0
        self._mshrs = MSHRFile(params.mshrs)

    # --- time charging ---

    def advance_instructions(self, count: int) -> None:
        """Retire ``count`` instructions of pipeline + branch work."""
        if count < 0:
            raise ConfigurationError(f"instruction count must be non-negative, got {count}")
        self.instructions += count
        self.cycle += count / self.core_ipc
        penalty = (
            count
            * self.branch_fraction
            * self.mispredict_rate
            * self.params.mispredict_penalty
        )
        self.branch_penalty_cycles += penalty
        self.cycle += penalty

    def note_memory_result(self, address: int, result: AccessResult) -> None:
        """Charge the exposed part of one memory access's latency.

        L1 hits are pipelined into the core IPC; anything slower stalls
        the core for ``exposure`` of its beyond-L1 latency, subject to
        MSHR availability.
        """
        self.memory_accesses += 1
        beyond_l1 = result.latency - self.params.l1_hit_cycles
        if result.hit and beyond_l1 <= 0:
            return
        if beyond_l1 <= 0:
            return

        issue_cycle = self.cycle
        self._mshrs.retire_completed(issue_cycle)
        if self._mshrs.full:
            wait_until = self._mshrs.earliest_fill()
            self.mshr_stall_cycles += wait_until - issue_cycle
            self.cycle = wait_until
            self._mshrs.retire_completed(self.cycle)
            self._mshrs.note_full_stall()

        exposure = self.exposure
        if result.level == "memory":
            exposure *= self.params.memory_mlp_discount
        exposed = beyond_l1 * exposure
        self.stall_cycles += exposed
        self.cycle += exposed

        block = block_address(address, self.params.l1_block_bytes)
        fill_at = self.cycle + beyond_l1 * (1.0 - self.exposure)
        if self._mshrs.lookup(block) is not None:
            self._mshrs.merge(block)
        else:
            self._mshrs.allocate(block, self.cycle, fill_at)

    def commit_batch(
        self,
        *,
        cycle: float,
        instructions: int,
        memory_accesses: int,
        branch_penalty_cycles: float,
        stall_cycles: float,
        mshr_stall_cycles: float,
    ) -> None:
        """Write back state accumulated by a batched replay engine.

        The fast kernel (:mod:`repro.sim.fastpath`) inlines
        :meth:`advance_instructions` and :meth:`note_memory_result`
        into its fused loop, accumulating the hot scalars in locals
        with the exact same sequence of float operations; this installs
        the final values (absolute, not deltas) in one call.  MSHR
        state is shared in place via :attr:`mshrs`, so only the scalar
        books need committing.
        """
        self.cycle = cycle
        self.instructions = instructions
        self.memory_accesses = memory_accesses
        self.branch_penalty_cycles = branch_penalty_cycles
        self.stall_cycles = stall_cycles
        self.mshr_stall_cycles = mshr_stall_cycles

    # --- results ---

    @property
    def ipc(self) -> float:
        if self.cycle == 0:
            return 0.0
        return self.instructions / self.cycle

    @property
    def mshrs(self) -> MSHRFile:
        """The L1 MSHR file (telemetry attaches its occupancy histogram)."""
        return self._mshrs

    @property
    def mshr_full_stalls(self) -> int:
        return self._mshrs.full_stalls

    def counters(self) -> dict:
        """Flat accounting snapshot; CMP runs label one per core."""
        return {
            "instructions": float(self.instructions),
            "cycles": float(self.cycle),
            "memory_accesses": float(self.memory_accesses),
            "stall_cycles": float(self.stall_cycles),
            "branch_penalty_cycles": float(self.branch_penalty_cycles),
            "mshr_stall_cycles": float(self.mshr_stall_cycles),
            "mshr_full_stalls": float(self.mshr_full_stalls),
        }

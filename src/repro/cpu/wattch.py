"""Wattch-style whole-processor energy accounting (§4).

The paper replaces Wattch's cache model with Cacti-derived energies
and keeps Wattch for everything else; here "everything else" is an
activity-based model with two constants: energy per committed
instruction (datapath, rename, RUU/LSQ, ALUs, result buses) and energy
per cycle (clock tree and always-on structures).  Cache energies come
from the per-cache :class:`~repro.tech.energy.EnergyBook` s, so the
cache share of processor energy — the quantity the paper's
energy-delay claim (§5.4.2) rides on — is exactly what the cache
models consumed.

Absolute wattage is not meaningful here (nor in the paper's relative
results); the constants are chosen so a D-NUCA-class L2 consumes on
the order of a tenth of processor energy, consistent with the paper's
7% energy-delay improvement deriving mostly from a 77% L2 energy
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorEnergyModel:
    """Per-activity energies for the non-cache processor."""

    core_nj_per_instruction: float = 0.25
    core_nj_per_cycle: float = 0.15

    def __post_init__(self) -> None:
        if self.core_nj_per_instruction < 0 or self.core_nj_per_cycle < 0:
            raise ConfigurationError("energies must be non-negative")

    def core_energy_nj(self, instructions: int, cycles: float) -> float:
        if instructions < 0 or cycles < 0:
            raise ConfigurationError("activity counts must be non-negative")
        return (
            instructions * self.core_nj_per_instruction
            + cycles * self.core_nj_per_cycle
        )


@dataclass
class EnergyDelayReport:
    """Processor-level energy, delay, and their product for one run."""

    instructions: int
    cycles: float
    core_nj: float
    l1_nj: float
    lower_nj: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return self.core_nj + self.l1_nj + self.lower_nj

    @property
    def energy_delay(self) -> float:
        """Energy x delay, the paper's §5.4.2 metric."""
        return self.total_nj * self.cycles

    @property
    def lower_cache_share(self) -> float:
        """Fraction of processor energy spent in the L2 (and L3)."""
        total = self.total_nj
        if total == 0:
            return 0.0
        return self.lower_nj / total

    def relative_to(self, base: "EnergyDelayReport") -> Dict[str, float]:
        """Ratios against a baseline run (same instruction count)."""
        if base.instructions != self.instructions:
            raise ConfigurationError(
                "energy-delay comparisons require equal instruction counts"
            )
        return {
            "delay": self.cycles / base.cycles,
            "energy": self.total_nj / base.total_nj,
            "energy_delay": self.energy_delay / base.energy_delay,
            "lower_cache_energy": (
                self.lower_nj / base.lower_nj if base.lower_nj else float("inf")
            ),
        }


def build_report(
    model: ProcessorEnergyModel,
    instructions: int,
    cycles: float,
    l1_nj: float,
    lower_nj: float,
    breakdown: Dict[str, float],
) -> EnergyDelayReport:
    """Assemble a report from run counts and cache energy totals."""
    return EnergyDelayReport(
        instructions=instructions,
        cycles=cycles,
        core_nj=model.core_energy_nj(instructions, cycles),
        l1_nj=l1_nj,
        lower_nj=lower_nj,
        breakdown=dict(breakdown),
    )

"""Branch predictors (Table 1: "2-level, hybrid, 8K entries").

A faithful hybrid predictor: a bimodal (per-PC 2-bit counter) component,
a gshare (global-history-xor-PC 2-bit counter) component, and a chooser
table of 2-bit counters picking between them per PC.  The main timing
loop charges mispredict penalties from rates, but this substrate is
real and exercised by examples and tests — and by the workload module's
branch-stream characterization, which derives each synthetic
benchmark's mispredict rate by running its branch stream through this
predictor.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigurationError


class _CounterTable:
    """A table of saturating 2-bit counters."""

    def __init__(self, entries: int, initial: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("table size must be a positive power of two")
        if not 0 <= initial <= 3:
            raise ConfigurationError("2-bit counters hold values 0..3")
        self.entries = entries
        self._mask = entries - 1
        self._counters: List[int] = [initial] * entries

    def index(self, key: int) -> int:
        return key & self._mask

    def predict(self, key: int) -> bool:
        return self._counters[key & self._mask] >= 2

    def update(self, key: int, taken: bool) -> None:
        i = key & self._mask
        if taken:
            if self._counters[i] < 3:
                self._counters[i] += 1
        elif self._counters[i] > 0:
            self._counters[i] -= 1


class BimodalPredictor:
    """Per-PC 2-bit counters."""

    def __init__(self, entries: int = 8192) -> None:
        self._table = _CounterTable(entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        predicted = self.predict(pc)
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        self._table.update(pc, taken)

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class GSharePredictor:
    """Global history XOR PC indexing into 2-bit counters."""

    def __init__(self, entries: int = 8192, history_bits: int = 12) -> None:
        if history_bits <= 0 or history_bits > 30:
            raise ConfigurationError("history_bits must be in [1, 30]")
        self._table = _CounterTable(entries)
        self.history_bits = history_bits
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _key(self, pc: int) -> int:
        return pc ^ self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._key(pc))

    def update(self, pc: int, taken: bool) -> None:
        predicted = self.predict(pc)
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        self._table.update(self._key(pc), taken)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class HybridPredictor:
    """Chooser-selected bimodal/gshare hybrid (the Table 1 predictor)."""

    def __init__(self, entries: int = 8192, history_bits: int = 12) -> None:
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self._chooser = _CounterTable(entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(pc):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_right = self.bimodal.predict(pc) == taken
        gshare_right = self.gshare.predict(pc) == taken
        predicted = self.predict(pc)
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        # Chooser trains toward whichever component was right.
        if gshare_right != bimodal_right:
            self._chooser.update(pc, gshare_right)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions

"""Figure 8: performance of 2/4/8-d-group NuRAPIDs vs base.

The capacity/latency trade-off of §5.3.2: the paper reports +0.5%,
+5.9%, +6.1% over the base case for 2, 4, and 8 d-groups — the 2-d-
group design's few extra first-group hits do not pay for its slow 4 MB
groups, and 8 d-groups barely edge out 4 while (Figure 10) swapping
2.2x more.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.sim.config import base_config, nurapid_config
from repro.workloads.spec2k import high_load_names, low_load_names, suite_names

GROUP_COUNTS = (2, 4, 8)


def run(scale: Scale) -> ExperimentReport:
    base = base_config()
    run_matrix(  # parallel prefetch of the whole grid
        [base, *(nurapid_config(n_dgroups=n) for n in GROUP_COUNTS)],
        suite_names(),
        scale,
    )
    rows = []
    rel = {n: {} for n in GROUP_COUNTS}
    swaps = {n: 0.0 for n in GROUP_COUNTS}
    for benchmark in suite_names():
        base_run = cached_run(base, benchmark, scale)
        row = {"benchmark": benchmark}
        for n in GROUP_COUNTS:
            r = cached_run(nurapid_config(n_dgroups=n), benchmark, scale)
            rel[n][benchmark] = r.ipc / base_run.ipc
            swaps[n] += r.stats.get("moves", 0.0)
            row[f"{n} d-groups"] = pct(rel[n][benchmark])
        rows.append(row)

    def mean(n, names):
        return sum(rel[n][b] for b in names) / len(names)

    summary = {}
    for n in GROUP_COUNTS:
        summary[f"{n}-d-group overall"] = mean(n, suite_names())
        summary[f"{n}-d-group high-load"] = mean(n, high_load_names())
        summary[f"{n}-d-group low-load"] = mean(n, low_load_names())
    if swaps[4]:
        summary["8dg/4dg swap ratio"] = swaps[8] / swaps[4]

    return ExperimentReport(
        experiment="figure8",
        title="Performance of 2/4/8-d-group NuRAPIDs relative to base",
        paper_expectation=(
            "+0.5% / +5.9% / +6.1% for 2 / 4 / 8 d-groups; 8 d-groups "
            "incur ~2.2x the promotion swaps of 4 for +0.2% performance"
        ),
        rows=rows,
        summary=summary,
    )

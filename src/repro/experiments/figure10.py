"""§5.4.2 / Figure 10: L2 energy and d-group access counts.

Compares dynamic L2 energy of NuRAPID (one design) against D-NUCA's
*ss-energy* policy (its energy-optimal variant) and the base L2+L3.
The paper's headline numbers: NuRAPID consumes **77% less** dynamic L2
energy than D-NUCA, and performs **61% fewer** d-group (data-array)
accesses because flexible placement needs far fewer swaps than bubble
promotion.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale, cached_run, run_matrix
from repro.nuca.config import SearchPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config
from repro.workloads.spec2k import suite_names


def run(scale: Scale) -> ExperimentReport:
    configs = {
        "base": base_config(),
        "dnuca-ss-energy": dnuca_config(policy=SearchPolicy.SS_ENERGY),
        "nurapid": nurapid_config(),
    }
    run_matrix(list(configs.values()), suite_names(), scale)  # parallel prefetch
    rows = []
    energy = {label: 0.0 for label in configs}
    dgroup_accesses = {label: 0.0 for label in configs}
    instructions = {label: 0 for label in configs}
    for benchmark in suite_names():
        row = {"benchmark": benchmark}
        for label, config in configs.items():
            r = cached_run(config, benchmark, scale)
            nj_per_ki = 1000.0 * r.lower_energy_nj / max(1, r.instructions)
            row[f"{label} nJ/1k-inst"] = round(nj_per_ki, 1)
            energy[label] += r.lower_energy_nj
            dgroup_accesses[label] += r.stats.get("dgroup_accesses", 0.0)
            instructions[label] += r.instructions
        rows.append(row)

    summary = {
        "nurapid energy / dnuca energy": energy["nurapid"] / energy["dnuca-ss-energy"],
        "energy reduction vs dnuca": 1.0 - energy["nurapid"] / energy["dnuca-ss-energy"],
        "nurapid energy / base energy": energy["nurapid"] / energy["base"],
    }
    if dgroup_accesses["dnuca-ss-energy"]:
        summary["dgroup-access reduction vs dnuca"] = (
            1.0 - dgroup_accesses["nurapid"] / dgroup_accesses["dnuca-ss-energy"]
        )

    return ExperimentReport(
        experiment="figure10",
        title="Dynamic L2 energy (and data-array access counts)",
        paper_expectation=(
            "NuRAPID uses 77% less dynamic L2 energy than D-NUCA (ss-energy) "
            "and performs 61% fewer d-group accesses"
        ),
        rows=rows,
        summary=summary,
        notes=(
            "energy from the per-operation books: tag/ss probes, d-group and "
            "bank reads/writes, swap legs, routing; D-NUCA switches are free"
        ),
    )

"""§5.4.2: processor energy-delay.

Whole-processor energy (Wattch-style core + L1s + L2/L3 books) times
delay, relative to the base hierarchy.  The paper: NuRAPID improves
processor energy-delay by ~7% over both the base case and D-NUCA —
against base the gain is mostly delay; against D-NUCA mostly energy.
D-NUCA is taken at its best for each axis (ss-performance for delay,
ss-energy for energy), matching the paper's separately-optimal
treatment; for the ED product we report both.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale, cached_run, run_matrix
from repro.nuca.config import SearchPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config
from repro.workloads.spec2k import suite_names


def run(scale: Scale) -> ExperimentReport:
    configs = {
        "base": base_config(),
        "dnuca-ss-perf": dnuca_config(policy=SearchPolicy.SS_PERFORMANCE),
        "dnuca-ss-energy": dnuca_config(policy=SearchPolicy.SS_ENERGY),
        "nurapid": nurapid_config(),
    }
    run_matrix(list(configs.values()), suite_names(), scale)  # parallel prefetch
    rows = []
    ed_ratio = {label: [] for label in configs if label != "base"}
    for benchmark in suite_names():
        base_run = cached_run(configs["base"], benchmark, scale)
        row = {"benchmark": benchmark}
        for label, config in configs.items():
            if label == "base":
                continue
            r = cached_run(config, benchmark, scale)
            ratio = r.energy_delay / base_run.energy_delay
            ed_ratio[label].append(ratio)
            row[f"{label} ED"] = round(ratio, 3)
        rows.append(row)

    n = len(suite_names())
    summary = {
        f"{label} mean ED vs base": sum(values) / n
        for label, values in ed_ratio.items()
    }
    best_dnuca = min(
        summary["dnuca-ss-perf mean ED vs base"],
        summary["dnuca-ss-energy mean ED vs base"],
    )
    summary["nurapid ED vs best dnuca"] = (
        summary["nurapid mean ED vs base"] / best_dnuca
    )

    return ExperimentReport(
        experiment="energy_delay",
        title="Processor energy-delay relative to base",
        paper_expectation=(
            "NuRAPID ~7% better energy-delay than both the base hierarchy "
            "and D-NUCA (ED ratio ~0.93)"
        ),
        rows=rows,
        summary=summary,
    )

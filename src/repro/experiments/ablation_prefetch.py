"""Prefetching ablation (extension beyond the paper).

Adds a classic multi-stream next-line prefetcher in front of the
NuRAPID L2 and the base hierarchy.  Two questions: how much of the
remaining miss latency does prefetching recover on stream-heavy
applications, and does NuRAPID's flexible placement coexist with
prefetch fills (which, like demand fills, enter the fastest d-group
and displace a random victim)?
"""

from __future__ import annotations

from typing import Dict

from repro.caches.prefetch import PrefetchingHierarchyAdapter
from repro.cpu.core import CoreModel
from repro.experiments.common import ExperimentReport, Scale, shared_trace
from repro.sim.config import SystemConfig, base_config, nurapid_config
from repro.sim.driver import make_system, _replay
from repro.workloads.spec2k import get_benchmark

SUBSET = ["swim", "equake", "applu", "twolf"]


def _run_with_prefetch(
    config: SystemConfig, benchmark: str, scale: Scale, enabled: bool
) -> Dict[str, float]:
    profile = get_benchmark(benchmark)
    trace = shared_trace(benchmark, scale)
    system = make_system(config)
    if enabled:
        adapter = PrefetchingHierarchyAdapter(system.hierarchy)
    else:
        adapter = system.hierarchy

    def new_core() -> CoreModel:
        return CoreModel(
            config.core, profile.core_ipc, profile.exposure,
            profile.branch_fraction, profile.mispredict_rate,
        )

    warm, measured = trace.split(scale.warmup_fraction)

    class _Driver:
        hierarchy = adapter

    warm_core = new_core()
    if len(warm):
        _replay(_Driver, warm_core, warm)
    system.reset_stats()
    core = new_core()
    core.cycle = warm_core.cycle
    c0, i0 = core.cycle, core.instructions
    _replay(_Driver, core, measured)
    out = {
        "ipc": (core.instructions - i0) / (core.cycle - c0),
    }
    if enabled:
        out["accuracy"] = adapter.prefetcher.stats.accuracy
        out["issued"] = float(adapter.prefetcher.stats.issued)
    return out


def run(scale: Scale) -> ExperimentReport:
    rows = []
    for benchmark in SUBSET:
        base_off = _run_with_prefetch(base_config(), benchmark, scale, False)
        base_on = _run_with_prefetch(base_config(), benchmark, scale, True)
        nur_off = _run_with_prefetch(nurapid_config(), benchmark, scale, False)
        nur_on = _run_with_prefetch(nurapid_config(), benchmark, scale, True)
        rows.append(
            {
                "benchmark": benchmark,
                "base +pf": f"{(base_on['ipc'] / base_off['ipc'] - 1) * 100:+.1f}%",
                "nurapid +pf": f"{(nur_on['ipc'] / nur_off['ipc'] - 1) * 100:+.1f}%",
                "pf accuracy": round(nur_on.get("accuracy", 0.0), 2),
                "pf issued": int(nur_on.get("issued", 0)),
            }
        )
    return ExperimentReport(
        experiment="ablation_prefetch",
        title="Stream prefetching on top of base and NuRAPID",
        paper_expectation=(
            "extension: stream-heavy apps (swim, equake) gain from "
            "prefetching on both systems; NuRAPID's flexible placement "
            "absorbs prefetch fills without displacing the hot set more "
            "than random replacement already does"
        ),
        rows=rows,
        notes=f"8 streams, degree 2, next-line; benchmarks: {', '.join(SUBSET)}",
    )

"""Layout ablations: the quantitative version of §3's arguments.

The paper argues qualitatively that D-NUCA's many small d-groups break
three large-cache design practices: block spreading for soft-error
tolerance, spare-subarray sharing for hard-error yield, and
decoder/mux balance.  These experiments put numbers on the first two:

* ``ablation_spares`` — manufacturing yield of the same 8 MB of
  subarrays organized as 4 large repair domains (NuRAPID) versus 128
  small ones (D-NUCA), across defect rates, with the same total spare
  budget.
* ``ablation_ecc`` — the widest adjacent-bit upset each organization
  survives with per-64-bit-word SEC-DED, as a function of how many
  subarrays a block spreads over.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale
from repro.tech.cacti import MiniCacti
from repro.tech.ecc import InterleavingPlan, SECDED, protection_overhead
from repro.floorplan.spares import yield_model


def run_spares(scale: Scale) -> ExperimentReport:
    del scale
    # Subarray organization from the mini-Cacti models: a 2 MB d-group
    # uses 64 subarrays (4 x 2MB = 256 total); a 64 KB NUCA bank uses
    # a handful (128 banks).
    cacti = MiniCacti()
    dgroup = cacti.data_array(2 * 1024 * 1024, 128)
    bank = cacti.data_array(64 * 1024, 128)
    nurapid_total = 4 * dgroup.organization.count
    nuca_per_bank = bank.organization.count
    nuca_total = 128 * nuca_per_bank
    # Same silicon budget: scale the spare pool to ~1.5% of subarrays
    # (the Itanium II carries 2 spares per 135).
    spare_budget = max(4, round(nurapid_total * 0.015 / 4) * 4)

    rows = []
    for defect_pct in (0.1, 0.25, 0.5, 1.0, 2.0):
        p = defect_pct / 100.0
        few = yield_model(4, nurapid_total // 4, spare_budget // 4, p)
        # D-NUCA: the same spares divided over 128 domains rounds to
        # zero per bank for realistic budgets; give each bank the
        # fractional expectation rounded down (usually 0).
        per_bank_spares = spare_budget // 128
        many = yield_model(128, nuca_per_bank, per_bank_spares, p)
        rows.append(
            {
                "defect rate": f"{defect_pct}%",
                "NuRAPID yield (4 domains)": round(few, 4),
                "D-NUCA yield (128 domains)": round(many, 4),
            }
        )
    return ExperimentReport(
        experiment="ablation_spares",
        title="Manufacturing yield: few large vs many small repair domains",
        paper_expectation=(
            "§3.2: a spare subarray cannot be shared across NUCA's d-groups "
            "(no common row addresses or latency), so the many-small layout "
            "loses yield rapidly as defect rates rise"
        ),
        rows=rows,
        summary={
            "NuRAPID subarrays": nurapid_total,
            "D-NUCA subarrays": nuca_total,
            "total spares": spare_budget,
        },
        notes="binomial yield per domain; same total spare budget for both",
    )


def run_ecc(scale: Scale) -> ExperimentReport:
    del scale
    total_bits, overhead = protection_overhead(128, word_bits=64)
    code = SECDED(64)
    rows = []
    spreads = (
        (1, "single subarray"),
        (4, "NUCA bank spread (64KB, few tiles)"),
        (16, "small d-group"),
        (64, "NuRAPID 2MB d-group"),
        (128, "Itanium-class full spread"),
    )
    for subarrays, label in spreads:
        plan = InterleavingPlan(
            words=16, word_bits=code.codeword_bits, subarrays=subarrays
        )
        rows.append(
            {
                "block spread": label,
                "subarrays": subarrays,
                "max bits/word in one subarray": plan.bits_per_word_per_subarray(),
                "survives whole-subarray loss": plan.survives_subarray_loss(),
                "widest adjacent upset (cells)": plan.widest_correctable_adjacent_upset(),
            }
        )
    return ExperimentReport(
        experiment="ablation_ecc",
        title="Soft-error tolerance vs block spreading (SEC-DED per 64b word)",
        paper_expectation=(
            "§3.1/§3.3: spreading a block over many subarrays keeps a "
            "multi-bit particle strike within one correctable bit per word; "
            "NUCA's small d-groups constrain the spread"
        ),
        rows=rows,
        summary={
            "ECC bits per 128B block": total_bits,
            "storage overhead": round(overhead, 4),
            "codeword bits per 64b word": code.codeword_bits,
        },
    )

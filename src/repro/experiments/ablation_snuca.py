"""S-NUCA ablation: static vs managed non-uniformity.

Kim et al.'s S-NUCA maps each set to one fixed bank: it gets the
average of the non-uniform latencies with none of the placement
intelligence.  Comparing base / S-NUCA / D-NUCA / NuRAPID separates
how much gain comes from *having* non-uniform banks at all versus
from *managing* where data sits — the question the whole NUCA line of
work turns on.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.nuca.config import SearchPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config, snuca_config

SUBSET = ["art", "galgel", "twolf", "wupwise"]


def run(scale: Scale) -> ExperimentReport:
    configs = {
        "s-nuca (static)": snuca_config(),
        "d-nuca (bubble)": dnuca_config(policy=SearchPolicy.SS_PERFORMANCE),
        "nurapid (distance-assoc)": nurapid_config(),
    }
    base = base_config()
    run_matrix([base, *configs.values()], SUBSET, scale)  # parallel prefetch
    rows = []
    for benchmark in SUBSET:
        base_run = cached_run(base, benchmark, scale)
        row = {"benchmark": benchmark}
        for label, config in configs.items():
            r = cached_run(config, benchmark, scale)
            row[label] = pct(r.ipc / base_run.ipc)
        rows.append(row)
    return ExperimentReport(
        experiment="ablation_snuca",
        title="Static vs managed non-uniformity (vs base hierarchy)",
        paper_expectation=(
            "the NUCA lineage's premise: static mapping wastes the fast "
            "banks on whatever address bits land there; dynamic movement "
            "(D-NUCA) helps; decoupled placement (NuRAPID) helps most"
        ),
        rows=rows,
        notes=f"benchmarks: {', '.join(SUBSET)}",
    )

"""Runtime fault resilience: NuRAPID vs the base hierarchy (extension).

The §3.1 layout argument made runtime: both systems face the same
transient-upset campaign (multi-bit strikes, up to 32 adjacent cells),
but NuRAPID's few large d-groups interleave each block's SEC-DED words
across 128 subarrays — at most one bit of any word per subarray, so
every strike decodes as corrected — while the base hierarchy's narrow
banking spreads words over only 8 subarrays, so wide strikes produce
detected-uncorrectable words: clean lines are refetched (extra misses)
and dirty lines are lost outright (the run dies with a typed
:class:`~repro.common.errors.UncorrectableDataError`).

The grid runs on the hardened :class:`~repro.sim.sweep.Sweep`: dirty
data losses are isolated per cell, retried with reseeded traces and
fault schedules, and recorded — the surviving grid is the resilience
curve.  A final section injects hard subarray failures beyond the
spare budget into NuRAPID's fastest d-group and shows the run
completing on degraded capacity.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.experiments.common import ExperimentReport, Scale, cached_run
from repro.faults.models import FaultPlan, HardFaultEvent
from repro.sim.config import SystemConfig, base_config, nurapid_config
from repro.sim.sweep import Sweep, SweepAxis, SweepPoint

BENCHMARKS = ["art", "twolf"]
RATES = (0.0, 1e-3, 1e-2)
#: NuRAPID large d-groups: more subarrays than the 72-bit codeword, so
#: each word keeps at most one bit per subarray (§3.1's safe regime).
WIDE_INTERLEAVE = 128
#: Conventional banked layout: 9 bits of every word share a subarray.
NARROW_INTERLEAVE = 8
#: Strikes span up to 32 adjacent cells of one subarray.
MAX_UPSET_BITS = 32
FAULT_SEED = 11


def _plan(rate: float, interleave: int) -> Optional[FaultPlan]:
    if rate == 0.0:
        return None
    return FaultPlan(
        transient_per_access=rate,
        max_upset_bits=MAX_UPSET_BITS,
        interleave_subarrays=interleave,
        data_subarrays_per_dgroup=max(64, interleave),
        seed=FAULT_SEED,
    )


def _build(arch: str, rate: float) -> SystemConfig:
    if arch == "nurapid":
        return nurapid_config(faults=_plan(rate, WIDE_INTERLEAVE))
    if arch == "base":
        return base_config(faults=_plan(rate, NARROW_INTERLEAVE))
    raise ConfigurationError(f"unknown arch {arch!r}")


def _stat_total(point: SweepPoint, key: str) -> float:
    return sum(r.stats.get(key, 0.0) for r in point.runs.values())


def run(scale: Scale) -> ExperimentReport:
    sweep = Sweep(
        axes=[
            SweepAxis("arch", ("base", "nurapid")),
            SweepAxis("rate", RATES),
        ],
        build=_build,
        benchmarks=BENCHMARKS,
        n_references=scale.n_references,
        seed=scale.seed,
        warmup_fraction=scale.warmup_fraction,
        max_retries=2,
    )
    points = sweep.run()
    grid: Dict[Tuple[object, object], SweepPoint] = {
        (p.coordinates["arch"], p.coordinates["rate"]): p for p in points
    }

    rows = []
    for arch in ("base", "nurapid"):
        baseline = grid[(arch, 0.0)]
        for rate in RATES:
            point = grid[(arch, rate)]
            try:
                rel = point.mean_relative(baseline)
                rendered = round(rel, 4)
            except ConfigurationError:
                rendered = "failed"
            # Cells killed by a dirty-line DUE leave no RunResult, so
            # their losses are counted from the recorded outcomes.
            losses = int(_stat_total(point, "fault_dirty_data_loss")) + sum(
                1
                for o in point.outcomes.values()
                if o.error_type == "UncorrectableDataError"
            )
            rows.append(
                {
                    "arch": arch,
                    "upset rate": f"{rate:g}",
                    "rel IPC": rendered,
                    "corrected": int(_stat_total(point, "fault_corrected")),
                    "DUE refetch": int(_stat_total(point, "fault_clean_refetches")),
                    "data loss": losses,
                    "failed cells": len(point.failed_benchmarks()),
                    "attempts": sum(o.attempts for o in point.outcomes.values()),
                }
            )

    # Graceful degradation: four fast-d-group subarrays (of 8) die
    # mid-run with only one spare; three retire, and NuRAPID keeps
    # running on a shrunken fastest group instead of crashing.
    degraded_plan = FaultPlan(
        hard_faults=tuple(
            HardFaultEvent(at_access=(i + 1) * 50, dgroup=0, subarray=i)
            for i in range(4)
        ),
        data_subarrays_per_dgroup=8,
        spare_subarrays_per_dgroup=1,
        seed=FAULT_SEED,
    )
    degraded = nurapid_config(faults=degraded_plan)
    healthy = nurapid_config()
    rels, retired, lost = [], 0.0, 0.0
    for benchmark in BENCHMARKS:
        d = cached_run(degraded, benchmark, scale)
        h = cached_run(healthy, benchmark, scale)
        rels.append(d.ipc / h.ipc)
        retired = max(retired, d.stats.get("fault_frames_retired_total", 0.0))
        lost += d.stats.get("fault_lines_lost", 0.0)
    rows.append(
        {
            "arch": "nurapid hard-fault",
            "upset rate": "4 subarrays, 1 spare",
            "rel IPC": round(sum(rels) / len(rels), 4),
            "corrected": 0,
            "DUE refetch": 0,
            "data loss": int(lost),
            "failed cells": 0,
            "attempts": len(BENCHMARKS),
        }
    )

    return ExperimentReport(
        experiment="ablation_faults",
        title="IPC vs fault rate: wide vs narrow ECC interleaving (extension)",
        paper_expectation=(
            "extension of §3.1: NuRAPID's 128-subarray interleaving corrects "
            "every multi-bit strike (rel IPC ~1.0, zero data loss); the "
            "narrow base layout suffers refetches and dirty-line losses that "
            "the hardened sweep isolates and retries; hard faults beyond "
            "spares degrade d-group 0 capacity without crashing the run"
        ),
        rows=rows,
        summary={"dg0 frames retired (hard-fault row)": retired},
        notes=f"benchmarks: {', '.join(BENCHMARKS)}; strikes up to "
        f"{MAX_UPSET_BITS} adjacent cells; rel IPC is vs the same arch at "
        "rate 0",
    )

"""CLI for regenerating the paper's tables and figures.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments table4
    python -m repro.experiments figure6 figure9 --scale full
    python -m repro.experiments all --scale quick --out results/
    python -m repro.experiments all --scale full --jobs 8
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import experiment_names, run_experiment, scale_by_name
from repro.experiments.common import (
    set_default_jobs,
    set_default_supervisor,
    set_default_telemetry,
)
from repro.telemetry import telemetry_from_env


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the NuRAPID paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names, or 'all' (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        default="quick",
        choices=["full", "quick", "smoke"],
        help="workload scale (full ~= paper-shaped, quick for iteration)",
    )
    parser.add_argument(
        "--out", default=None, help="directory to also write .txt/.json reports"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for (config, benchmark) grids "
        "(default: $REPRO_JOBS or 1; results are identical for any value)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render distribution figures as ASCII stacked bars",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run grid cells through the supervised execution layer "
        "(worker deadlines, crash retry, degradation to serial); "
        "results are identical to unsupervised runs",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --supervise, kill and retry any cell exceeding this "
        "wall-clock budget (default: no per-cell deadline)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="MODE",
        help="telemetry collection: 'on' for histograms/counters, a "
        "directory to also flush JSONL event traces, 'off' to force the "
        "null sink (default: $REPRO_TELEMETRY, else off); simulated "
        "results are identical either way",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in experiment_names():
            print(name)
        return 0

    names = args.experiments
    if not names:
        parser.error("give experiment names or 'all' (or --list)")
    if names == ["all"]:
        names = experiment_names()
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    scale = scale_by_name(args.scale)
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    if args.telemetry is not None:
        set_default_telemetry(telemetry_from_env(args.telemetry))
    if args.cell_timeout is not None and not args.supervise:
        parser.error("--cell-timeout requires --supervise")
    if args.supervise:
        from repro.resilience.supervisor import SupervisorConfig

        set_default_supervisor(
            SupervisorConfig(cell_timeout_s=args.cell_timeout)
        )
    if args.out:
        os.makedirs(args.out, exist_ok=True)

    for name in names:
        started = time.time()
        report = run_experiment(name, scale)
        elapsed = time.time() - started
        print(report.to_text())
        if args.chart and report.rows and "dg0" in report.rows[0]:
            from repro.experiments.render import render_figure_distribution

            group_keys = sorted(
                k for k in report.rows[0] if k.startswith("dg") and k[2:].isdigit()
            )
            label_keys = [
                k for k in report.rows[0]
                if not k.startswith("dg") and k != "miss"
            ]
            print()
            print(render_figure_distribution(report.rows, group_keys, label_keys))
        print(f"[{name} finished in {elapsed:.1f}s at scale={scale.name}]")
        print()
        if args.out:
            base = os.path.join(args.out, name)
            with open(base + ".txt", "w", encoding="utf-8") as handle:
                handle.write(report.to_text() + "\n")
            with open(base + ".json", "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

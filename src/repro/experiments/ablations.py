"""Ablations beyond the paper's printed results.

These probe the design choices DESIGN.md calls out:

* ``ablation_policies`` — the full promotion x distance-replacement
  cross product (performance and first-group share).
* ``ablation_pointers`` — §2.4.3's restricted distance associativity:
  pointer bits saved vs placement quality lost.
* ``ablation_seqtag`` — sequential vs parallel tag-data access for the
  large cache (the paper's problem (1)), from the technology model.
* ``ablation_dnuca_insert`` — D-NUCA tail vs head insertion (the
  initial-placement policy [7] found inferior for coupled placement).

To keep ablations affordable they run on a representative subset of
benchmarks (3 high-load of varied working-set size + 1 low-load).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.floorplan.dgroups import build_uniform_cache_spec
from repro.nuca.config import SearchPolicy
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config

SUBSET = ["art", "equake", "twolf", "wupwise"]


def run_policies(scale: Scale) -> ExperimentReport:
    base = base_config()
    run_matrix(  # parallel prefetch of the whole grid
        [base]
        + [
            nurapid_config(promotion=promo, distance_replacement=kind)
            for promo in PromotionPolicy
            for kind in DistanceReplacementKind
        ],
        SUBSET,
        scale,
    )
    rows = []
    for promo in PromotionPolicy:
        for kind in DistanceReplacementKind:
            config = nurapid_config(promotion=promo, distance_replacement=kind)
            rels, dg0s = [], []
            for benchmark in SUBSET:
                base_run = cached_run(base, benchmark, scale)
                r = cached_run(config, benchmark, scale)
                rels.append(r.ipc / base_run.ipc)
                dg0s.append(r.dgroup_fractions.get(0, 0.0))
            rows.append(
                {
                    "promotion": promo.value,
                    "distance repl": kind.value,
                    "rel perf": pct(sum(rels) / len(rels)),
                    "dg0 share": round(sum(dg0s) / len(dg0s), 3),
                }
            )
    return ExperimentReport(
        experiment="ablation_policies",
        title="Promotion x distance-replacement cross product",
        paper_expectation=(
            "next-fastest/random near the top; demotion-only clearly worst; "
            "LRU adds little once promotion is enabled (§5.3.1)"
        ),
        rows=rows,
        notes=f"benchmarks: {', '.join(SUBSET)}",
    )


def run_pointers(scale: Scale) -> ExperimentReport:
    base = base_config()
    rows = []
    for restricted in (None, 4096, 1024, 256):
        config = nurapid_config(
            restricted_frames=restricted,
            name=f"nurapid-restrict-{restricted or 'full'}",
        )
        geometry = None
        rels, dg0s = [], []
        for benchmark in SUBSET:
            base_run = cached_run(base, benchmark, scale)
            r = cached_run(config, benchmark, scale)
            rels.append(r.ipc / base_run.ipc)
            dg0s.append(r.dgroup_fractions.get(0, 0.0))
        from repro.floorplan.dgroups import build_nurapid_geometry

        geometry = build_nurapid_geometry(n_dgroups=4, restricted_frames=restricted)
        rows.append(
            {
                "frames per d-group": restricted or "all (16384)",
                "fwd pointer bits": geometry.forward_pointer_bits,
                "pointer overhead KB": round(geometry.pointer_overhead_bits() / 8192, 0),
                "rel perf": pct(sum(rels) / len(rels)),
                "dg0 share": round(sum(dg0s) / len(dg0s), 3),
            }
        )
    return ExperimentReport(
        experiment="ablation_pointers",
        title="Restricted distance associativity (pointer-size optimization)",
        paper_expectation=(
            "256-frame restriction shrinks the forward pointer from 16 to 10 "
            "bits with acceptable impact (§2.4.3 argues the overhead away)"
        ),
        rows=rows,
        notes=f"benchmarks: {', '.join(SUBSET)}",
    )


def run_seqtag(scale: Scale) -> ExperimentReport:
    del scale
    rows = []
    for sequential in (True, False):
        spec = build_uniform_cache_spec(
            "L2-8MB",
            8 * 1024 * 1024,
            128,
            8,
            sequential_tag_data=sequential,
        )
        rows.append(
            {
                "tag-data access": "sequential" if sequential else "parallel",
                "hit latency (cycles)": spec.latency_cycles,
                "energy per read (nJ)": round(spec.read_energy_nj, 2),
            }
        )
    ratio = rows[1]["energy per read (nJ)"] / rows[0]["energy per read (nJ)"]
    return ExperimentReport(
        experiment="ablation_seqtag",
        title="Sequential vs parallel tag-data access, 8MB 8-way",
        paper_expectation=(
            "parallel access reads all data ways: much higher energy for a "
            "small latency win — why large caches probe tags first (§1)"
        ),
        rows=rows,
        summary={"parallel/sequential energy": ratio},
    )


def run_dnuca_insert(scale: Scale) -> ExperimentReport:
    base = base_config()
    rows = []
    for tail in (True, False):
        config = dnuca_config(
            policy=SearchPolicy.SS_PERFORMANCE,
            tail_insertion=tail,
            name=f"dnuca-{'tail' if tail else 'head'}-insert",
        )
        rels, l0 = [], []
        for benchmark in SUBSET:
            base_run = cached_run(base, benchmark, scale)
            r = cached_run(config, benchmark, scale)
            rels.append(r.ipc / base_run.ipc)
            l0.append(r.dgroup_fractions.get(0, 0.0))
        rows.append(
            {
                "insertion": "tail (slowest bank)" if tail else "head (fastest bank)",
                "rel perf": pct(sum(rels) / len(rels)),
                "level-0 share": round(sum(l0) / len(l0), 3),
            }
        )
    return ExperimentReport(
        experiment="ablation_dnuca_insert",
        title="D-NUCA insertion point (coupled placement's dilemma)",
        paper_expectation=(
            "head insertion evicts hot same-set blocks from the fast bank on "
            "every miss; [7] found it inferior, which §2.1 uses to motivate "
            "decoupled placement"
        ),
        rows=rows,
        notes=f"benchmarks: {', '.join(SUBSET)}",
    )

"""Leakage ablation: gating far d-groups (a future-work extension).

The paper evaluates dynamic energy; this extension asks what NuRAPID's
organization offers statically.  Because demotion concentrates cold
blocks in the far d-groups, those arrays can sit in a retention
(drowsy) mode and wake on the rare far hit.  The experiment reports
leakage saved by gating progressively more d-groups, the temperature
sensitivity, and the wake-up cost in extra latency charged to far hits
(from the measured far-hit rates of the full NuRAPID runs).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale, cached_run, run_matrix
from repro.floorplan.dgroups import build_nurapid_geometry
from repro.sim.config import nurapid_config
from repro.tech.leakage import (
    LeakageParams,
    gating_savings,
    nurapid_leakage_model,
)

#: Added cycles to wake a drowsy d-group on a hit.
WAKEUP_CYCLES = 4
SUBSET = ["art", "twolf", "wupwise"]


def run(scale: Scale) -> ExperimentReport:
    geometry = build_nurapid_geometry(n_dgroups=4)
    params = LeakageParams()
    model = nurapid_leakage_model(
        pointer_bits_per_block=(
            geometry.forward_pointer_bits + geometry.reverse_pointer_bits
        ),
        params=params,
    )

    # Far-hit shares from real runs decide the wake-up penalty exposure.
    run_matrix([nurapid_config()], SUBSET, scale)  # parallel prefetch
    far_fraction = 0.0
    for benchmark in SUBSET:
        result = cached_run(nurapid_config(), benchmark, scale)
        far_fraction += sum(
            result.dgroup_fractions.get(g, 0.0) for g in (2, 3)
        )
    far_fraction /= len(SUBSET)

    rows = []
    for gate_from in (4, 3, 2, 1):
        saved = gating_savings(model, gate_from, 4)
        gated_groups = [g for g in range(4) if g >= gate_from]
        affected = sum(
            cached_run(nurapid_config(), b, scale).dgroup_fractions.get(g, 0.0)
            for b in SUBSET
            for g in gated_groups
        ) / len(SUBSET)
        rows.append(
            {
                "gated d-groups": (
                    "none" if gate_from == 4 else f"{gate_from}..3"
                ),
                "leakage saved": round(saved, 3),
                "hits paying +4cyc wakeup": round(affected, 4),
            }
        )
    hot = params.scale_for_temperature(383.0)
    return ExperimentReport(
        experiment="ablation_leakage",
        title="Gating far d-groups: leakage saved vs wakeup exposure",
        paper_expectation=(
            "extension beyond the paper: demotion concentrates cold data "
            "far from the core, so gating d-groups 2-3 should save a large "
            "leakage share while touching only a few percent of hits"
        ),
        rows=rows,
        summary={
            "mean far-hit share (dg2+dg3)": round(far_fraction, 4),
            "leakage multiplier at 110C": round(hot, 2),
        },
        notes=f"wakeup {WAKEUP_CYCLES} cycles; benchmarks: {', '.join(SUBSET)}",
    )

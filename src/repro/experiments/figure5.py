"""Figure 5: d-group access distribution per promotion policy.

4-d-group NuRAPID with random distance replacement under the three
§2.4.1 policies.  The paper: demotion-only leaves ~50% of accesses in
the first d-group (demoted blocks get stuck); next-fastest and fastest
recover to 84% and 86%.  Miss rates are identical across policies
because distance replacement never evicts (§2.2).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    fraction_row,
    mean_over,
    run_matrix,
)
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import nurapid_config
from repro.workloads.spec2k import suite_names

N_GROUPS = 4

POLICIES = [
    PromotionPolicy.DEMOTION_ONLY,
    PromotionPolicy.NEXT_FASTEST,
    PromotionPolicy.FASTEST,
]


def run(scale: Scale) -> ExperimentReport:
    run_matrix(  # parallel prefetch of the whole grid
        [nurapid_config(promotion=p) for p in POLICIES], suite_names(), scale
    )
    rows = []
    per_policy = {p.value: [] for p in POLICIES}
    miss_by_policy = {p.value: [] for p in POLICIES}
    for benchmark in suite_names():
        for policy in POLICIES:
            result = cached_run(nurapid_config(promotion=policy), benchmark, scale)
            row = {"benchmark": benchmark, "policy": policy.value}
            row.update(fraction_row(result, N_GROUPS))
            rows.append(row)
            per_policy[policy.value].append(row)
            miss_by_policy[policy.value].append(result.l2_miss_fraction)

    keys = [f"dg{g}" for g in range(N_GROUPS)]
    summary = {}
    for policy in POLICIES:
        means = mean_over(per_policy[policy.value], keys)
        summary[f"{policy.value} first-group"] = means["dg0"]
    # Distance replacement never evicts, so the miss rates must agree.
    spreads = [
        max(m) - min(m)
        for m in zip(*(miss_by_policy[p.value] for p in POLICIES))
    ]
    summary["max miss-rate spread across policies"] = max(spreads)

    return ExperimentReport(
        experiment="figure5",
        title="Distribution of d-group accesses per promotion policy",
        paper_expectation=(
            "demotion-only ~50% first-group accesses; next-fastest 84%; "
            "fastest 86%; identical miss rates across the three policies"
        ),
        rows=rows,
        summary=summary,
    )

"""Figure 7: d-group access distribution for 2/4/8 d-groups.

8 MB NuRAPID, next-fastest + random, varying only the number (and so
the size) of d-groups.  The paper: 90% / 85% / 77% of accesses hit the
first d-group with 2 / 4 / 8 groups — a large drop between 4 and 8
because many working sets no longer fit in 1 MB — with identical miss
rates (total capacity unchanged).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    mean_over,
    run_matrix,
)
from repro.sim.config import nurapid_config
from repro.workloads.spec2k import suite_names

GROUP_COUNTS = (2, 4, 8)


def run(scale: Scale) -> ExperimentReport:
    run_matrix(  # parallel prefetch of the whole grid
        [nurapid_config(n_dgroups=n) for n in GROUP_COUNTS], suite_names(), scale
    )
    rows = []
    buckets = {n: [] for n in GROUP_COUNTS}
    miss_rows = {n: [] for n in GROUP_COUNTS}
    for benchmark in suite_names():
        for n in GROUP_COUNTS:
            result = cached_run(nurapid_config(n_dgroups=n), benchmark, scale)
            rest = sum(
                result.dgroup_fractions.get(g, 0.0) for g in range(1, n)
            )
            row = {
                "benchmark": benchmark,
                "d-groups": n,
                "dg0": round(result.dgroup_fractions.get(0, 0.0), 3),
                "dg1+": round(rest, 3),
                "miss": round(result.l2_miss_fraction, 3),
            }
            rows.append(row)
            buckets[n].append(row)
            miss_rows[n].append(result.l2_miss_fraction)

    summary = {}
    for n in GROUP_COUNTS:
        summary[f"{n}-d-group first-group"] = mean_over(buckets[n], ["dg0"])["dg0"]
    summary["max miss-rate spread across d-group counts"] = max(
        max(m) - min(m) for m in zip(*(miss_rows[n] for n in GROUP_COUNTS))
    )

    return ExperimentReport(
        experiment="figure7",
        title="Distribution of d-group accesses for 2/4/8 d-groups",
        paper_expectation=(
            "first-group share 90% / 85% / 77% for 2 / 4 / 8 d-groups; the "
            "4->8 drop is large (1 MB d-groups no longer hold working sets); "
            "miss rates identical across the three"
        ),
        rows=rows,
        summary=summary,
    )

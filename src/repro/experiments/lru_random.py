"""§5.3.1: random vs true-LRU distance replacement.

The paper reports no figure, only the numbers: with demotion-only,
perfect LRU keeps 64% of accesses in the first d-group vs 54% for
random (random's accidental demotions are unrecoverable); with
next-fastest promotion, LRU reaches 87% vs random's 84% — promotion
compensates for random's errors, which is why the shipped NuRAPID uses
random.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    mean_over,
    run_matrix,
)
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import nurapid_config
from repro.workloads.spec2k import suite_names


def run(scale: Scale) -> ExperimentReport:
    variants = {
        (promo, kind): nurapid_config(promotion=promo, distance_replacement=kind)
        for promo in (PromotionPolicy.DEMOTION_ONLY, PromotionPolicy.NEXT_FASTEST)
        for kind in (
            DistanceReplacementKind.RANDOM,
            DistanceReplacementKind.LRU,
            DistanceReplacementKind.APPROX_LRU,
        )
    }
    run_matrix(list(variants.values()), suite_names(), scale)  # parallel prefetch
    rows = []
    buckets = {key: [] for key in variants}
    for benchmark in suite_names():
        for (promo, kind), config in variants.items():
            result = cached_run(config, benchmark, scale)
            row = {
                "benchmark": benchmark,
                "promotion": promo.value,
                "distance repl": kind.value,
                "dg0": round(result.dgroup_fractions.get(0, 0.0), 3),
            }
            rows.append(row)
            buckets[(promo, kind)].append(row)

    summary = {}
    for (promo, kind), bucket in buckets.items():
        summary[f"{promo.value}/{kind.value} first-group"] = mean_over(
            bucket, ["dg0"]
        )["dg0"]

    return ExperimentReport(
        experiment="lru_random",
        title="Random vs LRU distance replacement (first-d-group share)",
        paper_expectation=(
            "demotion-only: 64% (LRU) vs 54% (random); next-fastest: 87% "
            "(LRU) vs 84% (random) — promotion repairs random's mistakes"
        ),
        rows=rows,
        notes="approx-lru (clock) included beyond the paper as an ablation",
        summary=summary,
    )

"""Experiment registry: one entry per paper table/figure + ablations.

Run ``python -m repro.experiments --list`` for the catalogue, or
``python -m repro.experiments all --scale quick`` to regenerate
everything at reduced scale.
"""

from typing import Callable, Dict

from repro.experiments.common import (
    ExperimentReport,
    FULL,
    QUICK,
    SMOKE,
    Scale,
    clear_caches,
    default_jobs,
    scale_by_name,
    set_default_jobs,
)


def _registry() -> Dict[str, Callable[[Scale], ExperimentReport]]:
    # Imports are local so that `import repro.experiments` stays cheap.
    from repro.experiments import (
        ablation_faults,
        ablation_hysteresis,
        ablation_layout,
        ablation_leakage,
        ablation_prefetch,
        ablation_snuca,
        ablations,
        energy_delay,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        figure10,
        figure_cmp_compression,
        figure_cmp_throughput,
        lru_random,
        table2,
        table3,
        table4,
    )

    return {
        "table2": table2.run,
        "table3": table3.run,
        "table4": table4.run,
        "figure4": figure4.run,
        "figure5": figure5.run,
        "figure6": figure6.run,
        "lru_random": lru_random.run,
        "figure7": figure7.run,
        "figure8": figure8.run,
        "figure9": figure9.run,
        "figure10": figure10.run,
        "figure_cmp_throughput": figure_cmp_throughput.run,
        "figure_cmp_compression": figure_cmp_compression.run,
        "energy_delay": energy_delay.run,
        "ablation_policies": ablations.run_policies,
        "ablation_pointers": ablations.run_pointers,
        "ablation_seqtag": ablations.run_seqtag,
        "ablation_dnuca_insert": ablations.run_dnuca_insert,
        "ablation_faults": ablation_faults.run,
        "ablation_spares": ablation_layout.run_spares,
        "ablation_ecc": ablation_layout.run_ecc,
        "ablation_leakage": ablation_leakage.run,
        "ablation_hysteresis": ablation_hysteresis.run,
        "ablation_prefetch": ablation_prefetch.run,
        "ablation_snuca": ablation_snuca.run,
    }


def experiment_names() -> list:
    return list(_registry())


def run_experiment(name: str, scale: Scale = QUICK) -> ExperimentReport:
    registry = _registry()
    if name not in registry:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(registry)}")
    return registry[name](scale)


__all__ = [
    "ExperimentReport",
    "FULL",
    "QUICK",
    "SMOKE",
    "Scale",
    "clear_caches",
    "default_jobs",
    "experiment_names",
    "run_experiment",
    "scale_by_name",
    "set_default_jobs",
]

"""Table 3: application characterization on the base system.

Runs every synthetic benchmark on the conventional L2/L3 hierarchy and
reports base IPC and L2 accesses per kilo-instruction next to the
paper's Table 3 values (reconstructed cells marked in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale, cached_run, run_matrix
from repro.sim.config import base_config
from repro.workloads.branches import characterize
from repro.workloads.spec2k import SPEC2K_SUITE, suite_names


def run(scale: Scale) -> ExperimentReport:
    config = base_config()
    run_matrix([config], suite_names(), scale)  # parallel prefetch
    rows = []
    for name in suite_names():
        profile = SPEC2K_SUITE[name]
        result = cached_run(config, name, scale)
        measured_bp = characterize(profile, n_branches=30_000, seed=scale.seed)
        rows.append(
            {
                "benchmark": name,
                "type": profile.suite,
                "load": profile.load_class,
                "IPC": round(result.ipc, 2),
                "IPC (paper)": profile.table3_ipc,
                "L2 APKI": round(result.l2_apki, 1),
                "L2 APKI (paper)": profile.table3_l2_apki,
                "bp miss (predictor)": round(measured_bp, 3),
                "bp miss (profile)": profile.mispredict_rate,
            }
        )
    high = [r for r in rows if r["load"] == "high"]
    low = [r for r in rows if r["load"] == "low"]
    return ExperimentReport(
        experiment="table3",
        title="SPEC2K applications: base IPC and L2 accesses per 1k instructions",
        paper_expectation=(
            "12 high-load applications with tens of L2 APKI (mcf heaviest), "
            "3 low-load ones in single digits; IPCs between 0.2 (mcf) and 1.6"
        ),
        rows=rows,
        summary={
            "high-load mean APKI": sum(r["L2 APKI"] for r in high) / len(high),
            "low-load mean APKI": sum(r["L2 APKI"] for r in low) / len(low),
        },
        notes=(
            "measured APKI includes L1 writeback traffic into the L2, which "
            "the synthetic streams produce on top of the targeted load"
        ),
    )

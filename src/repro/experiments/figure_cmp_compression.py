"""Compressed NuRAPID: trading decompression latency for fast capacity.

The compressed variant stores lines in the fastest d-group at a fixed
2:1 ratio, doubling its data frames (and the set associativity limit
to match), at a small per-read decompression cost.  Under a shared
LLC the extra fast capacity matters most: two cores' working sets
compete for d-group 0, and compression lets more of both stay close.

The figure compares the contended 2-core baseline against the
compressed variant on an integer-heavy mix (high compressible share),
reporting chip throughput, the fast-d-group (dg0) hit share — the
acceptance metric — miss ratio, and fairness.
"""

from __future__ import annotations

from repro.cmp.engine import jain_fairness
from repro.cmp.scenarios import cmp_nurapid_config, per_core_ipcs
from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    run_matrix,
)

BENCHMARK = "twolf+mcf"
CORES = 2
#: A 1 MB shared LLC: small enough that smoke-scale fills churn the
#: fast d-group, so the extra compressed frames actually matter.
CAPACITY_KB = 1024


def run(scale: Scale) -> ExperimentReport:
    configs = {
        "nurapid (contended)": cmp_nurapid_config(
            cores=CORES, capacity_kb=CAPACITY_KB
        ),
        "nurapid + 2:1 compression": cmp_nurapid_config(
            cores=CORES, compression=True, capacity_kb=CAPACITY_KB
        ),
    }
    run_matrix(list(configs.values()), [BENCHMARK], scale)  # parallel prefetch

    rows = []
    shares = {}
    for label, config in configs.items():
        result = cached_run(config, BENCHMARK, scale)
        ipcs = per_core_ipcs(result)
        dg0 = result.dgroup_fractions.get(0, 0.0)
        shares[label] = dg0
        rows.append(
            {
                "config": label,
                "throughput": round(sum(ipcs), 4),
                "dg0_hit_share": round(dg0, 4),
                "miss_ratio": round(result.l2_miss_fraction, 4),
                "fairness": round(jain_fairness(ipcs), 4),
            }
        )

    labels = list(configs)
    gain = shares[labels[1]] - shares[labels[0]]
    return ExperimentReport(
        experiment="figure_cmp_compression",
        title=(
            f"Compressed NuRAPID under a shared {CAPACITY_KB // 1024} MB LLC "
            f"({CORES} cores, {BENCHMARK})"
        ),
        paper_expectation=(
            "doubling fast-d-group frames moves a measurable share of hits "
            "from distant d-groups into dg0, outweighing the decompression "
            "cycles on an integer-heavy (highly compressible) mix"
        ),
        rows=rows,
        columns=[
            "config",
            "throughput",
            "dg0_hit_share",
            "miss_ratio",
            "fairness",
        ],
        summary={"dg0_share_gain": round(gain, 4)},
        notes="2:1 ratio in d-group 0; compressibility drawn per address "
        "from each core's workload profile",
    )

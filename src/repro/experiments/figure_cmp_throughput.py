"""CMP throughput and fairness: a shared NuRAPID LLC under 1-4 cores.

The paper evaluates NuRAPID single-core; this figure asks what its
fast-d-group placement buys when several cores *share* the LLC and
the data array's bandwidth is finite.  Each point interleaves per-core
reference streams over one contended NuRAPID (8 banks, FCFS queues),
reporting chip throughput (the sum of per-core IPCs), scaling against
the 1-core run, Jain's fairness index over per-core IPCs, and the
mean bank-queue wait per LLC access — the load-dependent latency the
infinite-bandwidth model hides.

A mixed 2-core row (``twolf+mcf``) shows the fairness cost of
co-scheduling a cache-friendly app with a cache-hungry one.
"""

from __future__ import annotations

from repro.cmp.engine import jain_fairness
from repro.cmp.scenarios import cmp_nurapid_config, per_core_ipcs
from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    run_matrix,
)

CORE_COUNTS = [1, 2, 4]
BENCHMARK = "twolf"
MIXED = "twolf+mcf"


def _row(result, cores: int, benchmark: str):
    ipcs = per_core_ipcs(result)
    grants = result.stats.get("bankq.grants", 0.0)
    wait = result.stats.get("bankq.wait_cycles", 0.0)
    return {
        "cores": cores,
        "benchmark": benchmark,
        "throughput": round(sum(ipcs), 4),
        "fairness": round(jain_fairness(ipcs), 4),
        "miss_ratio": round(result.l2_miss_fraction, 4),
        "bank_wait/acc": round(wait / grants, 3) if grants else "",
    }


def run(scale: Scale) -> ExperimentReport:
    configs = {cores: cmp_nurapid_config(cores=cores) for cores in CORE_COUNTS}
    mixed_config = cmp_nurapid_config(cores=2, name="nurapid-cmp2-b8-mix")
    run_matrix(list(configs.values()), [BENCHMARK], scale)  # parallel prefetch

    rows = []
    base_throughput = None
    for cores, config in configs.items():
        result = cached_run(config, BENCHMARK, scale)
        row = _row(result, cores, BENCHMARK)
        if base_throughput is None:
            base_throughput = row["throughput"]
        row["scaling"] = (
            round(row["throughput"] / base_throughput, 3) if base_throughput else ""
        )
        rows.append(row)
    mixed = cached_run(mixed_config, MIXED, scale)
    row = _row(mixed, 2, MIXED)
    row["scaling"] = ""
    rows.append(row)

    top = rows[len(CORE_COUNTS) - 1]
    return ExperimentReport(
        experiment="figure_cmp_throughput",
        title=f"Shared-LLC throughput vs core count ({BENCHMARK}, 8 banks)",
        paper_expectation=(
            "throughput grows sub-linearly with cores as bank queues and "
            "shared capacity contention bite; homogeneous mixes stay fair "
            "(Jain ~1.0) while mixed workloads diverge"
        ),
        rows=rows,
        columns=[
            "cores",
            "benchmark",
            "throughput",
            "scaling",
            "fairness",
            "miss_ratio",
            "bank_wait/acc",
        ],
        summary={
            "scaling_at_max_cores": float(top["scaling"]),
            "mixed_fairness": float(rows[-1]["fairness"]),
        },
        notes="contended NuRAPID LLC; per-core streams interleaved in virtual time",
    )

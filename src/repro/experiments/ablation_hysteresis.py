"""Promotion-hysteresis ablation (extension beyond the paper).

The paper promotes a block on *every* hit outside the fastest d-group.
Hysteresis N waits for N such hits before swapping, trading promotion
latency for fewer swaps (port occupancy and energy).  The paper's
energy argument suggests mild hysteresis should keep most of the
placement benefit while cutting swap energy further.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.sim.config import base_config, nurapid_config

SUBSET = ["art", "galgel", "twolf", "wupwise"]


def run(scale: Scale) -> ExperimentReport:
    base = base_config()
    run_matrix(  # parallel prefetch of the whole grid
        [base]
        + [nurapid_config(promotion_hysteresis=h) for h in (1, 2, 4, 8)],
        SUBSET,
        scale,
    )
    rows = []
    for hysteresis in (1, 2, 4, 8):
        config = nurapid_config(promotion_hysteresis=hysteresis)
        rels, dg0s, moves, accesses = [], [], 0.0, 0.0
        for benchmark in SUBSET:
            base_run = cached_run(base, benchmark, scale)
            r = cached_run(config, benchmark, scale)
            rels.append(r.ipc / base_run.ipc)
            dg0s.append(r.dgroup_fractions.get(0, 0.0))
            moves += r.stats.get("moves", 0.0)
            accesses += r.l2_accesses
        rows.append(
            {
                "hysteresis": hysteresis,
                "rel perf": pct(sum(rels) / len(rels)),
                "dg0 share": round(sum(dg0s) / len(dg0s), 3),
                "moves per 1k L2 accesses": round(1000.0 * moves / max(1, accesses), 1),
            }
        )
    return ExperimentReport(
        experiment="ablation_hysteresis",
        title="Promotion hysteresis: placement quality vs swap traffic",
        paper_expectation=(
            "extension: hysteresis 2-4 should cut swaps substantially while "
            "losing little first-d-group share (promotion still repairs "
            "random demotion, just a few hits later)"
        ),
        rows=rows,
        notes=f"benchmarks: {', '.join(SUBSET)}",
    )

"""Shared infrastructure for the experiment suite.

Experiments share traces and run results through in-process caches so
that e.g. Figures 5–9, which all need the base system's runs, pay for
them once.  Every experiment returns an :class:`ExperimentReport` that
renders to the same aligned-text table the paper's figure/table would.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.sim.config import SystemConfig
from repro.sim.driver import run_benchmark
from repro.sim.results import RunResult
from repro.workloads.spec2k import get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import generate_trace


@dataclass(frozen=True)
class Scale:
    """How much work an experiment run does."""

    name: str
    n_references: int
    warmup_fraction: float
    seed: int = 1


FULL = Scale(name="full", n_references=2_000_000, warmup_fraction=0.5)
QUICK = Scale(name="quick", n_references=500_000, warmup_fraction=0.45)
SMOKE = Scale(name="smoke", n_references=60_000, warmup_fraction=0.3)

_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}
_RUN_CACHE: Dict[Tuple[str, str, int, float, int], RunResult] = {}


def clear_caches() -> None:
    """Drop cached traces and runs (tests use this for isolation)."""
    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()


def shared_trace(benchmark: str, scale: Scale) -> Trace:
    """The benchmark's trace at this scale, generated at most once.

    Set ``REPRO_TRACE_CACHE=/some/dir`` to also persist traces to disk
    (as ``.npz``), so repeated full-scale experiment runs skip
    generation entirely.
    """
    key = (benchmark, scale.n_references, scale.seed)
    if key not in _TRACE_CACHE:
        cache_dir = os.environ.get("REPRO_TRACE_CACHE")
        path = None
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            path = os.path.join(
                cache_dir,
                f"{benchmark}-{scale.n_references}-{scale.seed}.npz",
            )
            if os.path.exists(path):
                _TRACE_CACHE[key] = Trace.load(path)
                return _TRACE_CACHE[key]
        trace = generate_trace(
            get_benchmark(benchmark), scale.n_references, seed=scale.seed
        )
        if path:
            trace.save(path)
        _TRACE_CACHE[key] = trace
    return _TRACE_CACHE[key]


def cached_run(config: SystemConfig, benchmark: str, scale: Scale) -> RunResult:
    """Run (benchmark, config) at a scale, memoized on the config name.

    Config names encode every policy knob (see
    :mod:`repro.sim.config`), so the name is a safe cache key within
    one process.
    """
    key = (config.name, benchmark, scale.n_references, scale.warmup_fraction, scale.seed)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_benchmark(
            config,
            benchmark,
            trace=shared_trace(benchmark, scale),
            warmup_fraction=scale.warmup_fraction,
            seed=scale.seed,
        )
    return _RUN_CACHE[key]


def run_matrix(
    configs: List[SystemConfig], benchmarks: List[str], scale: Scale
) -> Dict[str, Dict[str, RunResult]]:
    """results[config.name][benchmark] for a config x benchmark grid."""
    return {
        config.name: {b: cached_run(config, b, scale) for b in benchmarks}
        for config in configs
    }


@dataclass
class ExperimentReport:
    """One regenerated table or figure."""

    experiment: str
    title: str
    paper_expectation: str
    rows: List[Dict[str, object]]
    columns: Optional[List[str]] = None
    notes: str = ""
    summary: Dict[str, float] = field(default_factory=dict)

    def column_order(self) -> List[str]:
        if self.columns:
            return self.columns
        if not self.rows:
            return []
        order: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in order:
                    order.append(key)
        return order

    def to_text(self) -> str:
        """Aligned-text rendering: header, rows, summary, expectation."""
        lines = [f"== {self.experiment}: {self.title} =="]
        cols = self.column_order()
        if cols:
            widths = {
                c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
                for c in cols
            }
            lines.append("  ".join(c.ljust(widths[c]) for c in cols))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in cols)
                )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"  {key}: {_fmt(value)}")
        lines.append("")
        lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "paper_expectation": self.paper_expectation,
                "rows": self.rows,
                "summary": self.summary,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def scale_by_name(name: str) -> Scale:
    scales = {"full": FULL, "quick": QUICK, "smoke": SMOKE}
    try:
        return scales[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose from {sorted(scales)}"
        ) from None


def pct(ratio: float) -> str:
    """Render a relative-performance ratio as a signed percentage."""
    return f"{(ratio - 1.0) * 100:+.1f}%"


def fraction_row(result: RunResult, n_groups: int) -> Dict[str, object]:
    """dg0..dgN hit fractions plus the miss fraction for one run."""
    row: Dict[str, object] = {}
    for g in range(n_groups):
        row[f"dg{g}"] = round(result.dgroup_fractions.get(g, 0.0), 3)
    row["miss"] = round(result.l2_miss_fraction, 3)
    return row


def mean_over(rows: List[Dict[str, object]], keys: List[str]) -> Dict[str, float]:
    """Arithmetic mean of numeric columns across rows."""
    if not rows:
        raise ConfigurationError("no rows to average")
    return {
        k: sum(float(r.get(k, 0.0)) for r in rows) / len(rows) for k in keys
    }

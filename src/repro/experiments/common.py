"""Shared infrastructure for the experiment suite.

Experiments share traces and run results through in-process caches so
that e.g. Figures 5–9, which all need the base system's runs, pay for
them once.  Every experiment returns an :class:`ExperimentReport` that
renders to the same aligned-text table the paper's figure/table would.

Experiments declare their ``configs x benchmarks`` grids through
:func:`run_matrix`, which farms uncached cells out to worker processes
(:mod:`repro.sim.parallel`) when a jobs count above one is in effect —
set process-wide by the CLI's ``--jobs`` flag via
:func:`set_default_jobs`, or by ``REPRO_JOBS`` in the environment.
Parallel cells are seeded identically to serial ones, so the cached
results are bit-identical either way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.sim.config import SystemConfig
from repro.sim.driver import run_benchmark
from repro.sim.results import RunResult, run_result_from_dict
from repro.telemetry import TelemetryConfig, telemetry_from_env
from repro.workloads.spec2k import get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceCache, default_trace_cache_dir, generate_trace
from repro.workloads.transport import ensure_decoded


@dataclass(frozen=True)
class Scale:
    """How much work an experiment run does."""

    name: str
    n_references: int
    warmup_fraction: float
    seed: int = 1


FULL = Scale(name="full", n_references=2_000_000, warmup_fraction=0.5)
QUICK = Scale(name="quick", n_references=500_000, warmup_fraction=0.45)
SMOKE = Scale(name="smoke", n_references=60_000, warmup_fraction=0.3)

_RunKey = Tuple[str, str, int, float, int, Optional[str]]
_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}
_RUN_CACHE: Dict[_RunKey, RunResult] = {}
_DEFAULT_JOBS: Optional[int] = None
_DEFAULT_TELEMETRY: Optional[TelemetryConfig] = None
_TELEMETRY_SET = False
_DEFAULT_SUPERVISOR = None  # Optional[repro.resilience.SupervisorConfig]


def clear_caches() -> None:
    """Drop cached traces and runs (tests use this for isolation)."""
    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide worker count experiments use (None: reset).

    The CLI's ``--jobs`` flag lands here; individual ``run_matrix``
    calls can still override per call.
    """
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def set_default_telemetry(telemetry: Optional[TelemetryConfig]) -> None:
    """Set the process-wide telemetry config experiments use.

    The CLI's ``--telemetry`` flag lands here.  ``None`` explicitly
    selects the null sink (and still counts as "set", overriding the
    ``REPRO_TELEMETRY`` environment convention).
    """
    global _DEFAULT_TELEMETRY, _TELEMETRY_SET
    _DEFAULT_TELEMETRY = telemetry
    _TELEMETRY_SET = True


def reset_default_telemetry() -> None:
    """Back to the environment-driven default (tests use this)."""
    global _DEFAULT_TELEMETRY, _TELEMETRY_SET
    _DEFAULT_TELEMETRY = None
    _TELEMETRY_SET = False


def default_telemetry() -> Optional[TelemetryConfig]:
    """The effective config: ``set_default_telemetry``, else ``REPRO_TELEMETRY``."""
    if _TELEMETRY_SET:
        return _DEFAULT_TELEMETRY
    return telemetry_from_env(os.environ.get("REPRO_TELEMETRY"))


def set_default_supervisor(supervisor) -> None:
    """Set the process-wide supervised-execution config (None: off).

    The CLI's ``--supervise`` / ``--cell-timeout`` flags land here with
    a :class:`repro.resilience.SupervisorConfig`.  When set,
    :func:`run_matrix` routes uncached cells through
    :func:`repro.resilience.run_cells_supervised` — even at ``jobs=1``,
    since the point of supervision (deadlines, crash recovery) applies
    to single-worker runs too.
    """
    global _DEFAULT_SUPERVISOR
    _DEFAULT_SUPERVISOR = supervisor


def default_supervisor():
    """The effective supervision config, or None when unsupervised."""
    return _DEFAULT_SUPERVISOR


def default_jobs() -> int:
    """The effective worker count: ``set_default_jobs``, ``REPRO_JOBS``, or 1."""
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
        if jobs < 1:
            raise ConfigurationError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return 1


def shared_trace(benchmark: str, scale: Scale) -> Trace:
    """The benchmark's trace at this scale, generated at most once.

    Set ``REPRO_TRACE_CACHE=/some/dir`` to also persist traces to disk
    (as ``.npz`` via :class:`~repro.workloads.tracegen.TraceCache`), so
    repeated full-scale experiment runs — and parallel workers — skip
    generation entirely; a corrupted cache file is regenerated in
    place.
    """
    key = (benchmark, scale.n_references, scale.seed)
    if key not in _TRACE_CACHE:
        cache_dir = default_trace_cache_dir()
        if cache_dir:
            _TRACE_CACHE[key] = TraceCache(cache_dir).get(
                benchmark, scale.n_references, seed=scale.seed
            )
        else:
            _TRACE_CACHE[key] = generate_trace(
                get_benchmark(benchmark), scale.n_references, seed=scale.seed
            )
    return _TRACE_CACHE[key]


def cached_run(config: SystemConfig, benchmark: str, scale: Scale) -> RunResult:
    """Run (benchmark, config) at a scale, memoized on the config name.

    Config names encode every policy knob (see
    :mod:`repro.sim.config`), so the name is a safe cache key within
    one process.
    """
    key = _run_key(config, benchmark, scale)
    if key not in _RUN_CACHE:
        # CMP configs interleave per-core streams inside run_benchmark,
        # so no shared single-stream trace applies.
        is_cmp = config.cmp is not None and config.cmp.cores > 1
        _RUN_CACHE[key] = run_benchmark(
            config,
            benchmark,
            n_references=scale.n_references,
            trace=None if is_cmp else shared_trace(benchmark, scale),
            warmup_fraction=scale.warmup_fraction,
            seed=scale.seed,
            telemetry=default_telemetry(),
        )
    return _RUN_CACHE[key]


def _run_key(config: SystemConfig, benchmark: str, scale: Scale) -> _RunKey:
    telemetry = default_telemetry()
    return (
        config.name,
        benchmark,
        scale.n_references,
        scale.warmup_fraction,
        scale.seed,
        # Telemetry settings change the payload attached to a result
        # (never the simulated numbers), so they key the cache too.
        None if telemetry is None else json.dumps(
            telemetry.fingerprint(), sort_keys=True
        ),
    )


def run_matrix(
    configs: List[SystemConfig],
    benchmarks: List[str],
    scale: Scale,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """results[config.name][benchmark] for a config x benchmark grid.

    With an effective ``jobs`` count above one (argument, else
    :func:`default_jobs`), the grid's uncached cells run on worker
    processes and land in the shared run cache, so subsequent
    :func:`cached_run` calls for the same cells are hits.  Any run
    error raises, exactly like the serial path.

    When a process-wide supervisor is set
    (:func:`set_default_supervisor`, via the CLI's ``--supervise``),
    uncached cells always go through
    :func:`repro.resilience.run_cells_supervised` — also at ``jobs=1``
    — gaining wall-clock deadlines and crash recovery; results stay
    bit-identical to the unsupervised paths.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    pending = [
        (config, benchmark)
        for config in configs
        for benchmark in benchmarks
        if _run_key(config, benchmark, scale) not in _RUN_CACHE
    ]
    supervisor = default_supervisor()
    if pending and (supervisor is not None or (jobs > 1 and len(pending) > 1)):
        from repro.sim.parallel import CellTask, run_cells

        cache_dir = default_trace_cache_dir()
        disk_cache = TraceCache(cache_dir) if cache_dir else None
        tasks = []
        for index, (config, benchmark) in enumerate(pending):
            # With a disk cache workers load the trace by path; without
            # one, ship the in-memory trace inline (pickled once per
            # cell) so behavior needs no configuration.
            trace_path = None
            trace = None
            if config.cmp is not None and config.cmp.cores > 1:
                # CMP cells interleave their own per-core traces in the
                # worker; shipping a single-stream trace would be
                # rejected by run_benchmark.
                pass
            elif disk_cache is not None:
                trace_path = disk_cache.ensure(
                    benchmark, scale.n_references, seed=scale.seed
                )
            else:
                trace = shared_trace(benchmark, scale)
            tasks.append(
                CellTask(
                    index=index,
                    config=config,
                    benchmark=benchmark,
                    n_references=scale.n_references,
                    seed=scale.seed,
                    warmup_fraction=scale.warmup_fraction,
                    trace=trace,
                    trace_path=trace_path,
                    mmap_path=ensure_decoded(trace_path),
                    isolate_errors=False,
                    telemetry=default_telemetry(),
                )
            )
        if supervisor is not None:
            from repro.resilience.supervisor import run_cells_supervised

            payloads = run_cells_supervised(tasks, jobs, config=supervisor)
        else:
            payloads = run_cells(tasks, jobs)
        for payload in payloads:
            config, benchmark = pending[payload["index"]]
            _RUN_CACHE[_run_key(config, benchmark, scale)] = run_result_from_dict(
                payload["result"]
            )
    return {
        config.name: {b: cached_run(config, b, scale) for b in benchmarks}
        for config in configs
    }


@dataclass
class ExperimentReport:
    """One regenerated table or figure."""

    experiment: str
    title: str
    paper_expectation: str
    rows: List[Dict[str, object]]
    columns: Optional[List[str]] = None
    notes: str = ""
    summary: Dict[str, float] = field(default_factory=dict)

    def column_order(self) -> List[str]:
        if self.columns:
            return self.columns
        if not self.rows:
            return []
        order: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in order:
                    order.append(key)
        return order

    def to_text(self) -> str:
        """Aligned-text rendering: header, rows, summary, expectation."""
        lines = [f"== {self.experiment}: {self.title} =="]
        cols = self.column_order()
        if cols:
            widths = {
                c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
                for c in cols
            }
            lines.append("  ".join(c.ljust(widths[c]) for c in cols))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in cols)
                )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"  {key}: {_fmt(value)}")
        lines.append("")
        lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "paper_expectation": self.paper_expectation,
                "rows": self.rows,
                "summary": self.summary,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def scale_by_name(name: str) -> Scale:
    scales = {"full": FULL, "quick": QUICK, "smoke": SMOKE}
    try:
        return scales[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose from {sorted(scales)}"
        ) from None


def pct(ratio: float) -> str:
    """Render a relative-performance ratio as a signed percentage."""
    return f"{(ratio - 1.0) * 100:+.1f}%"


def fraction_row(result: RunResult, n_groups: int) -> Dict[str, object]:
    """dg0..dgN hit fractions plus the miss fraction for one run."""
    row: Dict[str, object] = {}
    for g in range(n_groups):
        row[f"dg{g}"] = round(result.dgroup_fractions.get(g, 0.0), 3)
    row["miss"] = round(result.l2_miss_fraction, 3)
    return row


def mean_over(rows: List[Dict[str, object]], keys: List[str]) -> Dict[str, float]:
    """Arithmetic mean of numeric columns across rows."""
    if not rows:
        raise ConfigurationError("no rows to average")
    return {
        k: sum(float(r.get(k, 0.0)) for r in rows) / len(rows) for k in keys
    }

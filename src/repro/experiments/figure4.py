"""Figure 4: set-associative vs distance-associative placement.

Both caches are 8 MB, 8-way, 4 x 2 MB d-groups, place new blocks in
the fastest group, demote to the next slower group, and promote
next-fastest; the only difference is the coupling of data placement to
tag position.  The paper: 74% of accesses hit the first d-group under
set-associative placement vs 86% under distance-associative placement,
and the SA cache sends 8% of accesses to the last two d-groups vs 2%.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    fraction_row,
    mean_over,
    run_matrix,
)
from repro.sim.config import nurapid_config, sa_nuca_config
from repro.workloads.spec2k import suite_names

N_GROUPS = 4


def run(scale: Scale) -> ExperimentReport:
    configs = {"set-assoc": sa_nuca_config(), "dist-assoc": nurapid_config()}
    run_matrix(list(configs.values()), suite_names(), scale)  # parallel prefetch
    rows = []
    per_config = {label: [] for label in configs}
    for benchmark in suite_names():
        for label, config in configs.items():
            result = cached_run(config, benchmark, scale)
            row = {"benchmark": benchmark, "placement": label}
            row.update(fraction_row(result, N_GROUPS))
            rows.append(row)
            per_config[label].append(row)

    keys = [f"dg{g}" for g in range(N_GROUPS)] + ["miss"]
    summary = {}
    for label in configs:
        means = mean_over(per_config[label], keys)
        summary[f"{label} first-group"] = means["dg0"]
        summary[f"{label} last-two-groups"] = means["dg2"] + means["dg3"]
        summary[f"{label} miss"] = means["miss"]

    return ExperimentReport(
        experiment="figure4",
        title="Distribution of d-group accesses: SA vs DA placement",
        paper_expectation=(
            "set-associative placement: 74% first d-group, 8% in the last "
            "two; distance-associative: 86% first d-group, 2% in the last two"
        ),
        rows=rows,
        summary=summary,
        notes="same geometry and policies; only the tag/data coupling differs",
    )

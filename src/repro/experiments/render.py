"""ASCII rendering of the paper's stacked-bar figures.

The experiment reports are tables; for the distribution figures
(4, 5, 7) a visual form communicates the shape better.  These helpers
render horizontal stacked bars with one character class per d-group —
the terminal equivalent of the paper's Figure 4/5/7 charts — and
simple horizontal bar charts for the relative-performance figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Fill characters per stacked segment, fastest d-group first; misses
#: render as '#'.  Mirrors the paper's white-to-black shading.
SEGMENT_CHARS = " .:=oO%@"
MISS_CHAR = "#"


def stacked_bar(
    fractions: Sequence[float], miss: float, width: int = 50
) -> str:
    """One stacked bar: d-group fractions then the miss share."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if any(f < 0 for f in fractions) or miss < 0:
        raise ConfigurationError("fractions must be non-negative")
    total = sum(fractions) + miss
    if total > 1.0 + 1e-6:
        raise ConfigurationError(f"fractions sum to {total} > 1")
    cells: List[str] = []
    for index, fraction in enumerate(fractions):
        char = SEGMENT_CHARS[min(index, len(SEGMENT_CHARS) - 1)]
        cells.extend(char * int(round(fraction * width)))
    cells.extend(MISS_CHAR * int(round(miss * width)))
    bar = "".join(cells)[:width]
    return "[" + bar.ljust(width) + "]"


def distribution_chart(
    rows: Mapping[str, Tuple[Sequence[float], float]],
    width: int = 50,
    legend_groups: int = 4,
) -> str:
    """Multi-row stacked-bar chart keyed by benchmark (or config) name.

    ``rows`` maps a label to (d-group fractions, miss fraction).
    """
    if not rows:
        raise ConfigurationError("nothing to chart")
    label_width = max(len(label) for label in rows)
    lines = []
    for label, (fractions, miss) in rows.items():
        lines.append(
            f"{label:<{label_width}} {stacked_bar(fractions, miss, width)}"
        )
    legend = "  ".join(
        f"dg{g}='{SEGMENT_CHARS[min(g, len(SEGMENT_CHARS) - 1)]}'"
        for g in range(legend_groups)
    )
    lines.append(f"{'':<{label_width}} legend: {legend}  miss='{MISS_CHAR}'")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    baseline: float = 1.0,
    width: int = 40,
    fmt: str = "{:+.1%}",
) -> str:
    """Horizontal bars of deviation from a baseline (relative perf).

    Positive deviations grow right of the axis, negative to the left.
    """
    if not values:
        raise ConfigurationError("nothing to chart")
    deviations = {k: v - baseline for k, v in values.items()}
    span = max(0.001, max(abs(d) for d in deviations.values()))
    label_width = max(len(k) for k in values)
    half = width // 2
    lines = []
    for label, deviation in deviations.items():
        cells = int(round(abs(deviation) / span * half))
        if deviation >= 0:
            bar = " " * half + "|" + "#" * cells + " " * (half - cells)
        else:
            bar = " " * (half - cells) + "#" * cells + "|" + " " * half
        lines.append(f"{label:<{label_width}} {bar} {fmt.format(deviation)}")
    return "\n".join(lines)


def render_figure_distribution(
    report_rows: List[Dict[str, object]],
    group_keys: List[str],
    label_keys: List[str],
    width: int = 50,
) -> str:
    """Render an ExperimentReport's rows as a distribution chart.

    ``group_keys`` name the d-group fraction columns (e.g. ["dg0",
    "dg1", ...]); ``label_keys`` are joined to label each bar.
    """
    rows: Dict[str, Tuple[List[float], float]] = {}
    for row in report_rows:
        label = " ".join(str(row[k]) for k in label_keys if k in row)
        fractions = [float(row.get(k, 0.0)) for k in group_keys]
        miss = float(row.get("miss", 0.0))
        rows[label] = (fractions, miss)
    return distribution_chart(rows, width=width, legend_groups=len(group_keys))

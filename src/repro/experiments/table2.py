"""Table 2: example cache energies in nJ.

Pure technology-model output — no workload simulation.  Reports the
same rows as the paper's Table 2 next to the paper's values.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale
from repro.floorplan.dgroups import (
    build_dnuca_geometry,
    build_nurapid_geometry,
    build_uniform_cache_spec,
)

#: The paper's Table 2, for side-by-side comparison.
PAPER_VALUES = {
    "closest of 4 2MB d-groups": 0.42,
    "farthest of 4 2MB d-groups": 3.3,
    "closest of 8 1MB d-groups": 0.40,
    "farthest of 8 1MB d-groups": 4.6,
    "closest 64KB NUCA d-group": 0.18,
    "average other 64KB NUCA d-groups": None,  # value lost in the scan
    "16-way NUCA ss-array access": 0.19,
    "2 ports of 64KB 2-way L1": 0.57,
}


def run(scale: Scale) -> ExperimentReport:
    del scale  # technology-only; no simulation scale involved
    rows = []

    def add(operation: str, measured: float) -> None:
        paper = PAPER_VALUES.get(operation)
        rows.append(
            {
                "operation (tag + access)": operation,
                "measured nJ": round(measured, 3),
                "paper nJ": paper if paper is not None else "n/a",
            }
        )

    four = build_nurapid_geometry(n_dgroups=4)
    add("closest of 4 2MB d-groups", four.dgroups[0].read_energy_nj + four.tag_energy_nj)
    add("farthest of 4 2MB d-groups", four.dgroups[-1].read_energy_nj + four.tag_energy_nj)

    eight = build_nurapid_geometry(n_dgroups=8)
    add("closest of 8 1MB d-groups", eight.dgroups[0].read_energy_nj + eight.tag_energy_nj)
    add("farthest of 8 1MB d-groups", eight.dgroups[-1].read_energy_nj + eight.tag_energy_nj)

    nuca = build_dnuca_geometry()
    closest = min(nuca.banks, key=lambda b: b.latency_cycles)
    others = [b for b in nuca.banks if b.index != closest.index]
    add("closest 64KB NUCA d-group", closest.read_energy_nj)
    add(
        "average other 64KB NUCA d-groups",
        sum(b.read_energy_nj for b in others) / len(others),
    )
    add("16-way NUCA ss-array access", nuca.ss_energy_nj)

    l1 = build_uniform_cache_spec(
        "L1", 64 * 1024, 32, 2, latency_cycles=3, sequential_tag_data=False,
        ports=2, energy_factor=6.4,
    )
    add("2 ports of 64KB 2-way L1", l1.read_energy_nj)

    return ExperimentReport(
        experiment="table2",
        title="Example cache energies (nJ)",
        paper_expectation=(
            "0.42 / 3.3 nJ for closest/farthest of 4 2MB d-groups; 0.40 / 4.6 "
            "for 8 1MB d-groups; 0.18 closest NUCA bank; 0.19 ss-array; 0.57 L1"
        ),
        rows=rows,
        notes="mini-Cacti at 70nm; paper used a modified Cacti 3",
    )

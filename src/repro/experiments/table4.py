"""Table 4: cache latencies in cycles, per megabyte.

Geometry-only (mini-Cacti + floorplans): the per-MB hit latency of
2/4/8-d-group NuRAPIDs and the per-MB latency range/average of the
128-bank D-NUCA.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, Scale
from repro.floorplan.dgroups import build_dnuca_geometry, build_nurapid_geometry

#: Paper Table 4 — the 4-d-group column and D-NUCA averages as printed;
#: the scan preserved only fragments of the 2/8-d-group columns.
PAPER_4DG = [14, 14, 18, 18, 22, 22, 26, 26]
PAPER_DNUCA_AVG = [7, 11, 14, 17, 20, 23, 26, 29]


def run(scale: Scale) -> ExperimentReport:
    del scale
    columns = {n: build_nurapid_geometry(n_dgroups=n).table4_column() for n in (2, 4, 8)}
    dnuca = build_dnuca_geometry().table4_column()

    rows = []
    for mb in range(8):
        lo, hi, mean = dnuca[mb]
        rows.append(
            {
                "MB (fastest first)": mb + 1,
                "2 d-groups": columns[2][mb],
                "4 d-groups": columns[4][mb],
                "4 d-groups (paper)": PAPER_4DG[mb],
                "8 d-groups": columns[8][mb],
                "D-NUCA range": f"{lo}-{hi}",
                "D-NUCA avg": round(mean, 1),
                "D-NUCA avg (paper)": PAPER_DNUCA_AVG[mb],
            }
        )
    return ExperimentReport(
        experiment="table4",
        title="Cache latencies in cycles (includes 8-cycle sequential tag)",
        paper_expectation=(
            "4-d-group column 14/14/18/18/22/22/26/26; fastest MB: 19 cycles "
            "with 2 d-groups, ~12 with 8; D-NUCA averages 7..29 (parallel "
            "tag-data, small banks, rectangular floorplan)"
        ),
        rows=rows,
        summary={
            "fastest 2dg": columns[2][0],
            "fastest 4dg": columns[4][0],
            "fastest 8dg": columns[8][0],
        },
        notes="d-group latencies grow with capacity; D-NUCA trades tag energy for latency",
    )

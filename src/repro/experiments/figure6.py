"""Figure 6: performance of NuRAPID policies relative to the base case.

Relative IPC of demotion-only / next-fastest / fastest and the ideal
(constant fastest-d-group latency) NuRAPID against the L2/L3 base
hierarchy.  The paper: demotion-only -0.3%, next-fastest +5.9%,
fastest +5.6%, ideal +7.9%; next-fastest gains 6.9% on high-load and
1.7% on low-load applications; art improves most (~43%).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.nurapid.config import PromotionPolicy
from repro.sim.config import base_config, nurapid_config
from repro.workloads.spec2k import high_load_names, low_load_names, suite_names


def _configs():
    return {
        "demotion-only": nurapid_config(promotion=PromotionPolicy.DEMOTION_ONLY),
        "next-fastest": nurapid_config(promotion=PromotionPolicy.NEXT_FASTEST),
        "fastest": nurapid_config(promotion=PromotionPolicy.FASTEST),
        "ideal": nurapid_config(ideal_uniform=True),
    }


def run(scale: Scale) -> ExperimentReport:
    base = base_config()
    configs = _configs()
    run_matrix([base, *configs.values()], suite_names(), scale)  # parallel prefetch
    rows = []
    rel = {label: {} for label in configs}
    for benchmark in suite_names():
        base_run = cached_run(base, benchmark, scale)
        row = {"benchmark": benchmark, "base IPC": round(base_run.ipc, 3)}
        for label, config in configs.items():
            r = cached_run(config, benchmark, scale)
            ratio = r.ipc / base_run.ipc
            rel[label][benchmark] = ratio
            row[label] = pct(ratio)
        rows.append(row)

    def mean(label, names):
        values = [rel[label][n] for n in names]
        return sum(values) / len(values)

    all_names, high, low = suite_names(), high_load_names(), low_load_names()
    summary = {}
    for label in configs:
        summary[f"{label} overall"] = mean(label, all_names)
        summary[f"{label} high-load"] = mean(label, high)
        summary[f"{label} low-load"] = mean(label, low)
    summary["next-fastest / ideal"] = (
        summary["next-fastest overall"] / summary["ideal overall"]
    )

    return ExperimentReport(
        experiment="figure6",
        title="Performance of NuRAPID policies relative to base L2/L3",
        paper_expectation=(
            "demotion-only -0.3%, next-fastest +5.9%, fastest +5.6%, ideal "
            "+7.9% overall; next-fastest within 98% of ideal; high-load gains "
            "6.9% vs 1.7% low-load; art the largest gainer"
        ),
        rows=rows,
        summary=summary,
    )

"""Figure 9: NuRAPID vs D-NUCA performance.

One-ported, non-banked 4- and 8-d-group NuRAPIDs against the
multi-banked D-NUCA with its ss-performance policy, infinite-bandwidth
switched network, and infinite-bandwidth smart-search array.  The
paper: D-NUCA +2.9% over base; NuRAPID +5.9% (4dg) and +6.0% (8dg) —
i.e. ~3% over D-NUCA on average and up to 15% on individual
applications.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentReport,
    Scale,
    cached_run,
    pct,
    run_matrix,
)
from repro.nuca.config import SearchPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config
from repro.workloads.spec2k import suite_names


def run(scale: Scale) -> ExperimentReport:
    base = base_config()
    configs = {
        "D-NUCA (ss-perf)": dnuca_config(policy=SearchPolicy.SS_PERFORMANCE),
        "NuRAPID 4dg": nurapid_config(n_dgroups=4),
        "NuRAPID 8dg": nurapid_config(n_dgroups=8),
    }
    run_matrix([base, *configs.values()], suite_names(), scale)  # parallel prefetch
    rows = []
    rel = {label: {} for label in configs}
    for benchmark in suite_names():
        base_run = cached_run(base, benchmark, scale)
        row = {"benchmark": benchmark}
        for label, config in configs.items():
            r = cached_run(config, benchmark, scale)
            rel[label][benchmark] = r.ipc / base_run.ipc
            row[label] = pct(rel[label][benchmark])
        rows.append(row)

    names = suite_names()
    summary = {
        f"{label} overall": sum(rel[label][b] for b in names) / len(names)
        for label in configs
    }
    vs_dnuca = [
        rel["NuRAPID 4dg"][b] / rel["D-NUCA (ss-perf)"][b] for b in names
    ]
    summary["NuRAPID 4dg vs D-NUCA mean"] = sum(vs_dnuca) / len(vs_dnuca)
    summary["NuRAPID 4dg vs D-NUCA max"] = max(vs_dnuca)

    return ExperimentReport(
        experiment="figure9",
        title="Performance: D-NUCA vs 4/8-d-group NuRAPID (relative to base)",
        paper_expectation=(
            "D-NUCA +2.9%; NuRAPID +5.9% (4dg) / +6.0% (8dg); NuRAPID beats "
            "D-NUCA by ~3% on average and up to 15%"
        ),
        rows=rows,
        summary=summary,
        notes=(
            "D-NUCA gets the paper's idealizations: infinite network and "
            "ss-array bandwidth, zero switch energy, multibanking"
        ),
    )

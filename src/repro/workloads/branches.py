"""Synthetic branch streams and predictor-based characterization.

Table 3's applications each carry a branch mispredict rate used by the
core timing model.  Rather than leaving those rates as free constants,
this module derives them the way a real toolchain would: synthesize
each application's branch behaviour (a mix of loop back-edges, biased
conditionals, pattern-correlated branches, and data-dependent noise)
and run it through the actual Table 1 predictor
(:class:`~repro.cpu.branch.HybridPredictor`).

``characterize(profile)`` returns the measured rate; the
``table3`` experiment reports it alongside the profile's configured
rate so drift between the two is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRNG
from repro.cpu.branch import HybridPredictor
from repro.workloads.spec2k import BenchmarkProfile


@dataclass(frozen=True)
class BranchMix:
    """Composition of an application's branch stream.

    Fractions must sum to 1:

    * ``loop``     — back-edges taken ~(trip-1)/trip of the time,
    * ``biased``   — if/else with a strong static bias,
    * ``patterned``— short repeating histories (gshare-friendly),
    * ``random``   — data-dependent, near-unpredictable.
    """

    loop: float
    biased: float
    patterned: float
    random: float
    loop_trip_count: int = 16
    bias: float = 0.9
    pattern: Tuple[bool, ...] = (True, True, False, True)

    def __post_init__(self) -> None:
        total = self.loop + self.biased + self.patterned + self.random
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"branch mix sums to {total}, expected 1")
        if min(self.loop, self.biased, self.patterned, self.random) < 0:
            raise ConfigurationError("branch mix fractions must be non-negative")
        if self.loop_trip_count < 2:
            raise ConfigurationError("loop trip count must be at least 2")
        if not 0.5 <= self.bias <= 1.0:
            raise ConfigurationError("bias must be in [0.5, 1]")
        if len(self.pattern) < 2:
            raise ConfigurationError("pattern needs at least two outcomes")


def mix_for_profile(profile: BenchmarkProfile) -> BranchMix:
    """Derive a plausible branch mix from an application's character.

    FP codes are loop-dominated with few hard branches; integer codes
    carry more biased/data-dependent control flow.  The random share is
    set so the hybrid predictor lands near the profile's configured
    mispredict rate (rates beyond ~2% must come from unpredictable
    branches — the predictor nails the other classes).
    """
    random_share = min(0.6, profile.mispredict_rate * 2.2)
    if profile.suite == "FP":
        loop, patterned = 0.62, 0.10
    else:
        loop, patterned = 0.38, 0.14
    biased = max(0.0, 1.0 - loop - patterned - random_share)
    return BranchMix(
        loop=loop, biased=biased, patterned=patterned, random=random_share
    )


def branch_stream(
    mix: BranchMix, n_branches: int, seed: int = 0
) -> Iterator[Tuple[int, bool]]:
    """Yield (pc, taken) pairs drawn from the mix."""
    if n_branches <= 0:
        raise ConfigurationError("n_branches must be positive")
    rng = DeterministicRNG(seed, "branch-stream")
    loop_counters: List[int] = [0] * 8
    pattern_index = 0
    for _ in range(n_branches):
        u = rng.random()
        if u < mix.loop:
            which = rng.randint(0, len(loop_counters) - 1)
            loop_counters[which] += 1
            taken = loop_counters[which] % mix.loop_trip_count != 0
            yield 0x1000 + which * 4, taken
        elif u < mix.loop + mix.biased:
            pc = 0x2000 + rng.randint(0, 15) * 4
            yield pc, rng.random() < mix.bias
        elif u < mix.loop + mix.biased + mix.patterned:
            taken = mix.pattern[pattern_index % len(mix.pattern)]
            pattern_index += 1
            yield 0x3000, taken
        else:
            yield 0x4000 + rng.randint(0, 31) * 4, rng.random() < 0.5


def characterize(
    profile: BenchmarkProfile,
    n_branches: int = 60_000,
    seed: int = 0,
    warmup: int = 10_000,
) -> float:
    """Measured mispredict rate of the profile's branch stream.

    Runs the stream through the Table 1 hybrid predictor; the first
    ``warmup`` branches train without being scored.
    """
    if warmup >= n_branches:
        raise ConfigurationError("warmup must be shorter than the stream")
    predictor = HybridPredictor(8192, history_bits=12)
    mix = mix_for_profile(profile)
    scored = 0
    wrong = 0
    for i, (pc, taken) in enumerate(branch_stream(mix, n_branches, seed)):
        if i >= warmup:
            scored += 1
            if predictor.predict(pc) != taken:
                wrong += 1
        predictor.update(pc, taken)
    return wrong / scored if scored else 0.0

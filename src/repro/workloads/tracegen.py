"""Synthetic reference-trace generation.

Each benchmark's stream is a mixture of four components drawn per
reference (vectorized with numpy for speed):

* **hot** — uniform over a region that fits in the L1; these become
  the pipelined L1 hits that dominate instruction throughput.
* **warm** — Zipf-skewed reuse over the contended working set (0.7–3
  MB); these are the L2 hits whose placement the paper's policies
  fight over.
* **bulk** — Zipf-tailed traffic over several to tens of megabytes;
  spreads across slower d-groups and produces capacity misses.
* **stream** — a sequential pointer; compulsory misses plus the
  spatial reuse a 128 B block gives a smaller stride.

Popularity ranks are permuted before being mapped to addresses so that
"popular" is uncorrelated with set index; an optional set-conflict
layout concentrates the warm region into a fraction of the L2's sets
to create the hot sets §2.1 argues coupled placement handles badly.
"""

from __future__ import annotations

import os
import warnings
import zipfile
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, ReproError
from repro.common.rng import derive_seed
from repro.resilience.integrity import (
    remove_sidecar,
    verify_sidecar,
    write_sidecar,
)
from repro.resilience.locks import FileLock
from repro.telemetry.runtime import runtime_registry
from repro.workloads.spec2k import BenchmarkProfile, get_benchmark
from repro.workloads.trace import Trace

#: Region base addresses, far enough apart never to alias.
HOT_BASE = 0x1000_0000
L2HOT_BASE = 0x2000_0000
WARM_BASE = 0x4000_0000
BULK_BASE = 0x8000_0000
STREAM_BASE = 0x10_0000_0000

#: Reference L2 set count used for the conflict layout (8 MB, 8-way,
#: 128 B blocks).  The layout targets the cache under study.
REFERENCE_L2_SETS = 8192
REFERENCE_BLOCK = 128

#: Granularity of hot-region references (an L1 block).
HOT_GRAIN = 32


def _scatter_tags(addresses: np.ndarray) -> np.ndarray:
    """Permute address bits 20-27 within each region.

    Real SPEC footprints are scattered over virtual pages, so blocks
    sharing a cache set rarely share low-order tag bits.  Our regions
    are compact, which would make D-NUCA's 7-bit partial tags alias on
    nearly every miss and neuter its early-miss detection.  A bijective
    odd-multiplier permutation of bits 20-27 spreads the tags the way
    page allocation does, while leaving every cache's set-index bits
    (all below bit 20) and the region bases (at bit 28 and above)
    untouched.
    """
    window = (addresses >> 20) & 0xFF
    permuted = (window * 167 + 89) & 0xFF  # odd multiplier: a bijection mod 256
    return (addresses & ~(0xFF << 20)) | (permuted << 20)


def _zipf_sampler(rng: np.random.Generator, n_items: int, alpha: float):
    """Return a function drawing Zipf(alpha)-distributed ranks < n_items."""
    if n_items <= 0:
        raise ConfigurationError("zipf needs a positive item count")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    def draw(count: int) -> np.ndarray:
        return np.searchsorted(cdf, rng.random(count), side="left")

    return draw


@dataclass
class TraceGenerator:
    """Deterministic generator for one benchmark profile."""

    profile: BenchmarkProfile
    seed: int = 0
    warm_set_conflict: int = 1

    def __post_init__(self) -> None:
        if self.warm_set_conflict < 1:
            raise ConfigurationError("warm_set_conflict must be >= 1")
        if self.warm_set_conflict == 1:
            # Default to the profile's own conflict layout.
            self.warm_set_conflict = self.profile.warm_set_conflict
        self._rng = np.random.default_rng(
            derive_seed(self.seed, f"trace/{self.profile.name}")
        )

    # --- address construction ---

    def _conflict_layout(self, blocks: np.ndarray, base: int) -> np.ndarray:
        """Lay blocks out contiguously, or into every c-th set.

        With conflict c > 1 block i lands in set (i mod sets/c) * c,
        layer i // (sets/c): the region concentrates into a fraction of
        the sets, creating the hot sets coupled placement handles badly.
        """
        c = self.warm_set_conflict
        if c == 1:
            return base + blocks.astype(np.int64) * REFERENCE_BLOCK
        sets_used = max(1, REFERENCE_L2_SETS // c)
        set_id = (blocks % sets_used) * c
        layer = blocks // sets_used
        slot = layer.astype(np.int64) * REFERENCE_L2_SETS + set_id
        return base + slot * REFERENCE_BLOCK

    def _warm_addresses(self, ranks: np.ndarray) -> np.ndarray:
        """Map warm popularity ranks to (optionally conflicting) addresses."""
        p = self.profile
        n_blocks = max(1, p.warm_bytes // REFERENCE_BLOCK)
        perm = np.random.default_rng(
            derive_seed(self.seed, f"perm-warm/{p.name}")
        ).permutation(n_blocks)
        blocks = perm[np.minimum(ranks, n_blocks - 1)]
        return self._conflict_layout(blocks, WARM_BASE)

    def _bulk_addresses(self, ranks: np.ndarray) -> np.ndarray:
        p = self.profile
        n_blocks = max(1, p.bulk_bytes // REFERENCE_BLOCK)
        perm = np.random.default_rng(
            derive_seed(self.seed, f"perm-bulk/{p.name}")
        ).permutation(n_blocks)
        blocks = perm[np.minimum(ranks, n_blocks - 1)]
        return BULK_BASE + blocks.astype(np.int64) * REFERENCE_BLOCK

    # --- generation ---

    def generate(self, n_references: int) -> Trace:
        """Produce ``n_references`` records."""
        if n_references <= 0:
            raise ConfigurationError("n_references must be positive")
        p = self.profile
        rng = self._rng

        beyond = p.beyond_l1_fraction
        probs = np.array(
            [
                1.0 - beyond,
                beyond * p.warm_share,
                beyond * p.bulk_share,
                beyond * p.stream_share,
                beyond * p.l2hot_share,
            ]
        )
        region = rng.choice(5, size=n_references, p=probs)

        addresses = np.zeros(n_references, dtype=np.int64)

        hot_mask = region == 0
        n_hot_blocks = max(1, p.hot_bytes // HOT_GRAIN)
        hot_blocks = rng.integers(0, n_hot_blocks, size=int(hot_mask.sum()))
        addresses[hot_mask] = HOT_BASE + hot_blocks * HOT_GRAIN

        warm_mask = region == 1
        if warm_mask.any():
            n_warm = max(1, p.warm_bytes // REFERENCE_BLOCK)
            count = int(warm_mask.sum())
            draw = _zipf_sampler(rng, n_warm, p.warm_zipf_alpha)
            ranks = draw(count)
            # Hot-head drift: a fraction of warm traffic concentrates
            # on a sliding window of the region.  The window's blocks
            # are cache-resident (no extra misses) but were last hot a
            # phase ago — the blocks demotion-only placement strands.
            window = max(1, int(n_warm * p.warm_head_window))
            if p.warm_head_share > 0 and window < n_warm:
                positions = np.flatnonzero(warm_mask)
                phase = positions // max(1, p.warm_drift_period)
                step_blocks = max(1, int(n_warm * p.warm_drift_step))
                head = rng.random(count) < p.warm_head_share
                offsets = rng.integers(0, window, size=count)
                head_ranks = (phase * step_blocks + offsets) % n_warm
                ranks = np.where(head, head_ranks, ranks)
            addresses[warm_mask] = self._warm_addresses(ranks)

        bulk_mask = region == 2
        if bulk_mask.any():
            n_bulk = max(1, p.bulk_bytes // REFERENCE_BLOCK)
            draw = _zipf_sampler(rng, n_bulk, p.zipf_alpha)
            addresses[bulk_mask] = self._bulk_addresses(draw(int(bulk_mask.sum())))

        stream_mask = region == 3
        n_stream = int(stream_mask.sum())
        if n_stream:
            steps = np.arange(1, n_stream + 1, dtype=np.int64)
            # Wrap within 256 MB so the address space stays bounded on
            # very long runs; the wrap period far exceeds cache reach.
            offsets = (steps * p.stream_stride) % (256 * 1024 * 1024)
            addresses[stream_mask] = STREAM_BASE + offsets

        l2hot_mask = region == 4
        if l2hot_mask.any():
            n_l2hot = max(1, p.l2hot_bytes // REFERENCE_BLOCK)
            draw = _zipf_sampler(rng, n_l2hot, 0.3)
            ranks = draw(int(l2hot_mask.sum()))
            perm = np.random.default_rng(
                derive_seed(self.seed, f"perm-l2hot/{p.name}")
            ).permutation(n_l2hot)
            blocks = perm[np.minimum(ranks, n_l2hot - 1)]
            addresses[l2hot_mask] = self._conflict_layout(
                blocks, L2HOT_BASE
            )

        addresses = _scatter_tags(addresses)
        gaps = rng.geometric(p.mem_fraction, size=n_references).astype(np.int64)
        writes = rng.random(n_references) < p.write_fraction

        return Trace(
            benchmark=p.name,
            gaps=gaps,
            addresses=addresses,
            writes=writes,
        )


def generate_trace(
    profile: BenchmarkProfile,
    n_references: int,
    seed: int = 0,
    warm_set_conflict: int = 1,
) -> Trace:
    """Convenience wrapper: one-shot trace for a profile."""
    return TraceGenerator(
        profile=profile, seed=seed, warm_set_conflict=warm_set_conflict
    ).generate(n_references)


#: Errors a half-written or corrupted ``.npz`` can surface as when
#: loaded; anything else (e.g. a directory permission problem that
#: would also break the rewrite) still propagates.
_CACHE_LOAD_ERRORS = (
    ReproError,
    OSError,
    ValueError,
    KeyError,
    EOFError,
    zipfile.BadZipFile,
)


def default_trace_cache_dir() -> Optional[str]:
    """The ambient cache directory: ``REPRO_TRACE_CACHE``, or None."""
    return os.environ.get("REPRO_TRACE_CACHE") or None


class TraceCache:
    """On-disk ``.npz`` trace store keyed by generation parameters.

    A trace is fully determined by ``(benchmark, n_references, seed,
    warm_set_conflict)``, so those four values are the file name and
    the cache needs no invalidation logic.  Writes are atomic (unique
    temp file + ``os.replace``), which makes the directory safe to
    share between concurrent sweep processes: the worst race is two
    processes generating the same trace and one rename winning.

    A corrupted or stale file (killed mid-write before PRs used atomic
    renames, disk damage, a benchmark profile edit that changed the
    record count) is detected on load and regenerated in place —
    loudly: a :class:`RuntimeWarning` and the runtime telemetry counter
    ``trace_cache.corrupt_recovered`` record that disk state was thrown
    away, so silent data loss is visible.  ``hits`` / ``misses`` count
    how often the disk copy was usable.

    Integrity is checked before content: every write leaves a
    ``<name>.npz.sha256`` sidecar, and a sidecar mismatch condemns the
    entry without paying for an ``.npz`` parse.  Entries predating the
    sidecars (no sidecar file) fall back to the load-and-validate path.
    Generation for a given key is serialized across processes with a
    :class:`FileLock`, so N workers cold-starting on a shared cache
    directory generate each trace once instead of N times.
    """

    def __init__(self, directory: str) -> None:
        if not directory:
            raise ConfigurationError("trace cache needs a directory")
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def path_for(
        self,
        benchmark: str,
        n_references: int,
        seed: int = 0,
        warm_set_conflict: int = 1,
    ) -> str:
        return os.path.join(
            self.directory,
            f"{benchmark}-r{n_references}-s{seed}-c{warm_set_conflict}.npz",
        )

    def _load_valid(
        self, path: str, benchmark: str, n_references: int, report: bool = True
    ) -> Optional[Trace]:
        if not os.path.exists(path):
            return None
        # Sidecar first: a checksum mismatch condemns the file without
        # parsing it.  A missing sidecar (pre-sidecar entry) is not a
        # verdict — fall through to the load-and-validate path.
        if verify_sidecar(path) is False:
            if report:
                self._report_unusable(path, "failed its checksum")
            return None
        try:
            trace = Trace.load(path)
        except _CACHE_LOAD_ERRORS as exc:
            if report:
                self._report_unusable(path, f"was unreadable ({exc})")
            return None
        if trace.benchmark != benchmark or len(trace) != n_references:
            # Stale: key scheme and content disagree.
            if report:
                self._report_unusable(path, "does not match its key")
            return None
        return trace

    @staticmethod
    def _report_unusable(path: str, reason: str) -> None:
        runtime_registry().add("trace_cache.corrupt_recovered")
        warnings.warn(
            f"trace cache entry {path!r} {reason}; regenerating it "
            "(cached simulation inputs on this disk are not trustworthy)",
            RuntimeWarning,
            stacklevel=4,
        )

    def fetch(
        self,
        benchmark: str,
        n_references: int,
        seed: int = 0,
        warm_set_conflict: int = 1,
    ) -> Tuple[Trace, str]:
        """The trace and its on-disk path, generating at most once."""
        if n_references <= 0:
            raise ConfigurationError("n_references must be positive")
        path = self.path_for(benchmark, n_references, seed, warm_set_conflict)
        trace = self._load_valid(path, benchmark, n_references)
        if trace is not None:
            self.hits += 1
            return trace, path
        os.makedirs(self.directory, exist_ok=True)
        with FileLock(path + ".lock"):
            # Another process may have generated it while we waited; a
            # still-broken file was already reported above, so this
            # re-check stays quiet.
            trace = self._load_valid(path, benchmark, n_references, report=False)
            if trace is not None:
                self.hits += 1
                return trace, path
            trace = generate_trace(
                get_benchmark(benchmark),
                n_references,
                seed=seed,
                warm_set_conflict=warm_set_conflict,
            )
            # np.savez appends ".npz" to suffix-less paths, so the temp
            # name must already carry it for the rename to find the file.
            tmp = f"{path}.{os.getpid()}.tmp.npz"
            try:
                trace.save(tmp)
                os.replace(tmp, path)
                write_sidecar(path)
            finally:
                if os.path.exists(tmp):
                    os.remove(tmp)
        self.misses += 1
        return trace, path

    def get(
        self,
        benchmark: str,
        n_references: int,
        seed: int = 0,
        warm_set_conflict: int = 1,
    ) -> Trace:
        return self.fetch(benchmark, n_references, seed, warm_set_conflict)[0]

    def ensure(
        self,
        benchmark: str,
        n_references: int,
        seed: int = 0,
        warm_set_conflict: int = 1,
    ) -> str:
        """Guarantee the trace exists on disk; return its path."""
        return self.fetch(benchmark, n_references, seed, warm_set_conflict)[1]

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-touched traces past a size budget.

        Returns the number of files removed.  Traces are evicted
        oldest-``mtime`` first until the directory fits ``max_bytes``;
        loading a trace does not bump its mtime, so this is a cheap
        FIFO-by-write policy rather than strict LRU.
        """
        if max_bytes < 0:
            raise ConfigurationError("max_bytes must be non-negative")
        if not os.path.isdir(self.directory):
            return 0
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            remove_sidecar(path)
            total -= size
            removed += 1
        return removed

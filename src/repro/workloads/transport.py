"""Zero-copy decoded-trace transport for worker processes.

A :class:`~repro.workloads.tracegen.TraceCache` entry is a compressed
``.npz``: every worker that loads one pays a zlib inflate plus three
array copies per cell, even when ten cells in the same process replay
the same trace.  This module removes both costs:

* **Parent side** — :func:`ensure_decoded` lays the trace's columns
  down once as a single *uncompressed* structured ``.npy`` segment next
  to the ``.npz`` (fields ``gap``/``addr``/``write``, aligned), written
  atomically under the same :class:`~repro.resilience.locks.FileLock`
  discipline as the cache itself and protected by a ``.sha256``
  sidecar.  The segment is content-derived from the ``.npz`` (traces
  are pure functions of their cache key), so it needs no invalidation.
* **Worker side** — :func:`load_mmap_trace` memory-maps the segment
  (``np.load(mmap_mode="r")``) and builds a :class:`Trace` whose
  columns are views into the map: no inflate, no copies, and the pages
  are shared read-only between every worker on the host through the
  page cache.  The constructed ``Trace`` is memoized per process, so
  its ``decoded_batch``/``split`` caches survive across cells — a
  worker decodes each trace at most once no matter how many cells it
  executes (the ``transport.trace_reuses`` counter proves it).

Everything here is an optimization layer over the existing
path-shipping protocol: any problem (missing segment, checksum
mismatch, shape drift) returns ``None`` and the caller falls back to
``Trace.load`` on the ``.npz``, bit-identically.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Set

import numpy as np

from repro.resilience.integrity import verify_sidecar, write_sidecar
from repro.resilience.locks import FileLock
from repro.telemetry.runtime import runtime_registry
from repro.workloads.trace import Trace

#: Suffix of the decoded segment sitting next to its ``.npz``.
DECODED_SUFFIX = ".decoded.npy"

#: One record per reference; ``align=True`` pads the bool flag so the
#: int64 columns stay 8-byte aligned inside the map.
DECODED_DTYPE = np.dtype(
    [("gap", "<i8"), ("addr", "<i8"), ("write", "?")], align=True
)

#: Segments this process already built or validated (parent side), so
#: repeated task construction does not re-hash the file per cell.
_ENSURED: Set[str] = set()

#: Traces this process already materialized from a segment (worker
#: side); the cached object carries its decode caches with it.
_LOADED: Dict[str, Trace] = {}


def decoded_path(trace_path: str) -> str:
    """The segment path for a cached trace ``.npz``."""
    base = trace_path[:-4] if trace_path.endswith(".npz") else trace_path
    return base + DECODED_SUFFIX


def ensure_decoded(trace_path: Optional[str]) -> Optional[str]:
    """Build (or find) the decoded segment for ``trace_path``.

    Called in the parent when constructing cell tasks.  Returns the
    segment path, or ``None`` when there is nothing to transport (no
    trace path, or the ``.npz`` is missing/unreadable — the worker
    fallback will surface that properly).  Concurrent parents building
    the same segment serialize on a file lock and the losers reuse the
    winner's file.
    """
    if trace_path is None:
        return None
    path = decoded_path(trace_path)
    if path in _ENSURED:
        return path
    reg = runtime_registry()
    if os.path.exists(path) and verify_sidecar(path) is True:
        _ENSURED.add(path)
        reg.add("transport.segment_reuses")
        return path
    if not os.path.exists(trace_path):
        return None
    with FileLock(path + ".lock"):
        # Another process may have finished the build while we waited.
        if os.path.exists(path) and verify_sidecar(path) is True:
            _ENSURED.add(path)
            reg.add("transport.segment_reuses")
            return path
        try:
            trace = Trace.load(trace_path)
        except Exception:
            return None
        records = np.zeros(len(trace), dtype=DECODED_DTYPE)
        records["gap"] = trace.gaps
        records["addr"] = trace.addresses
        records["write"] = trace.writes
        tmp = f"{path}.{os.getpid()}.tmp.npy"
        try:
            np.save(tmp, records)
            os.replace(tmp, path)
            write_sidecar(path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
    _ENSURED.add(path)
    reg.add("transport.segment_builds")
    return path


def load_mmap_trace(
    path: str, benchmark: str, n_references: int
) -> Optional[Trace]:
    """The memoized mmap-backed :class:`Trace` for a segment, or None.

    Called in the worker.  The first call per process maps the file
    and constructs the ``Trace`` (``transport.trace_loads``); later
    calls return the same object (``transport.trace_reuses``), sharing
    its decode caches across cells.  A missing, corrupt, or mismatched
    segment counts ``transport.mmap_unusable`` and returns ``None`` so
    the caller can fall back to the ``.npz``.
    """
    reg = runtime_registry()
    cached = _LOADED.get(path)
    if cached is not None:
        if cached.benchmark != benchmark or len(cached) != n_references:
            reg.add("transport.mmap_unusable")
            return None
        reg.add("transport.trace_reuses")
        return cached
    if not os.path.exists(path) or verify_sidecar(path) is False:
        reg.add("transport.mmap_unusable")
        return None
    try:
        records = np.load(path, mmap_mode="r", allow_pickle=False)
    except Exception:
        reg.add("transport.mmap_unusable")
        return None
    if (
        records.dtype != DECODED_DTYPE
        or records.ndim != 1
        or len(records) != n_references
    ):
        reg.add("transport.mmap_unusable")
        return None
    trace = Trace(
        benchmark=benchmark,
        gaps=records["gap"],
        addresses=records["addr"],
        writes=records["write"],
    )
    _LOADED[path] = trace
    reg.add("transport.trace_loads")
    return trace


def reset_for_tests() -> None:
    """Drop the process memos (tests that rewrite segments need this)."""
    _ENSURED.clear()
    _LOADED.clear()

"""Trace containers and on-disk format.

A trace is a sequence of records ``(gap, address, is_write)``: the
number of instructions retired since the previous record (including
the memory instruction itself) and the reference it ends with.  Traces
are stored columnar in numpy arrays — tens of millions of records fit
comfortably — and can be cached to ``.npz`` files so experiment suites
generate each benchmark's stream once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class DecodedTrace:
    """A trace pre-decoded into plain Python lists for the hot loop.

    ``records()`` boxes every numpy scalar on the fly; the fast replay
    engine instead decodes the whole trace once (``.tolist()`` is a
    single C-level pass) and pre-computes the L1 block addresses and
    set indices vectorized over the full columns, so the per-reference
    loop does zero numpy scalar boxing and zero repeated shift/mask
    work.
    """

    gaps: List[int]
    addresses: List[int]
    writes: List[bool]
    #: Block addresses for the requested (block_bytes, n_sets) geometry.
    block_addrs: List[int]
    #: Set indices for the same geometry.
    set_indices: List[int]

    def __len__(self) -> int:
        return len(self.gaps)


@dataclass(frozen=True)
class BatchDecodedTrace:
    """A trace decoded for the vectorized replay kernel.

    Carries the same plain-list columns as :class:`DecodedTrace` (the
    scalar tail loop wants unboxed Python ints) *plus* the numpy
    columns the chunked pre-pass slices wholesale.  Produced once per
    (block_bytes, n_sets) geometry by :meth:`Trace.decoded_batch` and
    cached on the trace, so warmup and measured replays of the same
    split share the decode work.
    """

    gaps: List[int]
    addresses: List[int]
    writes: List[bool]
    block_addrs: List[int]
    set_indices: List[int]
    #: First frame of each reference's set (``2 * set_index`` for the
    #: 2-way L1), as plain ints for the scalar tail loop.
    frames: List[int]
    #: Numpy views for the chunk kernel: int64 gaps/block addresses,
    #: int64 doubled set indices, and the write flags as a bool array.
    np_gaps: np.ndarray
    np_block_addrs: np.ndarray
    np_frames: np.ndarray
    np_writes: np.ndarray

    def __len__(self) -> int:
        return len(self.gaps)


@dataclass(frozen=True)
class Trace:
    """Columnar reference trace plus its provenance."""

    benchmark: str
    gaps: np.ndarray
    addresses: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.gaps)
        if len(self.addresses) != n or len(self.writes) != n:
            raise ConfigurationError("trace columns must have equal length")
        if n and int(self.gaps.min()) < 1:
            raise ConfigurationError("gaps must be >= 1 (each record is an instruction)")

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def instructions(self) -> int:
        """Total instructions represented, including the references."""
        return int(self.gaps.sum())

    @property
    def references(self) -> int:
        return len(self.gaps)

    def records(self) -> Iterator[Tuple[int, int, bool]]:
        """Iterate (gap, address, is_write) as Python scalars."""
        gaps = self.gaps.tolist()
        addresses = self.addresses.tolist()
        writes = self.writes.tolist()
        return zip(gaps, addresses, writes)

    def decoded(self, block_bytes: int, n_sets: int) -> DecodedTrace:
        """One-shot decode for the fast replay engine.

        Converts the columns to Python lists and pre-computes the
        block address and set index of every reference for a cache
        with ``block_bytes`` blocks over ``n_sets`` sets (vectorized;
        bit-identical to calling :func:`~repro.caches.block.block_address`
        and :func:`~repro.caches.block.set_index` per record).
        """
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigurationError(
                f"block size must be a positive power of two, got {block_bytes}"
            )
        if n_sets <= 0 or n_sets & (n_sets - 1):
            raise ConfigurationError(
                f"set count must be a positive power of two, got {n_sets}"
            )
        if not len(self.gaps):
            raise ConfigurationError(
                f"trace '{self.benchmark}' is empty; nothing to decode "
                "(generate or load references before replaying)"
            )
        addresses = np.asarray(self.addresses, dtype=np.int64)
        baddrs = addresses & ~np.int64(block_bytes - 1)
        shift = block_bytes.bit_length() - 1
        indices = (addresses >> shift) & np.int64(n_sets - 1)
        return DecodedTrace(
            gaps=self.gaps.tolist(),
            addresses=self.addresses.tolist(),
            writes=self.writes.tolist(),
            block_addrs=baddrs.tolist(),
            set_indices=indices.tolist(),
        )

    def decoded_batch(self, block_bytes: int, n_sets: int) -> BatchDecodedTrace:
        """Decode for the vectorized kernel, cached per geometry.

        Same validation and list columns as :meth:`decoded`, plus the
        numpy columns the chunked pre-pass consumes.  The result is
        memoized on the trace (keyed by geometry) because the driver
        replays the same trace object once for warmup and once
        measured.
        """
        key = (block_bytes, n_sets)
        cache = getattr(self, "_batch_cache", None)
        if cache is not None and key in cache:
            return cache[key]
        plain = self.decoded(block_bytes, n_sets)
        baddrs = np.asarray(plain.block_addrs, dtype=np.int64)
        frames = np.asarray(plain.set_indices, dtype=np.int64)
        frames = frames + frames
        batch = BatchDecodedTrace(
            gaps=plain.gaps,
            addresses=plain.addresses,
            writes=plain.writes,
            block_addrs=plain.block_addrs,
            set_indices=plain.set_indices,
            frames=frames.tolist(),
            np_gaps=np.asarray(self.gaps, dtype=np.int64),
            np_block_addrs=baddrs,
            np_frames=frames,
            np_writes=np.asarray(self.writes, dtype=bool),
        )
        if cache is None:
            cache = {}
            object.__setattr__(self, "_batch_cache", cache)
        cache[key] = batch
        return batch

    def head(self, n: int) -> "Trace":
        """First ``n`` records (used for warmup splits and quick runs)."""
        if n < 0:
            raise ConfigurationError("head length must be non-negative")
        return Trace(
            benchmark=self.benchmark,
            gaps=self.gaps[:n],
            addresses=self.addresses[:n],
            writes=self.writes[:n],
        )

    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into (warmup, measured) at ``fraction`` of the records.

        Memoized per fraction: every cell of a sweep (and every bench
        repetition) splits its trace at the same point, and reusing the
        child ``Trace`` objects also reuses their :meth:`decoded_batch`
        caches — the decode then happens once per trace instead of once
        per run.  The children are frozen views over this trace's
        arrays, so sharing them is safe.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("split fraction must be in [0, 1)")
        cache = getattr(self, "_split_cache", None)
        if cache is not None and fraction in cache:
            return cache[fraction]
        cut = int(len(self) * fraction)
        warm = self.head(cut)
        rest = Trace(
            benchmark=self.benchmark,
            gaps=self.gaps[cut:],
            addresses=self.addresses[cut:],
            writes=self.writes[cut:],
        )
        if cache is None:
            cache = {}
            object.__setattr__(self, "_split_cache", cache)
        cache[fraction] = (warm, rest)
        return warm, rest

    # --- persistence ---

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            benchmark=np.array(self.benchmark),
            gaps=self.gaps,
            addresses=self.addresses,
            writes=self.writes,
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        if not os.path.exists(path):
            raise ConfigurationError(f"no trace file at {path}")
        with np.load(path, allow_pickle=False) as data:
            return cls(
                benchmark=str(data["benchmark"]),
                gaps=data["gaps"],
                addresses=data["addresses"],
                writes=data["writes"],
            )

"""Trace containers and on-disk format.

A trace is a sequence of records ``(gap, address, is_write)``: the
number of instructions retired since the previous record (including
the memory instruction itself) and the reference it ends with.  Traces
are stored columnar in numpy arrays — tens of millions of records fit
comfortably — and can be cached to ``.npz`` files so experiment suites
generate each benchmark's stream once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Trace:
    """Columnar reference trace plus its provenance."""

    benchmark: str
    gaps: np.ndarray
    addresses: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.gaps)
        if len(self.addresses) != n or len(self.writes) != n:
            raise ConfigurationError("trace columns must have equal length")
        if n and int(self.gaps.min()) < 1:
            raise ConfigurationError("gaps must be >= 1 (each record is an instruction)")

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def instructions(self) -> int:
        """Total instructions represented, including the references."""
        return int(self.gaps.sum())

    @property
    def references(self) -> int:
        return len(self.gaps)

    def records(self) -> Iterator[Tuple[int, int, bool]]:
        """Iterate (gap, address, is_write) as Python scalars."""
        gaps = self.gaps.tolist()
        addresses = self.addresses.tolist()
        writes = self.writes.tolist()
        return zip(gaps, addresses, writes)

    def head(self, n: int) -> "Trace":
        """First ``n`` records (used for warmup splits and quick runs)."""
        if n < 0:
            raise ConfigurationError("head length must be non-negative")
        return Trace(
            benchmark=self.benchmark,
            gaps=self.gaps[:n],
            addresses=self.addresses[:n],
            writes=self.writes[:n],
        )

    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into (warmup, measured) at ``fraction`` of the records."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("split fraction must be in [0, 1)")
        cut = int(len(self) * fraction)
        warm = self.head(cut)
        rest = Trace(
            benchmark=self.benchmark,
            gaps=self.gaps[cut:],
            addresses=self.addresses[cut:],
            writes=self.writes[cut:],
        )
        return warm, rest

    # --- persistence ---

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            benchmark=np.array(self.benchmark),
            gaps=self.gaps,
            addresses=self.addresses,
            writes=self.writes,
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        if not os.path.exists(path):
            raise ConfigurationError(f"no trace file at {path}")
        with np.load(path, allow_pickle=False) as data:
            return cls(
                benchmark=str(data["benchmark"]),
                gaps=data["gaps"],
                addresses=data["addresses"],
                writes=data["writes"],
            )

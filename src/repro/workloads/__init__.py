"""Synthetic SPEC2K-like workloads.

The paper drives its evaluation with 15 SPEC2K applications (Table 3),
fast-forwarded 5 B instructions and run for 500 M on ref inputs.
Without SPEC binaries or SimpleScalar, each application is modeled as
a stochastic reference stream (see :mod:`repro.workloads.tracegen`)
shaped by a :class:`~repro.workloads.spec2k.BenchmarkProfile`:

* a *hot* region that fits in the L1 (pipelined hits),
* a *warm* region sized around the fastest d-group's capacity — the
  working set whose placement the paper's policies fight over,
* a *bulk* region with a Zipf popularity tail spanning multiple
  megabytes (spread over the slower d-groups), and
* a *streaming* component of compulsory misses.

Per-application L2 accesses per kilo-instruction and base IPC follow
Table 3 (cells the scan lost are reconstructed and marked in
EXPERIMENTS.md).  Stack-frequency streams reproduce the property the
results rest on: hit-rate-vs-capacity curves and hot-set reuse.
"""

from repro.workloads.spec2k import (
    BenchmarkProfile,
    SPEC2K_SUITE,
    get_benchmark,
    high_load_names,
    low_load_names,
    suite_names,
)
from repro.workloads.trace import Trace
from repro.workloads.tracegen import (
    TraceCache,
    TraceGenerator,
    default_trace_cache_dir,
    generate_trace,
)

__all__ = [
    "BenchmarkProfile",
    "SPEC2K_SUITE",
    "Trace",
    "TraceCache",
    "TraceGenerator",
    "default_trace_cache_dir",
    "generate_trace",
    "get_benchmark",
    "high_load_names",
    "low_load_names",
    "suite_names",
]

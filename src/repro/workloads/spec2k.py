"""The synthetic SPEC2K suite (Table 3).

Each profile pairs the paper's published characterization (base IPC
and L2 accesses per kilo-instruction; cells the scan lost are
reconstructed from the SPEC2K literature and flagged in
EXPERIMENTS.md) with the generator shape that reproduces it: region
sizes, traffic shares, popularity skew, and core-model parameters.

The *warm* region is each application's contended working set — its
size relative to the fastest d-group (2 MB in the primary 4-d-group
NuRAPID) is what differentiates the 2/4/8-d-group results of §5.3.2,
so profiles place it between ~0.7 and ~3 MB across the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigurationError

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator + core-model parameters for one application."""

    name: str
    suite: str  # "FP" or "Int"
    load_class: str  # "high" or "low"
    #: Table 3 targets (measured on the base system by the table3
    #: experiment; these are the paper's values for comparison).
    table3_ipc: float
    table3_l2_apki: float
    #: Memory references per instruction presented to the L1.
    mem_fraction: float
    #: Region sizes (bytes).
    hot_bytes: int
    warm_bytes: int
    bulk_bytes: int
    #: Shares of beyond-L1 traffic (with l2hot_share, must sum to 1).
    warm_share: float
    bulk_share: float
    stream_share: float
    #: Zipf exponent for bulk-region popularity (higher = more skew).
    zipf_alpha: float
    write_fraction: float
    stream_stride: int
    #: Core model: IPC when all references hit the L1, exposed fraction
    #: of beyond-L1 latency, branch mix, and mispredict rate.
    core_ipc: float
    exposure: float
    branch_fraction: float
    mispredict_rate: float
    #: Persistent hot tier: bigger than the L1, smaller than the base
    #: L2, reused heavily for the whole run with no drift.  This is the
    #: traffic a 1 MB L2 serves at 14 cycles, D-NUCA bubbles into its
    #: fastest banks, and demotion-only placement strands (§2.4.1).
    l2hot_bytes: int = 0
    l2hot_share: float = 0.0
    #: Warm traffic splits into a concentrated *head* — a window of
    #: ``warm_head_window`` of the region receiving ``warm_head_share``
    #: of the warm accesses — and a uniform body over the whole region.
    #: Every ``warm_drift_period`` references the head window slides by
    #: ``warm_drift_step`` of the region: the newly hot blocks are
    #: still cache-resident (so miss rates are unaffected) but, under
    #: demotion-only placement, stranded in slow d-groups — the §2.4.1
    #: "stuck block" phenomenon promotion policies repair.
    warm_head_share: float = 0.65
    warm_head_window: float = 0.06
    warm_drift_period: int = 25_000
    warm_drift_step: float = 0.02
    #: Concentrate the warm region into every n-th L2 set (hot sets).
    warm_set_conflict: int = 1
    #: Popularity skew within the warm region; low values spread the
    #: traffic over the whole region (effective working set ~= size).
    warm_zipf_alpha: float = 0.25
    #: Fraction of this application's lines that compress (FPC/BDI
    #: style); the compressed-NuRAPID variant draws per-line
    #: compressibility against this share.  Integer codes compress
    #: readily (small immediates, zero runs) while FP data is dense,
    #: so Int profiles sit higher.
    compressibility: float = 0.65

    def __post_init__(self) -> None:
        shares = (
            self.warm_share + self.bulk_share + self.stream_share + self.l2hot_share
        )
        if abs(shares - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: beyond-L1 shares sum to {shares}, expected 1"
            )
        if self.l2hot_share > 0 and self.l2hot_bytes <= 0:
            raise ConfigurationError(f"{self.name}: l2hot traffic needs a region size")
        if min(self.warm_share, self.bulk_share, self.stream_share, self.l2hot_share) < 0:
            raise ConfigurationError(f"{self.name}: traffic shares must be non-negative")
        if not 0.0 < self.mem_fraction < 1.0:
            raise ConfigurationError(f"{self.name}: mem_fraction out of range")
        if min(self.hot_bytes, self.warm_bytes, self.bulk_bytes) <= 0:
            raise ConfigurationError(f"{self.name}: region sizes must be positive")
        if self.stream_stride <= 0:
            raise ConfigurationError(f"{self.name}: stream stride must be positive")
        if not 0.0 <= self.compressibility <= 1.0:
            raise ConfigurationError(f"{self.name}: compressibility out of range")

    @property
    def beyond_l1_fraction(self) -> float:
        """Fraction of references targeted past the L1 (drives L2 APKI)."""
        refs_per_ki = self.mem_fraction * 1000.0
        return min(0.95, self.table3_l2_apki / refs_per_ki)

    @property
    def is_high_load(self) -> bool:
        return self.load_class == "high"


def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


#: The 15-application suite.  High-load applications have substantial
#: lower-level cache activity; low-load ones mostly live in the L1.
SPEC2K_SUITE: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _p(name="applu", suite="FP", load_class="high", table3_ipc=0.9,
           table3_l2_apki=42.0, mem_fraction=0.36, hot_bytes=24 * KB,
           warm_bytes=1900 * KB, bulk_bytes=10 * MB, l2hot_bytes=192 * KB, l2hot_share=0.45,
           warm_share=0.17,
           bulk_share=0.26, stream_share=0.12, zipf_alpha=0.9,
           write_fraction=0.28, stream_stride=64, core_ipc=3.2,
           exposure=0.62, branch_fraction=0.06, mispredict_rate=0.02),
        _p(name="apsi", suite="FP", load_class="high", table3_ipc=1.1,
           table3_l2_apki=25.0, mem_fraction=0.34, hot_bytes=24 * KB,
           warm_bytes=1800 * KB, bulk_bytes=8 * MB, l2hot_bytes=160 * KB, l2hot_share=0.45,
           warm_share=0.2,
           bulk_share=0.25, stream_share=0.1, zipf_alpha=1.0,
           write_fraction=0.30, stream_stride=64, core_ipc=3.4,
           exposure=0.58, branch_fraction=0.08, mispredict_rate=0.03,
           warm_set_conflict=2),
        _p(name="art", suite="FP", load_class="high", table3_ipc=0.5,
           table3_l2_apki=37.0, mem_fraction=0.36, hot_bytes=24 * KB,
           warm_bytes=1800 * KB, bulk_bytes=3 * MB, l2hot_bytes=256 * KB, l2hot_share=0.42,
           warm_share=0.38,
           bulk_share=0.16, stream_share=0.04, zipf_alpha=0.7,
           write_fraction=0.18, stream_stride=64, core_ipc=2.6,
           exposure=0.75, branch_fraction=0.10, mispredict_rate=0.04,
           warm_set_conflict=3, compressibility=0.52),
        _p(name="bzip2", suite="Int", load_class="high", table3_ipc=1.2,
           table3_l2_apki=20.0, mem_fraction=0.33, hot_bytes=28 * KB,
           warm_bytes=1500 * KB, bulk_bytes=7 * MB, l2hot_bytes=160 * KB, l2hot_share=0.45,
           warm_share=0.17,
           bulk_share=0.28, stream_share=0.1, zipf_alpha=1.1,
           write_fraction=0.32, stream_stride=32, core_ipc=3.3,
           exposure=0.55, branch_fraction=0.14, mispredict_rate=0.06,
           warm_set_conflict=2, compressibility=0.35),
        _p(name="equake", suite="FP", load_class="high", table3_ipc=0.7,
           table3_l2_apki=39.0, mem_fraction=0.38, hot_bytes=20 * KB,
           warm_bytes=1100 * KB, bulk_bytes=8 * MB, l2hot_bytes=192 * KB, l2hot_share=0.42,
           warm_share=0.2,
           bulk_share=0.27, stream_share=0.11, zipf_alpha=0.62,
           write_fraction=0.22, stream_stride=64, core_ipc=3.0,
           exposure=0.70, branch_fraction=0.08, mispredict_rate=0.03),
        _p(name="galgel", suite="FP", load_class="high", table3_ipc=0.9,
           table3_l2_apki=28.0, mem_fraction=0.37, hot_bytes=24 * KB,
           warm_bytes=1000 * KB, bulk_bytes=5 * MB, l2hot_bytes=160 * KB, l2hot_share=0.45,
           warm_share=0.2,
           bulk_share=0.28, stream_share=0.07, zipf_alpha=0.6,
           write_fraction=0.24, stream_stride=64, core_ipc=3.1,
           exposure=0.60, branch_fraction=0.07, mispredict_rate=0.02,
           warm_set_conflict=2),
        _p(name="mcf", suite="Int", load_class="high", table3_ipc=0.2,
           table3_l2_apki=60.0, mem_fraction=0.38, hot_bytes=16 * KB,
           warm_bytes=2600 * KB, bulk_bytes=24 * MB, l2hot_bytes=224 * KB, l2hot_share=0.28,
           warm_share=0.17,
           bulk_share=0.45, stream_share=0.1, zipf_alpha=0.75,
           write_fraction=0.14, stream_stride=128, core_ipc=2.2,
           exposure=0.75, branch_fraction=0.18, mispredict_rate=0.08,
           compressibility=0.78),
        _p(name="mgrid", suite="FP", load_class="high", table3_ipc=0.8,
           table3_l2_apki=30.0, mem_fraction=0.37, hot_bytes=24 * KB,
           warm_bytes=1800 * KB, bulk_bytes=9 * MB, l2hot_bytes=192 * KB, l2hot_share=0.45,
           warm_share=0.17,
           bulk_share=0.27, stream_share=0.11, zipf_alpha=0.9,
           write_fraction=0.26, stream_stride=64, core_ipc=3.1,
           exposure=0.64, branch_fraction=0.05, mispredict_rate=0.02),
        _p(name="parser", suite="Int", load_class="high", table3_ipc=0.9,
           table3_l2_apki=14.0, mem_fraction=0.33, hot_bytes=26 * KB,
           warm_bytes=1400 * KB, bulk_bytes=5 * MB, l2hot_bytes=128 * KB, l2hot_share=0.45,
           warm_share=0.18,
           bulk_share=0.29, stream_share=0.08, zipf_alpha=1.05,
           write_fraction=0.30, stream_stride=32, core_ipc=2.8,
           exposure=0.58, branch_fraction=0.17, mispredict_rate=0.07,
           warm_set_conflict=2),
        _p(name="swim", suite="FP", load_class="high", table3_ipc=0.4,
           table3_l2_apki=17.0, mem_fraction=0.37, hot_bytes=20 * KB,
           warm_bytes=2200 * KB, bulk_bytes=14 * MB, l2hot_bytes=192 * KB, l2hot_share=0.35,
           warm_share=0.18,
           bulk_share=0.27, stream_share=0.2, zipf_alpha=0.8,
           write_fraction=0.30, stream_stride=64, core_ipc=2.7,
           exposure=0.75, branch_fraction=0.04, mispredict_rate=0.01),
        _p(name="twolf", suite="Int", load_class="high", table3_ipc=0.8,
           table3_l2_apki=18.0, mem_fraction=0.34, hot_bytes=24 * KB,
           warm_bytes=950 * KB, bulk_bytes=4 * MB, l2hot_bytes=144 * KB, l2hot_share=0.45,
           warm_share=0.2,
           bulk_share=0.29, stream_share=0.06, zipf_alpha=0.6,
           write_fraction=0.26, stream_stride=32, core_ipc=2.9,
           exposure=0.56, branch_fraction=0.16, mispredict_rate=0.07,
           warm_set_conflict=2, compressibility=0.74),
        _p(name="vpr", suite="Int", load_class="high", table3_ipc=0.9,
           table3_l2_apki=16.0, mem_fraction=0.34, hot_bytes=24 * KB,
           warm_bytes=1600 * KB, bulk_bytes=5 * MB, l2hot_bytes=144 * KB, l2hot_share=0.45,
           warm_share=0.19,
           bulk_share=0.28, stream_share=0.08, zipf_alpha=1.0,
           write_fraction=0.24, stream_stride=32, core_ipc=2.9,
           exposure=0.57, branch_fraction=0.15, mispredict_rate=0.06,
           warm_set_conflict=2),
        _p(name="gcc", suite="Int", load_class="low", table3_ipc=1.4,
           table3_l2_apki=6.0, mem_fraction=0.32, hot_bytes=28 * KB,
           warm_bytes=700 * KB, bulk_bytes=1536 * KB, l2hot_bytes=128 * KB, l2hot_share=0.45,
           warm_share=0.19,
           bulk_share=0.26, stream_share=0.1, zipf_alpha=1.1,
           write_fraction=0.30, stream_stride=32, core_ipc=3.0,
           exposure=0.50, branch_fraction=0.18, mispredict_rate=0.05),
        _p(name="mesa", suite="FP", load_class="low", table3_ipc=1.6,
           table3_l2_apki=4.0, mem_fraction=0.33, hot_bytes=28 * KB,
           warm_bytes=600 * KB, bulk_bytes=1 * MB, l2hot_bytes=112 * KB, l2hot_share=0.45,
           warm_share=0.2,
           bulk_share=0.25, stream_share=0.1, zipf_alpha=1.1,
           write_fraction=0.28, stream_stride=64, core_ipc=3.4,
           exposure=0.50, branch_fraction=0.10, mispredict_rate=0.03),
        _p(name="wupwise", suite="FP", load_class="low", table3_ipc=1.5,
           table3_l2_apki=5.0, mem_fraction=0.34, hot_bytes=28 * KB,
           warm_bytes=700 * KB, bulk_bytes=2 * MB, l2hot_bytes=128 * KB, l2hot_share=0.45,
           warm_share=0.18,
           bulk_share=0.27, stream_share=0.1, zipf_alpha=0.65,
           write_fraction=0.26, stream_stride=64, core_ipc=3.5,
           exposure=0.52, branch_fraction=0.08, mispredict_rate=0.02),
    ]
}


def get_benchmark(name: str) -> BenchmarkProfile:
    try:
        return SPEC2K_SUITE[name]
    except KeyError:
        known = ", ".join(sorted(SPEC2K_SUITE))
        raise ConfigurationError(f"unknown benchmark {name!r}; known: {known}") from None


def suite_names() -> List[str]:
    """All benchmark names in the paper's figure order (alphabetical)."""
    return sorted(SPEC2K_SUITE)


def high_load_names() -> List[str]:
    return [n for n in suite_names() if SPEC2K_SUITE[n].is_high_load]


def low_load_names() -> List[str]:
    return [n for n in suite_names() if not SPEC2K_SUITE[n].is_high_load]

"""Deterministic multi-core trace interleaving for shared-LLC runs.

A chip-multiprocessor scenario replays N independent per-core
reference streams against one shared L2.  Each core's stream comes
from the usual seeded generator; this module merges them into a single
stream ordered by *virtual time* (the cycle each reference would issue
at if its core ran alone at its profile IPC) and tags every record
with the issuing core.

Two properties matter downstream:

* **Determinism** — the merge is a stable sort over exact float64
  cumulative-gap arrays derived from seeded traces, so the same seeds
  always produce the same interleaving, on any worker process.
* **Address isolation** — each core's addresses are offset by
  ``core_id << CORE_ADDR_SHIFT`` so streams never alias in the shared
  cache (cores only *compete for capacity*, they do not share data).
  Core 0's addresses are untouched, which is what makes a one-core
  "CMP" trace byte-identical to the plain single-core trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.trace import Trace

#: Bit position of the per-core address-space offset.  The workload
#: generators emit byte addresses well below 2**38, and the NuRAPID
#: prewarm dummy region starts at 2**45, so 16 cores fit between the
#: two without any stream aliasing another core's (or the dummies).
CORE_ADDR_SHIFT = 38

#: Most cores one LLC can be shared by (core id must fit in address
#: bits CORE_ADDR_SHIFT .. CORE_ADDR_SHIFT+3).
MAX_CORES = 16


def core_of_address(address: int) -> int:
    """Recover the issuing core id from an offset byte address."""
    return (int(address) >> CORE_ADDR_SHIFT) & (MAX_CORES - 1)


def parse_cmp_benchmark(benchmark: str, cores: int) -> List[str]:
    """Expand a CMP benchmark spec into one app name per core.

    ``"twolf"`` runs the same app on every core (rate mode);
    ``"twolf+mcf"`` pins one named app per core and must list exactly
    ``cores`` parts.  Names are validated by the caller's
    :func:`~repro.workloads.spec2k.get_benchmark` lookups.
    """
    parts = [part.strip() for part in benchmark.split("+")]
    if any(not part for part in parts):
        raise ConfigurationError(f"empty app name in CMP spec {benchmark!r}")
    if len(parts) == 1:
        return parts * cores
    if len(parts) != cores:
        raise ConfigurationError(
            f"CMP spec {benchmark!r} names {len(parts)} apps "
            f"but the config has {cores} cores"
        )
    return parts


@dataclass(frozen=True)
class CmpTrace:
    """A merged shared-L2 reference stream with per-core provenance.

    ``trace`` holds the interleaved columns (addresses already offset
    per core); ``cores[i]`` is the core that issues record ``i``.
    """

    trace: Trace
    cores: np.ndarray
    n_cores: int
    benchmarks: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.cores) != len(self.trace):
            raise ConfigurationError(
                f"provenance column has {len(self.cores)} entries "
                f"for {len(self.trace)} records"
            )
        if not 1 <= self.n_cores <= MAX_CORES:
            raise ConfigurationError(
                f"n_cores must be in [1, {MAX_CORES}], got {self.n_cores}"
            )

    def __len__(self) -> int:
        return len(self.trace)

    def split(self, fraction: float) -> Tuple["CmpTrace", "CmpTrace"]:
        """Split into (warmup, measured) at the same cut as Trace.split."""
        warm, rest = self.trace.split(fraction)
        cut = len(warm)
        return (
            CmpTrace(warm, self.cores[:cut], self.n_cores, self.benchmarks),
            CmpTrace(rest, self.cores[cut:], self.n_cores, self.benchmarks),
        )


def interleave_traces(
    traces: Sequence[Trace],
    core_ipcs: Sequence[float],
    benchmark: str = "",
) -> CmpTrace:
    """Merge per-core traces into one shared-L2 stream.

    Each core's references are placed at their standalone virtual
    issue time ``cumsum(gaps) / core_ipc`` and the streams are merged
    by a stable sort, so equal-time references keep core order.  Gaps
    stay per-core: during replay each record advances only its own
    core by its own gap, so per-core instruction counts are exact.
    """
    if not traces:
        raise ConfigurationError("need at least one per-core trace")
    if len(traces) > MAX_CORES:
        raise ConfigurationError(
            f"at most {MAX_CORES} cores per LLC, got {len(traces)}"
        )
    if len(core_ipcs) != len(traces):
        raise ConfigurationError(
            f"{len(core_ipcs)} IPCs for {len(traces)} traces"
        )
    names = tuple(t.benchmark for t in traces)
    label = benchmark or "+".join(names)
    if len(traces) == 1:
        t = traces[0]
        merged = Trace(
            benchmark=label, gaps=t.gaps, addresses=t.addresses, writes=t.writes
        )
        return CmpTrace(merged, np.zeros(len(t), dtype=np.int16), 1, names)

    times: List[np.ndarray] = []
    owners: List[np.ndarray] = []
    offset_addrs: List[np.ndarray] = []
    for core, (trace, ipc) in enumerate(zip(traces, core_ipcs)):
        if ipc <= 0:
            raise ConfigurationError(f"core {core} IPC must be positive, got {ipc}")
        if not len(trace):
            raise ConfigurationError(f"core {core} trace is empty")
        times.append(np.cumsum(trace.gaps, dtype=np.float64) / float(ipc))
        owners.append(np.full(len(trace), core, dtype=np.int16))
        offset_addrs.append(
            trace.addresses.astype(np.int64) + (core << CORE_ADDR_SHIFT)
        )
    order = np.argsort(np.concatenate(times), kind="stable")
    merged = Trace(
        benchmark=label,
        gaps=np.concatenate([t.gaps for t in traces])[order],
        addresses=np.concatenate(offset_addrs)[order],
        writes=np.concatenate([t.writes for t in traces])[order],
    )
    return CmpTrace(merged, np.concatenate(owners)[order], len(traces), names)

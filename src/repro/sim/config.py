"""Named system configurations (Table 1 / §4).

Every simulated system shares the Table 1 front end — 8-wide core,
64 KB 2-way 32 B-block L1 i/d caches at 3 cycles with 8 MSHRs, memory
at 130 + 4/8B cycles — and differs only in what sits below the L1s:

* ``base``     — 1 MB 8-way L2 (11 cycles) over 8 MB 8-way L3 (43
  cycles), both 128 B blocks.
* ``nurapid``  — 8 MB 8-way NuRAPID with 2/4/8 d-groups and the §2.4
  policy knobs.
* ``dnuca``    — 8 MB 16-way D-NUCA, 128 banks, ss-performance or
  ss-energy.
* ``sa-nuca``  — the Figure 4 coupled-placement non-uniform cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.caches.hierarchy import CacheHierarchy, UniformLowerLevel
from repro.caches.memory import MainMemory
from repro.caches.setassoc_nonuniform import SetAssociativePlacementCache
from repro.caches.simple import SetAssociativeCache
from repro.cmp.config import CmpConfig
from repro.cmp.contention import ContendedLLC
from repro.cpu.core import CoreParams
from repro.faults.models import FaultPlan
from repro.floorplan.dgroups import build_uniform_cache_spec
from repro.nuca.cache import DNUCACache
from repro.nuca.config import DNUCAConfig, SearchPolicy
from repro.nurapid.cache import NuRAPIDCache
from repro.nurapid.config import (
    DistanceReplacementKind,
    NuRAPIDConfig,
    PromotionPolicy,
)

KB = 1024
MB = 1024 * 1024

#: Replay engines.  "legacy" is the original per-object loop kept as
#: the parity reference; "fast" the array-backed fused kernel
#: (:mod:`repro.sim.fastpath`); "vectorized" adds the numpy chunked
#: hit-run pre-pass (:mod:`repro.sim.vectorized`).  Those three are
#: bit-identical.  "approx" (:mod:`repro.sim.approx`) is the opt-in
#: analytical fast-forward tier: same result schema, tolerance-gated
#: accuracy instead of bit identity.
ENGINES = ("legacy", "fast", "vectorized", "approx")

#: Engines held to byte-identical results by the parity gate.
EXACT_ENGINES = ("legacy", "fast", "vectorized")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Pick the replay engine: explicit setting, else $REPRO_ENGINE, else vectorized."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "").strip() or "vectorized"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def _fingerprint_default(value: object) -> object:
    if isinstance(value, enum.Enum):
        return value.value
    return str(value)


def config_fingerprint(config: "SystemConfig") -> str:
    """Content hash of every field that can influence a run's results.

    The canonical JSON of the config's full dataclass tree (enums by
    value), hashed with sha256.  Two configs with equal fingerprints
    produce byte-identical :class:`~repro.sim.results.RunResult`
    payloads for the same cell parameters, which is what makes the
    fingerprint usable as a content-address component for memoized
    results (:mod:`repro.service.store`).  Note that ``engine=None``
    fingerprints as None — resolution against ``$REPRO_ENGINE`` is
    environment-dependent, so memo keys resolve the engine separately
    (:func:`repro.sim.parallel.cell_fingerprint`).
    """
    payload = dataclasses.asdict(config)
    encoded = json.dumps(payload, sort_keys=True, default=_fingerprint_default)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SystemConfig:
    """One simulated machine: the shared front end plus an L2 choice."""

    name: str
    l2_kind: str  # "base" | "nurapid" | "dnuca" | "sa-nuca" | "s-nuca"
    core: CoreParams = field(default_factory=CoreParams)
    nurapid: Optional[NuRAPIDConfig] = None
    dnuca: Optional[DNUCAConfig] = None
    seed: int = 0
    #: Optional runtime fault campaign applied to the cache under study
    #: (the first level below the L1s).  None disables all fault hooks.
    faults: Optional[FaultPlan] = None
    #: Replay engine: "legacy" | "fast" | "vectorized" | "approx" |
    #: None (= $REPRO_ENGINE, else "vectorized").  The first three are
    #: bit-identical (see repro.sim.fastpath / repro.sim.vectorized);
    #: "approx" trades bit identity for an analytical fast-forward
    #: with tolerance-gated accuracy (see repro.sim.approx).
    engine: Optional[str] = None
    #: Optional CMP scenario axis (cores sharing this LLC, bank
    #: contention, compressed NuRAPID).  None — and, by contract,
    #: ``CmpConfig(cores=1)`` without contention/compression — keeps
    #: runs bit-identical to the single-core model.
    cmp: Optional[CmpConfig] = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINES)}"
            )
        if self.l2_kind not in {"base", "nurapid", "dnuca", "sa-nuca", "s-nuca"}:
            raise ConfigurationError(f"unknown l2_kind {self.l2_kind!r}")
        if self.l2_kind == "nurapid" and self.nurapid is None:
            raise ConfigurationError("nurapid kind requires a NuRAPIDConfig")
        if self.l2_kind == "dnuca" and self.dnuca is None:
            raise ConfigurationError("dnuca kind requires a DNUCAConfig")
        if self.faults is not None and self.l2_kind not in {"base", "nurapid"}:
            raise ConfigurationError(
                f"fault injection is not modeled for l2_kind {self.l2_kind!r}"
            )
        if self.faults is not None and self.l2_kind == "base" and self.faults.hard_faults:
            raise ConfigurationError(
                "hard subarray faults are only modeled for NuRAPID d-groups"
            )
        if self.cmp is not None:
            if self.cmp.compression is not None and self.l2_kind != "nurapid":
                raise ConfigurationError(
                    "compressed lines are only modeled for NuRAPID "
                    f"(l2_kind {self.l2_kind!r})"
                )
            if self.cmp.contention is not None and self.l2_kind == "base":
                raise ConfigurationError(
                    "bank contention is modeled for the non-uniform caches; "
                    "the base hierarchy keeps its fixed L2/L3 latencies"
                )
            if self.cmp.compression is not None and self.faults is not None:
                raise ConfigurationError(
                    "fault injection is not modeled for compressed NuRAPID"
                )
            if self.cmp.cores > 1:
                if self.faults is not None:
                    raise ConfigurationError(
                        "fault injection is single-core only; drop faults or cores"
                    )
                if self.engine == "approx":
                    raise ConfigurationError(
                        "the approx engine has no multi-core model; "
                        "pick an exact engine for cores > 1"
                    )


# --- factory helpers for the paper's configurations ---


def base_config(faults: Optional[FaultPlan] = None) -> SystemConfig:
    """The conventional L2/L3 hierarchy the paper normalizes against.

    ``faults`` (transient-only) arms the L2 with a fault campaign; the
    plan's label lands in the config name so cached results never mix
    fault settings.
    """
    label = "base" if faults is None else f"base-{faults.label()}"
    return SystemConfig(name=label, l2_kind="base", faults=faults)


def nurapid_config(
    n_dgroups: int = 4,
    promotion: PromotionPolicy = PromotionPolicy.NEXT_FASTEST,
    distance_replacement: DistanceReplacementKind = DistanceReplacementKind.RANDOM,
    restricted_frames: Optional[int] = None,
    ideal_uniform: bool = False,
    promotion_hysteresis: int = 1,
    seed: int = 0,
    name: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
) -> SystemConfig:
    """An 8 MB 8-way NuRAPID system."""
    label = name or (
        f"nurapid-{n_dgroups}dg-{promotion.value}-{distance_replacement.value}"
        + ("-ideal" if ideal_uniform else "")
        + (f"-hyst{promotion_hysteresis}" if promotion_hysteresis != 1 else "")
    )
    if faults is not None:
        label = f"{label}-{faults.label()}"
    cache = NuRAPIDConfig(
        n_dgroups=n_dgroups,
        promotion=promotion,
        distance_replacement=distance_replacement,
        restricted_frames=restricted_frames,
        ideal_uniform=ideal_uniform,
        promotion_hysteresis=promotion_hysteresis,
        seed=seed,
    )
    return SystemConfig(
        name=label, l2_kind="nurapid", nurapid=cache, seed=seed, faults=faults
    )


def dnuca_config(
    policy: SearchPolicy = SearchPolicy.SS_PERFORMANCE,
    tail_insertion: bool = True,
    seed: int = 0,
    name: Optional[str] = None,
) -> SystemConfig:
    """The paper's 8 MB 16-way 128-bank D-NUCA system."""
    label = name or f"dnuca-{policy.value}"
    cache = DNUCAConfig(policy=policy, tail_insertion=tail_insertion, seed=seed)
    return SystemConfig(name=label, l2_kind="dnuca", dnuca=cache, seed=seed)


def sa_nuca_config(seed: int = 0) -> SystemConfig:
    """The Figure 4 set-associative-placement non-uniform cache."""
    return SystemConfig(name="sa-nuca", l2_kind="sa-nuca", seed=seed)


def snuca_config(seed: int = 0) -> SystemConfig:
    """The static NUCA baseline (Kim et al.'s S-NUCA-2 lineage)."""
    return SystemConfig(name="s-nuca", l2_kind="s-nuca", seed=seed)


# --- construction ---


def _l1_spec(name: str):
    return build_uniform_cache_spec(
        name=name,
        capacity_bytes=64 * KB,
        block_bytes=32,
        associativity=2,
        latency_cycles=3,
        sequential_tag_data=False,
        energy_factor=6.4,
    )


def build_lower_level(config: SystemConfig):
    """Build the level(s) below the L1s for a config.

    When ``config.faults`` is set, the cache under study (L2) is armed
    with a :class:`~repro.faults.injector.FaultInjector` before any
    traffic; other levels run fault-free.

    ``config.cmp`` swaps in the compressed NuRAPID variant and/or
    wraps the cache under study with per-bank contention queues —
    build-time concerns, applied whether the run is single- or
    multi-core.
    """
    lower = _build_cache_under_study(config)
    cmp = config.cmp
    if cmp is not None and cmp.contention is not None:
        lower[0] = ContendedLLC(lower[0], cmp.contention)
    return lower


def _build_cache_under_study(config: SystemConfig):
    if config.l2_kind == "base":
        l2 = SetAssociativeCache(
            build_uniform_cache_spec(
                name="L2",
                capacity_bytes=1 * MB,
                block_bytes=128,
                associativity=8,
                latency_cycles=11,
            )
        )
        l3 = SetAssociativeCache(
            build_uniform_cache_spec(
                name="L3",
                capacity_bytes=8 * MB,
                block_bytes=128,
                associativity=8,
                latency_cycles=43,
            )
        )
        if config.faults is not None:
            l2.attach_faults(config.faults)
        return [UniformLowerLevel(l2), UniformLowerLevel(l3)]
    if config.l2_kind == "nurapid":
        assert config.nurapid is not None
        if config.cmp is not None and config.cmp.compression is not None:
            from repro.nurapid.compression import CompressedNuRAPIDCache

            cache = CompressedNuRAPIDCache(config.nurapid, config.cmp.compression)
        else:
            cache = NuRAPIDCache(config.nurapid)
        if config.faults is not None:
            cache.attach_faults(config.faults)
        return [cache]
    if config.l2_kind == "dnuca":
        assert config.dnuca is not None
        return [DNUCACache(config.dnuca)]
    if config.l2_kind == "sa-nuca":
        return [SetAssociativePlacementCache()]
    if config.l2_kind == "s-nuca":
        from repro.nuca.snuca import SNUCACache

        return [SNUCACache()]
    raise ConfigurationError(f"unknown l2_kind {config.l2_kind!r}")


def build_system(config: SystemConfig):
    """Assemble L1s + lower levels + memory into a hierarchy.

    Returns ``(hierarchy, l1d, lower_levels, memory)``; the driver's
    :class:`~repro.sim.driver.System` wraps these with a core model.
    """
    l1d = SetAssociativeCache(_l1_spec("L1d"))
    l1i = SetAssociativeCache(_l1_spec("L1i"))
    lower = build_lower_level(config)
    memory = MainMemory()
    hierarchy = CacheHierarchy(l1d=l1d, lower=lower, memory=memory, l1i=l1i)
    return hierarchy, l1d, lower, memory

"""Vectorized chunked replay kernel (``engine="vectorized"``).

Builds on the fused scalar kernel (:mod:`repro.sim.fastpath`) with a
numpy pre-pass over the columnar trace (:meth:`Trace.decoded_batch`):

1. The trace is swept in windows of :data:`WINDOW` references.  For
   each window the 2-way L1 probe is evaluated wholesale against a
   numpy mirror of the flat tag array (two gathers + two compares),
   yielding a predicted hit mask.
2. Runs of at least :data:`MIN_RUN` consecutive predicted hits are
   re-verified against the *current* tags (fills since the window
   prediction may have evicted a predicted frame) and, when still
   valid, resolved in one numpy pass: the cycle and branch-penalty
   accumulations are strict left folds (``np.add.accumulate``), which
   replay the exact float-op sequence of the scalar loop; instruction
   and read/write counts come from precomputed prefix sums (integer,
   exact); dirty bits are set by one fancy assignment into a writable
   view of the L1's dirty bytearray; LRU stamps are committed in
   reference order so recency is untouched.
3. **L2 tier** — when the level under the L1 is a NuRAPID cache with
   no fault injector or telemetry attached, the same window pre-pass
   probes the residual predicted-L1-miss references against NuRAPID's
   packed int tag state (one gather over the per-set tag dicts, then a
   numpy decode of the resident/d-group bits), flagging references
   that are *provable fastest-d-group read hits*.  Flagged references
   re-verify against the live tags in the scalar loop (fills,
   promotions, and writebacks inside the window can move the block)
   and, when still a d-group-0 hit, resolve through an inlined copy of
   the dg0 read-hit path — exact per-reference stat/recency updates,
   the same inline port arithmetic, energy charges batched (exact: the
   energy book pre-registers its keys, so order is fixed) — without
   the method call, ``AccessResult`` boxing, or dead fault/telemetry
   branches.  Promotion candidates (hits outside d-group 0), misses,
   demotion chains, faults, contention wrappers, and incompressible
   placement all stay on the generic ``access``/``fill`` walk.
4. Everything else — short runs, predicted misses, invalidated runs —
   drops into a scalar loop with fastpath semantics, further leaned
   down by per-reference ``gap/ipc`` and branch-penalty terms
   precomputed vectorized (elementwise float64 ops are bit-identical
   to the scalar expressions) and by inlining the 2-way L1 fill
   (inside this kernel a missed block can never already be resident
   when it fills, so the duplicate-present probe is skipped).

Bit-identity contract
---------------------

Identical to :mod:`repro.sim.fastpath`: the same float-op sequence,
the same lower-level ``access``/``fill`` calls at the same ``now``
values, integer counters batched and flushed in ``finally`` so a
mid-replay :class:`~repro.faults.models.UncorrectableDataError`
leaves legacy-identical state.  ``python -m repro.bench
--engine-parity`` holds every exact engine to byte-identical summaries
and telemetry reports.

When the kernel cannot take the system (L1 fault injector, non-2-way
L1, mismatched core constants) it defers to :func:`fastpath.replay`,
which applies its own fallback chain; per-reference observation
(``collect``) and an attached L1 telemetry client also defer, since
both demand a Python-level callback per reference.  Results are
bit-identical either way.

Kernel statistics (windows swept, refs resolved per tier, scalar
refs, invalidated runs, stale L2 flags, wall-clock per stage) land in
the process-global runtime registry (:mod:`repro.telemetry.runtime`)
under ``vectorized.*`` — they describe execution strategy, not the
simulated machine, so they stay out of run payloads.
"""

from __future__ import annotations

from itertools import islice
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from repro.caches.mshr import MSHREntry
from repro.common.types import AccessResult
from repro.nurapid.cache import (
    NuRAPIDCache,
    _PACK_DGROUP_MASK,
    _PACK_DGROUP_SHIFT,
    _PACK_FRAME_MASK,
)
from repro.nurapid.compression import CompressedNuRAPIDCache
from repro.sim import fastpath
from repro.telemetry.runtime import runtime_registry

#: Prediction window: references per numpy probe pre-pass.
WINDOW = 4096
#: Minimum predicted-hit run length worth a vector application; below
#: this the per-run numpy call overhead exceeds the scalar loop cost.
MIN_RUN = 48


def replay(system, core, trace, collect: Optional[List[AccessResult]] = None) -> None:
    """Replay ``trace``, resolving long L1-hit runs in numpy passes."""
    l1 = system.l1d
    params = core.params
    if (
        collect is not None
        or l1.telemetry is not None
        or l1.fault_injector is not None
        or getattr(l1, "_assoc", None) != 2
        or l1.spec.latency_cycles != params.l1_hit_cycles
        or l1.spec.block_bytes != params.l1_block_bytes
        or core.mshrs.occupancy_hist is not None
        or core.exposure > 1.0
    ):
        runtime_registry().add("vectorized.fallbacks")
        fastpath.replay(system, core, trace, collect=collect)
        return

    hierarchy = system.hierarchy
    memory = system.memory
    lower = hierarchy.lower
    decoded = trace.decoded_batch(l1.spec.block_bytes, l1.n_sets)
    n_total = len(decoded)

    # L1 state.  The lists/bytearray are shared in place; tags_np is a
    # kernel-local mirror used only for hit prediction, updated on
    # every fill.  dirty_view shares the bytearray's memory, so fancy
    # assignments land directly in the cache's state.
    tags = l1._tags
    dirty = l1._dirty
    stamps = l1._stamps
    clock = l1._clock
    tags_np = np.array(tags, dtype=np.int64)
    dirty_view = np.frombuffer(dirty, dtype=np.uint8)
    l1_lat = l1.spec.latency_cycles
    l1_name = l1.name
    l1_energy = l1.energy

    # Core scalars, accumulated locally exactly as fastpath does.
    ipc = core.core_ipc
    bf = core.branch_fraction
    mr = core.mispredict_rate
    mp = params.mispredict_penalty
    exposure = core.exposure
    mlp_discount = params.memory_mlp_discount
    # MSHR state, fully inlined: the entries dict is shared in place;
    # min_fill and the three counters are kernel-local and flushed in
    # finally.  allocate's precondition checks (not full, no duplicate,
    # fill_at >= now) are guaranteed by the kernel's own control flow
    # and the exposure <= 1 fallback guard above.
    mshr = core.mshrs
    mshr_entries = mshr._entries
    mshr_cap = mshr.capacity
    min_fill = mshr._min_fill
    INF = float("inf")
    n_primary = n_merged = n_full = 0
    cycle = core.cycle
    instructions = core.instructions
    memory_accesses = core.memory_accesses
    bp = core.branch_penalty_cycles
    stall = core.stall_cycles
    mshr_stall = core.mshr_stall_cycles

    # Per-reference float terms, precomputed vectorized.  Elementwise
    # float64 ops equal the scalar expressions bit for bit (gaps are
    # small ints, exactly representable): t = gap/ipc and
    # p = ((gap*bf)*mr)*mp in the same association order.
    g_np = decoded.np_gaps
    t_np = g_np / ipc
    p_np = ((g_np * bf) * mr) * mp
    t_list = t_np.tolist()
    p_list = p_np.tolist()
    # Interleaved [t0, p0, t1, p1, ...] for the cycle fold, and prefix
    # sums for O(1) per-run instruction/write counts (int64, exact).
    z_np = np.empty(2 * n_total, dtype=np.float64)
    z_np[0::2] = t_np
    z_np[1::2] = p_np
    cum_gaps = np.cumsum(g_np)
    cum_writes = np.cumsum(decoded.np_writes.astype(np.int64))
    scratch = np.empty(2 * WINDOW + 1, dtype=np.float64)

    frames_np = decoded.np_frames
    baddrs_np = decoded.np_block_addrs
    writes_np = decoded.np_writes

    # Miss-path plumbing (same as fastpath).
    stats = hierarchy.stats
    hist = hierarchy.miss_latency_hist
    first = lower[0]
    mem_lat = memory.transfer_cycles(lower[-1].block_bytes)
    lvl_names = [level.name for level in lower]
    n_lower = len(lower)

    # L2 tier eligibility: a bare (or compressed) NuRAPID directly
    # under the L1, with every per-access hook dead.  The compressed
    # variant inherits ``access`` unchanged — compressibility only
    # steers placement and promotion, never a d-group-0 read hit — so
    # its dg0 constants (decompression-padded latency) flow through
    # the same instance fields.  Contention wrappers, fault injectors,
    # and telemetry clients put per-access logic back on the hit path
    # and disqualify the tier; those runs use the generic walk.
    l2fast = (
        n_lower == 1
        and type(first) in (NuRAPIDCache, CompressedNuRAPIDCache)
        and first.fault_injector is None
        and first.telemetry is None
    )
    if l2fast:
        l2_tags = first._tags
        l2_lru = first._data_lru
        l2_rt = first._rtouch[0]
        l2_nr = first._n_regions
        l2_sc = first._scounts
        l2_ec = first._ecounts
        l2_dh = first.dgroup_hits.counts
        l2_port = first.port
        l2_tagc = first._tag_cycles
        l2_occ = first._data_occ[0]
        l2_dc = first._data_cycles[0]
        l2_ideal = first._ideal_uniform
        l2_ideal_lat = first._ideal_lat
        l2_bmask = first._block_mask
        l2_shift = first._set_shift
        l2_smask = first._set_mask
        l2_name = first.name
        l2_k_tag = first._k_tag
        l2_k_read = first._k_dg_read[0]

    # Batched integer counters (exact; flushed in finally).  gi is the
    # count of processed references; refs, instructions, reads/writes
    # and hits all derive from it at flush time via the prefix sums
    # (fastpath increments each of those before the lower-level access
    # that can raise, so the interrupted-ref accounting matches).
    gi = 0
    n_misses = 0
    n_fills = 0
    n_l1_wb = n_l1_wb_mem = 0
    n_mem_reads = n_mem_writes = 0
    lvl_acc = [0] * n_lower
    lvl_hits = [0] * n_lower
    lvl_wb = [0] * n_lower

    # Kernel strategy stats (runtime registry, not run payloads).
    n_vector = 0
    n_runs = 0
    n_runs_invalid = 0
    n_windows = 0
    n_l2_fast = 0
    n_l2_runs = 0
    n_l2_stale = 0
    l2_prev = -2  # global index of the last L2-fast ref (run detection)
    probe_wall = 0.0
    apply_wall = 0.0
    wall_start = perf_counter()

    master = zip(
        decoded.addresses,
        decoded.block_addrs,
        decoded.frames,
        decoded.writes,
        t_list,
        p_list,
    )

    try:
        pos = 0
        while pos < n_total:
            wend = min(pos + WINDOW, n_total)
            n_windows += 1

            # Window prediction: which refs would hit against the tags
            # as they stand now.  Fills inside the window go stale,
            # which is why runs re-verify at apply time.
            t_probe = perf_counter()
            fr_w = frames_np[pos:wend]
            ba_w = baddrs_np[pos:wend]
            pred = tags_np[fr_w] == ba_w
            np.logical_or(pred, tags_np[fr_w + 1] == ba_w, out=pred)

            # L2 pre-pass: probe the predicted L1 misses against the
            # packed NuRAPID tag ints and flag provable d-group-0 hits
            # (resident with dgroup bits clear).  Flags are advisory —
            # the scalar loop re-verifies against the live tags — so
            # staleness from in-window L2 mutation is safe.
            l2f: tuple = ()
            if l2fast:
                miss_i = np.flatnonzero(~pred)
                if miss_i.size:
                    ba_m = ba_w[miss_i] & l2_bmask
                    si_m = (ba_m >> l2_shift) & l2_smask
                    pk = np.fromiter(
                        (
                            t.get(b, -1)
                            for t, b in zip(
                                map(l2_tags.__getitem__, si_m.tolist()),
                                ba_m.tolist(),
                            )
                        ),
                        dtype=np.int64,
                        count=int(miss_i.size),
                    )
                    good = miss_i[
                        (
                            (pk >= 0)
                            & ((pk >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK == 0)
                        ).nonzero()[0]
                    ]
                    if good.size:
                        flags = np.zeros(wend - pos, dtype=bool)
                        flags[good] = True
                        l2f = flags.tolist()
            probe_wall += perf_counter() - t_probe

            runs: List[Tuple[int, int]] = []
            if bool(pred.any()):
                changes = np.flatnonzero(pred[1:] != pred[:-1])
                bounds = [0, *(changes + 1).tolist(), wend - pos]
                val = bool(pred[0])
                for m in range(len(bounds) - 1):
                    if val and bounds[m + 1] - bounds[m] >= MIN_RUN:
                        runs.append((pos + bounds[m], pos + bounds[m + 1]))
                    val = not val
            runs.append((wend, wend))  # sentinel: flush the scalar tail

            cursor = pos
            for rs, re in runs:
                # --- scalar span [cursor, rs) -----------------------
                # Body kept textually in sync with the invalidated-run
                # copy below (grep: SCALAR-BODY).
                for address, baddr, fr, is_write, t, p in islice(
                    master, rs - cursor
                ):
                    # SCALAR-BODY (copy 1)
                    gi += 1
                    cycle += t
                    bp += p
                    cycle += p
                    if tags[fr] == baddr:
                        stamps[fr] = clock
                        clock += 1
                        if is_write:
                            dirty[fr] = 1
                        continue
                    f1 = fr + 1
                    if tags[f1] == baddr:
                        stamps[f1] = clock
                        clock += 1
                        if is_write:
                            dirty[f1] = 1
                        continue

                    # L1 miss: hierarchy walk, inlined as in fastpath.
                    n_misses += 1
                    total_latency = l1_lat
                    level_name = "memory"
                    missed: Optional[List[int]] = None
                    supplied = False
                    if l2f and l2f[gi - 1 - pos]:
                        # Window-flagged provable dg0 hit: re-verify
                        # against the live packed tags (in-window fills
                        # and promotions can move the block), then run
                        # NuRAPID's dg0 read-hit path inlined — same
                        # stat insertion order, recency touches, and
                        # port float-op sequence; the tag-probe and
                        # dg0-read energy charges are batched in the
                        # finally block (the energy book pre-registers
                        # its keys, so batching is order-exact).
                        baddr2 = baddr & l2_bmask
                        idx2 = (baddr2 >> l2_shift) & l2_smask
                        packed2 = l2_tags[idx2].get(baddr2, -1)
                        if packed2 >= 0 and not (
                            (packed2 >> _PACK_DGROUP_SHIFT) & _PACK_DGROUP_MASK
                        ):
                            n_l2_fast += 1
                            if gi - 2 != l2_prev:
                                n_l2_runs += 1
                            l2_prev = gi - 1
                            l2_sc["accesses"] = l2_sc.get("accesses", 0) + 1
                            l2_sc["hits"] = l2_sc.get("hits", 0) + 1
                            l2_dh[0] = l2_dh.get(0, 0) + 1
                            l2_sc["dgroup_accesses"] = (
                                l2_sc.get("dgroup_accesses", 0) + 1
                            )
                            l2_lru[idx2].touch(baddr2)
                            l2_rt[idx2 % l2_nr](packed2 & _PACK_FRAME_MASK)
                            if l2_ideal:
                                lat2 = l2_ideal_lat
                            else:
                                now2 = cycle + total_latency
                                t0 = now2 + l2_tagc
                                bu = l2_port.busy_until
                                start = t0 if t0 >= bu else bu
                                l2_port.busy_until = start + l2_occ
                                l2_port.total_busy += l2_occ
                                l2_port.total_wait += start - t0
                                l2_port.grants += 1
                                lat2 = (start - now2) + l2_dc
                            total_latency += lat2
                            lvl_acc[0] += 1
                            lvl_hits[0] += 1
                            level_name = l2_name
                            supplied = True
                        else:
                            n_l2_stale += 1
                    if not supplied:
                        i = 0
                        for level in lower:
                            r = level.access(
                                address, is_write=False, now=cycle + total_latency
                            )
                            total_latency += r.latency
                            lvl_acc[i] += 1
                            if r.hit:
                                level_name = r.level or lvl_names[i]
                                lvl_hits[i] += 1
                                supplied = True
                                break
                            if missed is None:
                                missed = [i]
                            else:
                                missed.append(i)
                            i += 1
                        if not supplied:
                            n_mem_reads += 1
                            total_latency += mem_lat

                    fill_time = cycle + total_latency
                    if missed is not None:
                        for j in reversed(missed):
                            dirty_out = lower[j].fill(
                                address, now=fill_time, dirty=False
                            )
                            if dirty_out:
                                n_mem_writes += dirty_out
                                lvl_wb[j] += dirty_out

                    # Inline 2-way L1 fill (the probe above just
                    # missed and nothing since touched the L1, so the
                    # block cannot already be resident).  Same victim
                    # choice as SetAssociativeCache.fill: first free
                    # way, else the strictly-smallest stamp with the
                    # first way winning ties.
                    n_fills += 1
                    vaddr = -1
                    vdirty = 0
                    if tags[fr] < 0:
                        free = fr
                    elif tags[f1] < 0:
                        free = f1
                    else:
                        free = f1 if stamps[f1] < stamps[fr] else fr
                        vaddr = tags[free]
                        vdirty = dirty[free]
                    tags[free] = baddr
                    tags_np[free] = baddr
                    dirty[free] = 1 if is_write else 0
                    stamps[free] = clock
                    clock += 1
                    if vdirty:
                        # _writeback_from_l1, inlined.
                        n_l1_wb += 1
                        rw = first.access(vaddr, is_write=True, now=fill_time)
                        lvl_acc[0] += 1
                        if rw.hit:
                            lvl_hits[0] += 1
                        else:
                            n_mem_writes += 1
                            n_l1_wb_mem += 1
                    if hist is not None:
                        hist.record(total_latency)

                    # note_memory_result, inlined (same float-op order).
                    beyond_l1 = total_latency - l1_lat
                    if beyond_l1 <= 0:
                        continue
                    if mshr_entries:
                        if cycle >= min_fill:
                            for a in [
                                a
                                for a, e in mshr_entries.items()
                                if e.fill_at <= cycle
                            ]:
                                del mshr_entries[a]
                            min_fill = INF
                            for e in mshr_entries.values():
                                if e.fill_at < min_fill:
                                    min_fill = e.fill_at
                        if len(mshr_entries) >= mshr_cap:
                            mshr_stall += min_fill - cycle
                            cycle = min_fill
                            for a in [
                                a
                                for a, e in mshr_entries.items()
                                if e.fill_at <= cycle
                            ]:
                                del mshr_entries[a]
                            min_fill = INF
                            for e in mshr_entries.values():
                                if e.fill_at < min_fill:
                                    min_fill = e.fill_at
                            n_full += 1
                    exp = exposure
                    if level_name == "memory":
                        exp *= mlp_discount
                    exposed = beyond_l1 * exp
                    stall += exposed
                    cycle += exposed
                    fill_at = cycle + beyond_l1 * (1.0 - exposure)
                    if baddr in mshr_entries:
                        mshr_entries[baddr].merged += 1
                        n_merged += 1
                    else:
                        mshr_entries[baddr] = MSHREntry(baddr, cycle, fill_at)
                        if fill_at < min_fill:
                            min_fill = fill_at
                        n_primary += 1
                    # end SCALAR-BODY (copy 1)
                cursor = rs
                if re == rs:
                    continue

                # --- candidate run [rs, re): verify, then apply -----
                run_n = re - rs
                fr_r = frames_np[rs:re]
                ba_r = baddrs_np[rs:re]
                hit0 = tags_np[fr_r] == ba_r
                ok = hit0 | (tags_np[fr_r + 1] == ba_r)
                if not bool(ok.all()):
                    # A fill since prediction evicted a predicted
                    # frame; replay the run through the scalar loop.
                    n_runs_invalid += 1
                    for address, baddr, fr, is_write, t, p in islice(
                        master, run_n
                    ):
                        # SCALAR-BODY (copy 2 — keep in sync)
                        gi += 1
                        cycle += t
                        bp += p
                        cycle += p
                        if tags[fr] == baddr:
                            stamps[fr] = clock
                            clock += 1
                            if is_write:
                                dirty[fr] = 1
                            continue
                        f1 = fr + 1
                        if tags[f1] == baddr:
                            stamps[f1] = clock
                            clock += 1
                            if is_write:
                                dirty[f1] = 1
                            continue

                        n_misses += 1
                        total_latency = l1_lat
                        level_name = "memory"
                        missed = None
                        supplied = False
                        if l2f and l2f[gi - 1 - pos]:
                            baddr2 = baddr & l2_bmask
                            idx2 = (baddr2 >> l2_shift) & l2_smask
                            packed2 = l2_tags[idx2].get(baddr2, -1)
                            if packed2 >= 0 and not (
                                (packed2 >> _PACK_DGROUP_SHIFT)
                                & _PACK_DGROUP_MASK
                            ):
                                n_l2_fast += 1
                                if gi - 2 != l2_prev:
                                    n_l2_runs += 1
                                l2_prev = gi - 1
                                l2_sc["accesses"] = l2_sc.get("accesses", 0) + 1
                                l2_sc["hits"] = l2_sc.get("hits", 0) + 1
                                l2_dh[0] = l2_dh.get(0, 0) + 1
                                l2_sc["dgroup_accesses"] = (
                                    l2_sc.get("dgroup_accesses", 0) + 1
                                )
                                l2_lru[idx2].touch(baddr2)
                                l2_rt[idx2 % l2_nr](packed2 & _PACK_FRAME_MASK)
                                if l2_ideal:
                                    lat2 = l2_ideal_lat
                                else:
                                    now2 = cycle + total_latency
                                    t0 = now2 + l2_tagc
                                    bu = l2_port.busy_until
                                    start = t0 if t0 >= bu else bu
                                    l2_port.busy_until = start + l2_occ
                                    l2_port.total_busy += l2_occ
                                    l2_port.total_wait += start - t0
                                    l2_port.grants += 1
                                    lat2 = (start - now2) + l2_dc
                                total_latency += lat2
                                lvl_acc[0] += 1
                                lvl_hits[0] += 1
                                level_name = l2_name
                                supplied = True
                            else:
                                n_l2_stale += 1
                        if not supplied:
                            i = 0
                            for level in lower:
                                r = level.access(
                                    address,
                                    is_write=False,
                                    now=cycle + total_latency,
                                )
                                total_latency += r.latency
                                lvl_acc[i] += 1
                                if r.hit:
                                    level_name = r.level or lvl_names[i]
                                    lvl_hits[i] += 1
                                    supplied = True
                                    break
                                if missed is None:
                                    missed = [i]
                                else:
                                    missed.append(i)
                                i += 1
                            if not supplied:
                                n_mem_reads += 1
                                total_latency += mem_lat

                        fill_time = cycle + total_latency
                        if missed is not None:
                            for j in reversed(missed):
                                dirty_out = lower[j].fill(
                                    address, now=fill_time, dirty=False
                                )
                                if dirty_out:
                                    n_mem_writes += dirty_out
                                    lvl_wb[j] += dirty_out

                        n_fills += 1
                        vaddr = -1
                        vdirty = 0
                        if tags[fr] < 0:
                            free = fr
                        elif tags[f1] < 0:
                            free = f1
                        else:
                            free = f1 if stamps[f1] < stamps[fr] else fr
                            vaddr = tags[free]
                            vdirty = dirty[free]
                        tags[free] = baddr
                        tags_np[free] = baddr
                        dirty[free] = 1 if is_write else 0
                        stamps[free] = clock
                        clock += 1
                        if vdirty:
                            n_l1_wb += 1
                            rw = first.access(vaddr, is_write=True, now=fill_time)
                            lvl_acc[0] += 1
                            if rw.hit:
                                lvl_hits[0] += 1
                            else:
                                n_mem_writes += 1
                                n_l1_wb_mem += 1
                        if hist is not None:
                            hist.record(total_latency)

                        beyond_l1 = total_latency - l1_lat
                        if beyond_l1 <= 0:
                            continue
                        if mshr_entries:
                            if cycle >= min_fill:
                                for a in [
                                    a
                                    for a, e in mshr_entries.items()
                                    if e.fill_at <= cycle
                                ]:
                                    del mshr_entries[a]
                                min_fill = INF
                                for e in mshr_entries.values():
                                    if e.fill_at < min_fill:
                                        min_fill = e.fill_at
                            if len(mshr_entries) >= mshr_cap:
                                mshr_stall += min_fill - cycle
                                cycle = min_fill
                                for a in [
                                    a
                                    for a, e in mshr_entries.items()
                                    if e.fill_at <= cycle
                                ]:
                                    del mshr_entries[a]
                                min_fill = INF
                                for e in mshr_entries.values():
                                    if e.fill_at < min_fill:
                                        min_fill = e.fill_at
                                n_full += 1
                        exp = exposure
                        if level_name == "memory":
                            exp *= mlp_discount
                        exposed = beyond_l1 * exp
                        stall += exposed
                        cycle += exposed
                        fill_at = cycle + beyond_l1 * (1.0 - exposure)
                        if baddr in mshr_entries:
                            mshr_entries[baddr].merged += 1
                            n_merged += 1
                        else:
                            mshr_entries[baddr] = MSHREntry(baddr, cycle, fill_at)
                            if fill_at < min_fill:
                                min_fill = fill_at
                            n_primary += 1
                        # end SCALAR-BODY (copy 2)
                    cursor = re
                    continue

                # Verified: every reference in the run hits, and hits
                # do not change tags, so the whole run resolves in one
                # vector application.
                t_apply = perf_counter()
                n_runs += 1
                n_vector += run_n
                gi += run_n
                # Strict left folds: identical float-op sequence to
                # cycle += t; bp += p; cycle += p per reference.
                m2 = 2 * run_n
                scratch[0] = cycle
                scratch[1 : m2 + 1] = z_np[2 * rs : 2 * re]
                np.add.accumulate(scratch[: m2 + 1], out=scratch[: m2 + 1])
                cycle = float(scratch[m2])
                scratch[0] = bp
                scratch[1 : run_n + 1] = p_np[rs:re]
                np.add.accumulate(scratch[: run_n + 1], out=scratch[: run_n + 1])
                bp = float(scratch[run_n])
                # Matched frames; dirty bits land via the shared view.
                mf = np.where(hit0, fr_r, fr_r + 1)
                w_r = writes_np[rs:re]
                if bool(w_r.any()):
                    dirty_view[mf[w_r]] = 1
                # LRU stamps in reference order (later refs win).
                for c, f in enumerate(mf.tolist(), clock):
                    stamps[f] = c
                clock += run_n
                # Consume the run's references from the scalar stream.
                next(islice(master, run_n, run_n), None)
                apply_wall += perf_counter() - t_apply
                cursor = re
            pos = wend
    finally:
        # Commit batched state.  Runs on an UncorrectableDataError
        # from a lower level too, leaving legacy-identical counters.
        n_refs = gi
        if gi:
            instructions += int(cum_gaps[gi - 1])
            n_writes = int(cum_writes[gi - 1])
        else:
            n_writes = 0
        n_reads = gi - n_writes
        n_hits = gi - n_misses
        l1._clock = clock
        l1.hits += n_hits
        l1.misses += n_misses
        l1.writebacks += n_l1_wb
        if n_reads:
            l1_energy.charge(f"{l1_name}.read", n_reads)
        if n_writes or n_fills:
            l1_energy.charge(f"{l1_name}.write", n_writes + n_fills)
        core.commit_batch(
            cycle=cycle,
            instructions=instructions,
            memory_accesses=memory_accesses + n_refs,
            branch_penalty_cycles=bp,
            stall_cycles=stall,
            mshr_stall_cycles=mshr_stall,
        )
        if n_refs:
            stats.add("l1_accesses", n_refs)
        if n_hits:
            stats.add("l1_hits", n_hits)
        for i in range(n_lower):
            if lvl_acc[i]:
                stats.add(lvl_names[i] + "_accesses", lvl_acc[i])
            if lvl_hits[i]:
                stats.add(lvl_names[i] + "_hits", lvl_hits[i])
            if lvl_wb[i]:
                stats.add(lvl_names[i] + "_writebacks", lvl_wb[i])
        if n_l1_wb:
            stats.add("l1_writebacks", n_l1_wb)
        if n_l1_wb_mem:
            stats.add("l1_writebacks_to_memory", n_l1_wb_mem)
        if n_mem_reads:
            stats.add("memory_reads", n_mem_reads)
        memory.reads += n_mem_reads
        memory.writes += n_mem_writes
        mshr._min_fill = min_fill
        mshr.primary_misses += n_primary
        mshr.merged_misses += n_merged
        mshr.full_stalls += n_full
        # Batched L2 energy for the inlined dg0 hits: one tag probe and
        # one dg0 read per fast hit.  Exact — integer adds into keys
        # the energy book created at registration time.
        if n_l2_fast:
            l2_ec[l2_k_tag] += n_l2_fast
            l2_ec[l2_k_read] += n_l2_fast
        reg = runtime_registry()
        reg.add("vectorized.windows", n_windows)
        reg.add("vectorized.refs", n_refs)
        reg.add("vectorized.refs_vector", n_vector)
        reg.add("vectorized.refs_scalar", n_refs - n_vector - n_l2_fast)
        reg.add("vectorized.runs_applied", n_runs)
        if n_runs_invalid:
            reg.add("vectorized.runs_invalidated", n_runs_invalid)
        reg.add("vectorized.l2_refs_vector", n_l2_fast)
        reg.add("vectorized.l2_runs_applied", n_l2_runs)
        if n_l2_stale:
            reg.add("vectorized.l2_flags_stale", n_l2_stale)
        reg.add("vectorized.wall_s", perf_counter() - wall_start)
        reg.add("vectorized.probe_wall_s", probe_wall)
        reg.add("vectorized.l1_apply_wall_s", apply_wall)

"""The trace-driven run loop.

One run: build the system, generate (or receive) the benchmark's
trace, replay a warmup portion to populate the caches, reset all
statistics, then replay the measured portion through the core timing
model.  The default of 600k references with 25% warmup keeps a full
suite sweep to minutes in pure Python while leaving ~100k+ measured L2
accesses for the high-load applications; experiments scale
``n_references`` for quick modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ConfigurationError
from repro.cpu.core import CoreModel
from repro.cpu.wattch import ProcessorEnergyModel
from repro.sim import fastpath, vectorized
from repro.sim.config import SystemConfig, build_system, resolve_engine
from repro.sim.results import RunResult, SuiteResult
from repro.telemetry import (
    LATENCY_BOUNDS,
    NullProfiler,
    Telemetry,
    TelemetryConfig,
    occupancy_bounds,
)
from repro.workloads.spec2k import BenchmarkProfile, get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import generate_trace

DEFAULT_REFERENCES = 600_000
DEFAULT_WARMUP_FRACTION = 0.25


@dataclass
class System:
    """A built machine: hierarchy plus the books the driver reads."""

    config: SystemConfig
    hierarchy: object
    l1d: object
    l1i: object
    lower: List[object]
    memory: object

    @property
    def l2(self):
        """The first level below the L1s (the cache under study)."""
        return self.lower[0]

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l1i):
            cache.reset_stats()
        for level in self.lower:
            target = getattr(level, "cache", level)  # unwrap UniformLowerLevel
            target.reset_stats()
        self.hierarchy.stats.reset()
        self.memory.reads = 0
        self.memory.writes = 0


def make_system(config: SystemConfig, prewarm: bool = True) -> System:
    """Build a system; by default prewarm the lower levels.

    Prewarming fills every cache frame with clean dummy blocks, the
    trace-driven equivalent of the paper's 5-billion-instruction
    fast-forward: replacement and distance-placement machinery start in
    steady state instead of filling an empty 8 MB array.
    """
    hierarchy, l1d, lower, memory = build_system(config)
    if prewarm:
        for level in lower:
            target = getattr(level, "cache", level)
            target.prewarm()
    return System(
        config=config,
        hierarchy=hierarchy,
        l1d=l1d,
        l1i=hierarchy.l1i,
        lower=lower,
        memory=memory,
    )


def _replay(
    system: System,
    core: CoreModel,
    trace: Trace,
    engine: str = "legacy",
    collect: Optional[List] = None,
) -> None:
    """The hot loop: advance the core and walk the hierarchy.

    ``engine="fast"`` dispatches to the fused array-backed kernel
    (:mod:`repro.sim.fastpath`); ``engine="vectorized"`` to the numpy
    chunked kernel (:mod:`repro.sim.vectorized`).  Both are
    bit-identical to this loop.  ``collect`` receives every
    per-reference AccessResult (parity tests only — it slows every
    engine down).
    """
    if engine == "vectorized":
        vectorized.replay(system, core, trace, collect=collect)
        return
    if engine == "fast":
        fastpath.replay(system, core, trace, collect=collect)
        return
    if engine == "approx":
        raise ConfigurationError(
            "approx is an analytical engine with no per-reference replay "
            "loop; run_benchmark dispatches it before replay"
        )
    hierarchy = system.hierarchy
    advance = core.advance_instructions
    note = core.note_memory_result
    access = hierarchy.access_data
    if collect is None:
        for gap, address, is_write in trace.records():
            advance(gap)
            result = access(address, is_write, core.cycle)
            note(address, result)
    else:
        for gap, address, is_write in trace.records():
            advance(gap)
            result = access(address, is_write, core.cycle)
            note(address, result)
            collect.append(result)


def _l2_stats(system: System) -> Dict[str, float]:
    """Normalize the L2's counters across organizations."""
    l2 = system.l2
    inner = getattr(l2, "cache", None)
    if inner is not None:  # base hierarchy: a UniformLowerLevel wrapper
        stats: Dict[str, float] = {
            "accesses": float(inner.accesses),
            "hits": float(inner.hits),
            "misses": float(inner.misses),
            "writebacks": float(inner.writebacks),
        }
        return stats
    return dict(l2.stats.as_dict())


def _dgroup_fractions(system: System) -> Dict[int, float]:
    l2 = system.l2
    dist = getattr(l2, "dgroup_hits", None)
    if dist is None:
        return {}
    stats = _l2_stats(system)
    accesses = stats.get("accesses", 0.0)
    if not accesses:
        return {}
    return {k: v / accesses for k, v in dist.items()}


def _lower_energy_nj(system: System) -> float:
    total = 0.0
    for level in system.lower:
        target = getattr(level, "cache", level)
        total += target.energy.total_nj()
    return total


def _attach_telemetry(system: System, core: CoreModel, session: Telemetry) -> None:
    """Hook the session's clients into a freshly-reset system.

    Attached *after* the warmup reset so histograms and events cover
    the measured portion only, like every other statistic.
    """
    attached = set()
    for cache in (system.l1d, system.l1i):
        if id(cache) in attached:
            continue
        attached.add(id(cache))
        cache.telemetry = session.cache_client(cache.name)
    for level in system.lower:
        target = getattr(level, "cache", level)
        if id(target) in attached:
            continue
        attached.add(id(target))
        target.telemetry = session.cache_client(target.name)
    for level in system.lower:
        # Contended LLCs record the queue depth each access observes.
        if "queue_depth_hist" in getattr(level, "__dict__", {}):
            level.queue_depth_hist = session.histogram(
                f"{level.name}.bank_queue_depth", occupancy_bounds(16)
            )
    system.hierarchy.miss_latency_hist = session.histogram(
        "hierarchy.l1_miss_latency", LATENCY_BOUNDS
    )
    core.mshrs.occupancy_hist = session.histogram(
        "core.mshr_occupancy", occupancy_bounds(core.params.mshrs)
    )


def _cache_counters(target) -> Dict[str, float]:
    """A cache's flat counters, whichever stats style it keeps."""
    stats = getattr(target, "stats", None)
    if stats is not None and hasattr(stats, "as_dict"):
        return dict(stats.as_dict())
    return {
        "accesses": float(target.accesses),
        "hits": float(target.hits),
        "misses": float(target.misses),
        "writebacks": float(target.writebacks),
    }


def _capture_lower(session: Telemetry, target) -> None:
    """End-of-run gauges for one lower level: counters, energy,
    occupancy, single-port pressure, and banked-queue aggregates.

    Shared with the CMP engine, which captures the same lower levels
    once while keeping per-core books separate.
    """
    session.capture_counters(target.name, _cache_counters(target))
    session.capture_energy(target.name, target.energy)
    occupancy = getattr(target, "dgroup_occupancy", None)
    if occupancy is not None:
        for group, (occupied, frames) in enumerate(occupancy()):
            session.capture_gauge(f"{target.name}.dg{group}.occupied", occupied)
            session.capture_gauge(f"{target.name}.dg{group}.frames", frames)
    port = getattr(target, "port", None)
    if port is not None:
        session.capture_gauge(f"{target.name}.port.busy_cycles", port.total_busy)
        session.capture_gauge(f"{target.name}.port.wait_cycles", port.total_wait)
        session.capture_gauge(f"{target.name}.port.grants", port.grants)
    bank_ports = getattr(target, "bank_ports", None)
    if bank_ports:
        session.capture_gauge(f"{target.name}.bankq.banks", len(bank_ports))
        session.capture_gauge(
            f"{target.name}.bankq.busy_cycles",
            sum(p.total_busy for p in bank_ports),
        )
        session.capture_gauge(
            f"{target.name}.bankq.wait_cycles",
            sum(p.total_wait for p in bank_ports),
        )
        session.capture_gauge(
            f"{target.name}.bankq.grants", sum(p.grants for p in bank_ports)
        )


def _capture_telemetry(system: System, core: CoreModel, session: Telemetry) -> None:
    """End-of-run gauges: counters, energy, occupancy, port pressure."""
    captured = set()
    for cache in (system.l1d, system.l1i):
        if id(cache) in captured:
            continue
        captured.add(id(cache))
        session.capture_counters(cache.name, _cache_counters(cache))
        session.capture_energy(cache.name, cache.energy)
    for level in system.lower:
        target = getattr(level, "cache", level)
        if id(target) in captured:
            continue
        captured.add(id(target))
        _capture_lower(session, target)
    session.capture_counters("hierarchy", system.hierarchy.stats.as_dict())
    session.capture_gauge("memory.reads", system.memory.reads)
    session.capture_gauge("memory.writes", system.memory.writes)
    session.capture_gauge("core.stall_cycles", core.stall_cycles)
    session.capture_gauge("core.branch_penalty_cycles", core.branch_penalty_cycles)
    session.capture_gauge("core.mshr_stall_cycles", core.mshr_stall_cycles)
    session.capture_gauge("core.mshr_full_stalls", core.mshr_full_stalls)


def run_benchmark(
    config: SystemConfig,
    benchmark: str,
    n_references: int = DEFAULT_REFERENCES,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    trace: Optional[Trace] = None,
    energy_model: Optional[ProcessorEnergyModel] = None,
    warm_set_conflict: int = 1,
    prewarm: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """Run one benchmark on one system and collect measurements."""
    if n_references <= 0:
        raise ConfigurationError(
            f"n_references must be positive, got {n_references}"
        )
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if config.cmp is not None and config.cmp.cores > 1:
        # Multi-core runs interleave their own per-core traces and
        # replay through per-core hierarchies over the shared LLC.
        # cores=1 deliberately falls through to the unchanged
        # single-core path below (the bit-identity contract).
        if trace is not None:
            raise ConfigurationError(
                "CMP runs generate and interleave their own per-core "
                "traces; pass trace=None"
            )
        from repro.cmp.engine import run_cmp

        return run_cmp(
            config,
            benchmark,
            n_references=n_references,
            seed=seed,
            warmup_fraction=warmup_fraction,
            energy_model=energy_model,
            warm_set_conflict=warm_set_conflict,
            prewarm=prewarm,
            telemetry=telemetry,
        )
    engine = resolve_engine(config.engine)
    session: Optional[Telemetry] = None
    if telemetry is not None and telemetry.enabled:
        session = Telemetry(telemetry, f"{config.name}/{benchmark}/s{seed}")
    profiler = session.profiler if session is not None else NullProfiler()
    profile: BenchmarkProfile = get_benchmark(benchmark)
    if trace is None:
        with profiler.phase("tracegen"):
            trace = generate_trace(
                profile, n_references, seed=seed, warm_set_conflict=warm_set_conflict
            )
    if engine == "approx":
        if session is not None:
            raise ConfigurationError(
                "telemetry requires an exact engine; approx synthesizes "
                "aggregates and has no per-reference events to record"
            )
        from repro.sim import approx

        return approx.estimate(
            config, benchmark, profile, trace, warmup_fraction,
            energy_model=energy_model,
        )
    with profiler.phase("build"):
        system = make_system(config, prewarm=prewarm)
    warm, measured = trace.split(warmup_fraction)
    if not len(measured):
        raise ConfigurationError("no measured references after warmup split")

    def new_core() -> CoreModel:
        return CoreModel(
            params=config.core,
            core_ipc=profile.core_ipc,
            exposure=profile.exposure,
            branch_fraction=profile.branch_fraction,
            mispredict_rate=profile.mispredict_rate,
        )

    warm_core = new_core()
    if len(warm):
        with profiler.phase("warmup"):
            _replay(system, warm_core, warm, engine=engine)
    system.reset_stats()

    core = new_core()
    # Continue on the warm core's timeline so port busy-times stay causal.
    core.cycle = warm_core.cycle
    start_cycle = core.cycle
    start_instr = core.instructions
    if session is not None:
        _attach_telemetry(system, core, session)
    with profiler.phase("measure"):
        _replay(system, core, measured, engine=engine)

    cycles = core.cycle - start_cycle
    instructions = core.instructions - start_instr
    l2_stats = _l2_stats(system)
    model = energy_model if energy_model is not None else ProcessorEnergyModel()
    l1_energy = system.l1d.energy.total_nj() + system.l1i.energy.total_nj()
    lower_energy = _lower_energy_nj(system)

    extra = dict(l2_stats)
    extra["mshr_full_stalls"] = float(core.mshr_full_stalls)
    extra["stall_cycles"] = core.stall_cycles
    extra["branch_penalty_cycles"] = core.branch_penalty_cycles
    extra["memory_accesses"] = float(core.memory_accesses)
    for level in system.lower:
        target = getattr(level, "cache", level)
        injector = getattr(target, "fault_injector", None)
        if injector is not None:
            extra.update({k: float(v) for k, v in injector.summary().items()})
            retired = getattr(target, "retired_frames", None)
            if retired is not None:
                # End-of-run census, immune to the post-warmup counter
                # reset (retirement during warmup still shrinks the
                # measured-portion capacity).
                extra["fault_frames_retired_total"] = float(sum(retired()))

    telemetry_payload: Optional[Dict[str, object]] = None
    if session is not None:
        _capture_telemetry(system, core, session)
        trace_path = session.flush_trace()
        telemetry_payload = session.payload(trace_path)

    return RunResult(
        benchmark=benchmark,
        config_name=config.name,
        instructions=instructions,
        cycles=cycles,
        l2_accesses=int(l2_stats.get("accesses", 0)),
        l2_hits=int(l2_stats.get("hits", 0)),
        l2_misses=int(l2_stats.get("misses", 0)),
        dgroup_fractions=_dgroup_fractions(system),
        l1_energy_nj=l1_energy,
        lower_energy_nj=lower_energy,
        core_energy_nj=model.core_energy_nj(instructions, cycles),
        stats=extra,
        telemetry=telemetry_payload,
    )


def run_suite(
    config: SystemConfig,
    benchmarks: Iterable[str],
    n_references: int = DEFAULT_REFERENCES,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    traces: Optional[Dict[str, Trace]] = None,
    energy_model: Optional[ProcessorEnergyModel] = None,
    warm_set_conflict: int = 1,
    prewarm: bool = True,
    jobs: int = 1,
    trace_cache_dir: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
    result_store=None,
) -> SuiteResult:
    """Run a set of benchmarks on one configuration.

    All per-run knobs (``energy_model``, ``warm_set_conflict``,
    ``prewarm``) are forwarded to every :func:`run_benchmark` call.
    ``jobs=N`` runs the benchmarks on N worker processes through
    :mod:`repro.sim.parallel` with identical seeding, so parallel
    suite results are bit-identical to serial ones; a failing run
    raises in the parent either way.  ``trace_cache_dir`` names the
    on-disk trace store workers load from (default:
    ``$REPRO_TRACE_CACHE``, else a temp directory for the call).

    ``result_store`` (a :class:`repro.service.store.ResultStore`)
    memoizes completed cells by content address: cells already in the
    store are served from disk without simulating, and fresh results
    are published back for every later caller (``Sweep``, the service,
    another ``run_suite``).  The memo key covers the full config
    fingerprint, resolved engine, and trace parameters, so hits are
    bit-identical to recomputation.  Cells carrying an inline ``trace``
    or a custom ``energy_model`` are not content-addressable and always
    run.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    benchmarks = list(benchmarks)
    runs: Dict[str, RunResult] = {}
    if result_store is None and (jobs == 1 or len(benchmarks) <= 1):
        for name in benchmarks:
            trace = traces.get(name) if traces else None
            runs[name] = run_benchmark(
                config,
                name,
                n_references=n_references,
                seed=seed,
                warmup_fraction=warmup_fraction,
                trace=trace,
                energy_model=energy_model,
                warm_set_conflict=warm_set_conflict,
                prewarm=prewarm,
                telemetry=telemetry,
            )
        return SuiteResult(config_name=config.name, runs=runs)

    # Imported here, not at module top: repro.sim.parallel imports this
    # module for its workers.
    import shutil
    import tempfile

    from repro.sim.parallel import (
        CellTask,
        cell_fingerprint,
        memoizable_payload,
        run_cells,
    )
    from repro.sim.results import run_result_from_dict
    from repro.workloads.tracegen import TraceCache, default_trace_cache_dir
    from repro.workloads.transport import ensure_decoded

    cache_dir = trace_cache_dir or default_trace_cache_dir()
    scratch: Optional[str] = None
    tasks = []
    try:
        cache: Optional[TraceCache] = None
        is_cmp = config.cmp is not None and config.cmp.cores > 1
        for index, name in enumerate(benchmarks):
            trace = traces.get(name) if traces else None
            trace_path = None
            if trace is None and not is_cmp:
                if cache is None:
                    if cache_dir is None:
                        scratch = tempfile.mkdtemp(prefix="repro-trace-cache-")
                        cache_dir = scratch
                    cache = TraceCache(cache_dir)
                trace_path = cache.ensure(
                    name, n_references, seed=seed,
                    warm_set_conflict=warm_set_conflict,
                )
            tasks.append(
                CellTask(
                    index=index,
                    config=config,
                    benchmark=name,
                    n_references=n_references,
                    seed=seed,
                    warmup_fraction=warmup_fraction,
                    trace=trace,
                    trace_path=trace_path,
                    mmap_path=ensure_decoded(trace_path),
                    warm_set_conflict=warm_set_conflict,
                    prewarm=prewarm,
                    energy_model=energy_model,
                    isolate_errors=False,
                    telemetry=telemetry,
                )
            )
        pending = tasks
        keys: Dict[int, str] = {}
        if result_store is not None:
            pending = []
            for task in tasks:
                key = cell_fingerprint(task)
                if key is not None:
                    cached = result_store.get(key)
                    if cached is not None:
                        runs[benchmarks[task.index]] = run_result_from_dict(
                            cached["result"]
                        )
                        continue
                    keys[task.index] = key
                pending.append(task)
        for payload in run_cells(pending, jobs):
            index = payload["index"]
            key = keys.get(index)
            if key is not None:
                stored = dict(payload)
                stored.pop("index", None)
                if memoizable_payload(stored):
                    result_store.put(key, stored)
            runs[benchmarks[index]] = run_result_from_dict(
                payload["result"]
            )
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    return SuiteResult(config_name=config.name, runs=runs)

"""Process-pool execution of independent simulation cells.

Every figure, table, and sweep in this reproduction is a grid of
``(config, benchmark)`` cells, and per-cell seeding makes each cell a
pure function of its parameters — there is no shared mutable state
between cells.  That makes the grid embarrassingly parallel: this
module farms cells out to worker processes and returns their
measurements through the existing :func:`run_result_to_dict` /
``RunOutcome`` dictionary round-trip (the same serialization the sweep
checkpoint format uses), so a parallel run is bit-identical to a
serial one.

Two deliberate design points:

* **Tasks ship parameters, not callables.**  A :class:`CellTask`
  carries a picklable :class:`~repro.sim.config.SystemConfig` built in
  the parent, never the sweep's ``build()`` closure, so the engine
  works under every multiprocessing start method (``fork``,
  ``spawn``, ``forkserver``).
* **Traces travel by path, not by value.**  Workers load the shared
  base trace from an on-disk :class:`~repro.workloads.tracegen.TraceCache`
  file instead of receiving tens of megabytes of pickled numpy arrays
  per cell.  When the parent has laid down a decoded segment
  (``mmap_path``, see :mod:`repro.workloads.transport`) the worker
  memory-maps it zero-copy and memoizes the resulting trace — one
  decode per worker process, however many cells it runs — and falls
  back to :meth:`~repro.workloads.trace.Trace.load` on the ``.npz``
  otherwise.  Retry attempts regenerate their reseeded traces in the
  worker, which is exactly what the serial path does.

Failure semantics mirror the serial sweep: with
``isolate_errors=True`` a :class:`~repro.common.errors.ReproError`
becomes a failed outcome payload (after the configured reseeded
retries), while any other exception type is a simulator bug and
propagates out of :func:`run_cells` in the parent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError, ReproError
from repro.cpu.wattch import ProcessorEnergyModel
from repro.sim.config import SystemConfig, config_fingerprint, resolve_engine
from repro.sim.driver import run_benchmark
from repro.sim.results import run_result_to_dict
from repro.telemetry import TelemetryConfig
from repro.workloads.spec2k import get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import generate_trace
from repro.workloads.transport import load_mmap_trace


def reseed_config(config: SystemConfig, bump: int) -> SystemConfig:
    """A copy of ``config`` with its fault-plan seed shifted by ``bump``.

    Retries must not replay the exact upset schedule that killed the
    previous attempt; the injector's RNG seed lives in the (frozen)
    plan, so the reseeded attempt gets a replaced plan.
    """
    if bump == 0 or config.faults is None:
        return config
    plan = dataclasses.replace(config.faults, seed=config.faults.seed + bump)
    return dataclasses.replace(config, faults=plan)


@dataclass(frozen=True)
class CellTask:
    """One ``(config, benchmark)`` cell, fully specified and picklable.

    ``index`` is caller-chosen and echoed back in the result payload so
    completion order (which is nondeterministic) can be mapped back to
    grid position.  ``trace_path`` points at a cached ``.npz`` for the
    first attempt; when it is None and no inline ``trace`` is given the
    worker generates the trace itself from ``(benchmark, seed,
    n_references, warm_set_conflict)``.
    """

    index: int
    config: SystemConfig
    benchmark: str
    n_references: int
    seed: int
    warmup_fraction: float
    trace_path: Optional[str] = None
    trace: Optional[Trace] = None
    max_retries: int = 0
    reseed_step: int = 1000
    #: Wall-clock budget for the cell's retry loop.  On the in-process
    #: paths (execute_cell / run_cells) this is ADVISORY: it is only
    #: checked *between* reseeded retry attempts, so a single attempt
    #: that hangs or overruns is never interrupted — Python cannot
    #: safely preempt a compute loop from within.  Under the supervised
    #: pool (repro.resilience.run_cells_supervised) the same value
    #: doubles as the default per-attempt deadline, enforced for real:
    #: the worker is SIGKILLed and the cell retried/quarantined.
    budget_s: Optional[float] = None
    warm_set_conflict: int = 1
    prewarm: bool = True
    energy_model: Optional[ProcessorEnergyModel] = None
    #: True: ReproErrors become failed-outcome payloads (sweep
    #: semantics).  False: they propagate to the parent (suite
    #: semantics, where one bad run should abort the suite).
    isolate_errors: bool = True
    #: Telemetry collection for the run; the payload rides back inside
    #: the RunResult dict, so parallel runs lose nothing vs serial.
    telemetry: Optional[TelemetryConfig] = None
    #: Decoded-trace segment for zero-copy transport (see
    #: :mod:`repro.workloads.transport`).  Purely an optimization over
    #: ``trace_path``: workers mmap it when valid and fall back to
    #: ``Trace.load`` otherwise, so it never changes results — which is
    #: also why it does not participate in :func:`cell_fingerprint`.
    mmap_path: Optional[str] = None


#: Version of the :func:`cell_fingerprint` key layout.  Bump whenever
#: the set of hashed fields (or their meaning) changes, so stale store
#: entries from an older layout can never satisfy a new lookup.
CELL_FINGERPRINT_FORMAT = 1


def cell_fingerprint(task: CellTask) -> Optional[str]:
    """Content address of the cell's first-attempt result, or None.

    The key covers everything a first (attempt-0) run depends on: the
    config fingerprint, the resolved engine, the trace parameters
    ``(benchmark, n_references, seed, warm_set_conflict)`` — the trace
    itself is a deterministic function of those, which is why
    ``trace_path`` and ``mmap_path`` do not participate — plus warmup
    split, prewarm,
    and the telemetry fingerprint.  Retry/budget knobs
    (``max_retries``, ``reseed_step``, ``budget_s``) are deliberately
    excluded: memoization stores only first-attempt successes (see
    :class:`repro.service.store.ResultStore`), whose payloads those
    knobs cannot influence, so a sweep cell and a suite cell with
    different retry policies share one entry.

    Returns None when the cell is not content-addressable: an inline
    ``trace`` (arbitrary bytes, not derivable from the parameters) or a
    custom ``energy_model`` (not canonically serialized).
    """
    if task.trace is not None or task.energy_model is not None:
        return None
    payload = {
        "format": CELL_FINGERPRINT_FORMAT,
        "config": config_fingerprint(task.config),
        "engine": resolve_engine(task.config.engine),
        "benchmark": task.benchmark,
        "n_references": task.n_references,
        "seed": task.seed,
        "warmup_fraction": task.warmup_fraction,
        "warm_set_conflict": task.warm_set_conflict,
        "prewarm": task.prewarm,
        "telemetry": None
        if task.telemetry is None
        else task.telemetry.fingerprint(),
    }
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def memoizable_payload(payload: Dict[str, object]) -> bool:
    """True when a cell payload is safe to store under its fingerprint.

    Only first-attempt successes qualify: retried or failed outcomes
    depend on the retry/budget knobs excluded from the fingerprint.
    """
    outcome = payload.get("outcome")
    if not isinstance(outcome, dict):
        return False
    return outcome.get("status") == "ok" and outcome.get("attempts") == 1


def _attempt_trace(task: CellTask, attempt: int) -> Optional[Trace]:
    """The cell's trace for one attempt (shared base, or reseeded)."""
    cmp = getattr(task.config, "cmp", None)
    if cmp is not None and cmp.cores > 1:
        # CMP runs interleave per-core streams inside run_benchmark; a
        # pre-generated single-stream trace would be rejected there.
        return None
    if attempt == 0:
        if task.trace is not None:
            return task.trace
        if task.mmap_path is not None:
            trace = load_mmap_trace(
                task.mmap_path, task.benchmark, task.n_references
            )
            if trace is not None:
                return trace
        if task.trace_path is not None:
            return Trace.load(task.trace_path)
    return generate_trace(
        get_benchmark(task.benchmark),
        task.n_references,
        seed=task.seed + attempt * task.reseed_step,
        warm_set_conflict=task.warm_set_conflict,
    )


def execute_cell(task: CellTask) -> Dict[str, object]:
    """Run one cell (attempt + reseeded retries); a picklable payload.

    The payload mirrors one checkpoint cell: ``{"index", "outcome",
    "result"}`` with ``outcome`` in ``RunOutcome.to_dict`` form and
    ``result`` in :func:`run_result_to_dict` form (or None on
    failure).  Runs in a worker process, so it must stay importable at
    module top level.
    """
    deadline = (
        None if task.budget_s is None else time.monotonic() + task.budget_s
    )
    last_error: Optional[ReproError] = None
    attempts = 0
    for attempt in range(task.max_retries + 1):
        if attempt and deadline is not None and time.monotonic() >= deadline:
            break
        attempts += 1
        try:
            result = run_benchmark(
                reseed_config(task.config, attempt * task.reseed_step),
                task.benchmark,
                n_references=task.n_references,
                trace=_attempt_trace(task, attempt),
                warmup_fraction=task.warmup_fraction,
                seed=task.seed + attempt * task.reseed_step,
                energy_model=task.energy_model,
                warm_set_conflict=task.warm_set_conflict,
                prewarm=task.prewarm,
                telemetry=task.telemetry,
            )
            return {
                "index": task.index,
                "outcome": {
                    "status": "ok",
                    "attempts": attempts,
                    "error": None,
                    "error_type": None,
                },
                "result": run_result_to_dict(result),
            }
        except ReproError as exc:
            if not task.isolate_errors:
                raise
            last_error = exc
    if attempts == 0:
        message, error_type = "point budget exhausted before attempt", "Budget"
    else:
        assert last_error is not None
        message, error_type = str(last_error), type(last_error).__name__
    return {
        "index": task.index,
        "outcome": {
            "status": "failed",
            "attempts": attempts,
            "error": message,
            "error_type": error_type,
        },
        "result": None,
    }


def run_cells(
    tasks: Sequence[CellTask],
    jobs: int,
    callback: Optional[Callable[[Dict[str, object]], None]] = None,
) -> List[Dict[str, object]]:
    """Execute cells on ``jobs`` workers; payloads in submission order.

    ``callback`` fires in the parent as each cell completes (in
    completion order) — the sweep uses it for interval checkpoint
    flushes.  With ``jobs=1`` the cells run in-process with no pool, so
    the degenerate case has zero multiprocessing overhead and identical
    behavior.  A worker exception that is not an isolated
    :class:`ReproError` cancels the not-yet-started cells and re-raises
    here.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    tasks = list(tasks)
    if not tasks:
        return []
    payloads: List[Optional[Dict[str, object]]] = [None] * len(tasks)
    if jobs == 1 or len(tasks) == 1:
        for position, task in enumerate(tasks):
            payload = execute_cell(task)
            payloads[position] = payload
            if callback is not None:
                callback(payload)
        return payloads  # type: ignore[return-value]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        positions = {}
        for position, task in enumerate(tasks):
            future = pool.submit(execute_cell, task)
            positions[future] = position
        try:
            for future in as_completed(positions):
                payload = future.result()
                payloads[positions[future]] = payload
                if callback is not None:
                    callback(payload)
        except BaseException:
            for future in positions:
                future.cancel()
            raise
    return payloads  # type: ignore[return-value]

"""CLI for single simulation runs.

Examples::

    python -m repro.sim base art
    python -m repro.sim nurapid art --refs 400000 --dgroups 8
    python -m repro.sim dnuca twolf --policy ss-energy
    python -m repro.sim compare galgel          # base vs nurapid vs dnuca

    # pick the replay engine explicitly (default: $REPRO_ENGINE, else
    # the vectorized kernel; approx answers analytically in ~ms):
    python -m repro.sim nurapid art --engine legacy
    python -m repro.sim compare galgel --engine approx

    # run a comparison's systems on worker processes (bit-identical
    # to --jobs 1; default: $REPRO_JOBS, else 1):
    python -m repro.sim compare galgel --jobs 3

    # collect telemetry and print the merged report after the run
    # (same values REPRO_TELEMETRY takes: "on", or a directory to
    # flush JSONL event traces into):
    python -m repro.sim nurapid art --telemetry on
    python -m repro.sim nurapid art --telemetry /tmp/nurapid-traces
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.nuca.config import SearchPolicy
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import (
    ENGINES,
    base_config,
    dnuca_config,
    nurapid_config,
    sa_nuca_config,
)
from repro.sim.driver import run_benchmark
from repro.sim.results import RunResult
from repro.telemetry import telemetry_from_env
from repro.workloads.spec2k import suite_names
from repro.workloads.tracegen import generate_trace
from repro.workloads.spec2k import get_benchmark


def _print_result(result: RunResult) -> None:
    print(f"config      : {result.config_name}")
    print(f"benchmark   : {result.benchmark}")
    print(f"instructions: {result.instructions}")
    print(f"cycles      : {result.cycles:.0f}")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"L2 accesses : {result.l2_accesses} ({result.l2_apki:.1f}/1k inst)")
    print(f"L2 miss frac: {result.l2_miss_fraction:.3f}")
    if result.dgroup_fractions:
        fractions = ", ".join(
            f"dg{k}={v:.1%}" for k, v in sorted(result.dgroup_fractions.items())
        )
        print(f"d-group hits: {fractions}")
    print(f"L2 energy   : {result.lower_energy_nj / 1000:.1f} uJ")
    print(f"proc energy : {result.total_energy_nj / 1000:.1f} uJ "
          f"(ED {result.energy_delay:.3e})")


def _config_for(args) -> list:
    if args.system == "base":
        return [base_config()]
    if args.system == "nurapid":
        return [
            nurapid_config(
                n_dgroups=args.dgroups,
                promotion=PromotionPolicy(args.promotion),
                distance_replacement=DistanceReplacementKind(args.distance),
                ideal_uniform=args.ideal,
            )
        ]
    if args.system == "dnuca":
        return [dnuca_config(policy=SearchPolicy(args.policy))]
    if args.system == "sa-nuca":
        return [sa_nuca_config()]
    if args.system == "compare":
        return [
            base_config(),
            nurapid_config(n_dgroups=args.dgroups),
            dnuca_config(policy=SearchPolicy(args.policy)),
        ]
    raise AssertionError(args.system)


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Run one benchmark on one (or a comparison of) systems.",
    )
    parser.add_argument(
        "system", choices=["base", "nurapid", "dnuca", "sa-nuca", "compare"]
    )
    parser.add_argument("benchmark", choices=suite_names())
    parser.add_argument("--refs", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=float, default=0.4)
    parser.add_argument("--dgroups", type=int, default=4, choices=[2, 4, 8])
    parser.add_argument(
        "--promotion", default="next-fastest",
        choices=[p.value for p in PromotionPolicy],
    )
    parser.add_argument(
        "--distance", default="random",
        choices=[k.value for k in DistanceReplacementKind],
    )
    parser.add_argument(
        "--policy", default="ss-performance",
        choices=[p.value for p in SearchPolicy],
    )
    parser.add_argument("--ideal", action="store_true")
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="replay engine (default: $REPRO_ENGINE, else vectorized)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for multi-system runs "
             "(default: $REPRO_JOBS, else 1; bit-identical to 1)",
    )
    parser.add_argument(
        "--telemetry", metavar="SPEC", default=None,
        help="collect telemetry and print the merged report; SPEC is "
             "'on' for histograms, or a directory for JSONL event "
             "traces (same values as $REPRO_TELEMETRY)",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else _default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    telemetry = telemetry_from_env(args.telemetry)
    if args.telemetry is not None and telemetry is None:
        parser.error(f"--telemetry {args.telemetry!r} disables collection; "
                     "pass 'on' or a trace directory")

    import dataclasses

    configs = _config_for(args)
    if args.engine is not None:
        configs = [
            dataclasses.replace(config, engine=args.engine)
            for config in configs
        ]
    trace = generate_trace(get_benchmark(args.benchmark), args.refs, seed=args.seed)
    results = []
    if jobs > 1 and len(configs) > 1:
        from repro.sim.parallel import CellTask, run_cells
        from repro.sim.results import run_result_from_dict

        tasks = [
            CellTask(
                index=index,
                config=config,
                benchmark=args.benchmark,
                n_references=args.refs,
                seed=args.seed,
                warmup_fraction=args.warmup,
                trace=trace,
                isolate_errors=False,
                telemetry=telemetry,
            )
            for index, config in enumerate(configs)
        ]
        for payload in run_cells(tasks, jobs):
            results.append(run_result_from_dict(payload["result"]))
    else:
        for config in configs:
            results.append(
                run_benchmark(
                    config, args.benchmark, trace=trace,
                    warmup_fraction=args.warmup, telemetry=telemetry,
                )
            )
    for result in results:
        _print_result(result)
        print()
    if len(results) > 1:
        base = results[0]
        for other in results[1:]:
            rel = other.ipc / base.ipc
            print(f"{other.config_name} vs {base.config_name}: "
                  f"{(rel - 1) * 100:+.1f}% performance, "
                  f"{other.lower_energy_nj / base.lower_energy_nj:.2f}x L2 energy")
    if telemetry is not None:
        from repro.telemetry.report import merge_payloads, render_report

        pairs = [
            (f"{r.config_name}/{r.benchmark}", r.telemetry)
            for r in results
            if r.telemetry is not None
        ]
        if pairs:
            print()
            print(render_report(merge_payloads(pairs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI for single simulation runs.

Examples::

    python -m repro.sim base art
    python -m repro.sim nurapid art --refs 400000 --dgroups 8
    python -m repro.sim dnuca twolf --policy ss-energy
    python -m repro.sim compare galgel          # base vs nurapid vs dnuca
"""

from __future__ import annotations

import argparse
import sys

from repro.nuca.config import SearchPolicy
from repro.nurapid.config import DistanceReplacementKind, PromotionPolicy
from repro.sim.config import base_config, dnuca_config, nurapid_config, sa_nuca_config
from repro.sim.driver import run_benchmark
from repro.sim.results import RunResult
from repro.workloads.spec2k import suite_names
from repro.workloads.tracegen import generate_trace
from repro.workloads.spec2k import get_benchmark


def _print_result(result: RunResult) -> None:
    print(f"config      : {result.config_name}")
    print(f"benchmark   : {result.benchmark}")
    print(f"instructions: {result.instructions}")
    print(f"cycles      : {result.cycles:.0f}")
    print(f"IPC         : {result.ipc:.3f}")
    print(f"L2 accesses : {result.l2_accesses} ({result.l2_apki:.1f}/1k inst)")
    print(f"L2 miss frac: {result.l2_miss_fraction:.3f}")
    if result.dgroup_fractions:
        fractions = ", ".join(
            f"dg{k}={v:.1%}" for k, v in sorted(result.dgroup_fractions.items())
        )
        print(f"d-group hits: {fractions}")
    print(f"L2 energy   : {result.lower_energy_nj / 1000:.1f} uJ")
    print(f"proc energy : {result.total_energy_nj / 1000:.1f} uJ "
          f"(ED {result.energy_delay:.3e})")


def _config_for(args) -> list:
    if args.system == "base":
        return [base_config()]
    if args.system == "nurapid":
        return [
            nurapid_config(
                n_dgroups=args.dgroups,
                promotion=PromotionPolicy(args.promotion),
                distance_replacement=DistanceReplacementKind(args.distance),
                ideal_uniform=args.ideal,
            )
        ]
    if args.system == "dnuca":
        return [dnuca_config(policy=SearchPolicy(args.policy))]
    if args.system == "sa-nuca":
        return [sa_nuca_config()]
    if args.system == "compare":
        return [
            base_config(),
            nurapid_config(n_dgroups=args.dgroups),
            dnuca_config(policy=SearchPolicy(args.policy)),
        ]
    raise AssertionError(args.system)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Run one benchmark on one (or a comparison of) systems.",
    )
    parser.add_argument(
        "system", choices=["base", "nurapid", "dnuca", "sa-nuca", "compare"]
    )
    parser.add_argument("benchmark", choices=suite_names())
    parser.add_argument("--refs", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=float, default=0.4)
    parser.add_argument("--dgroups", type=int, default=4, choices=[2, 4, 8])
    parser.add_argument(
        "--promotion", default="next-fastest",
        choices=[p.value for p in PromotionPolicy],
    )
    parser.add_argument(
        "--distance", default="random",
        choices=[k.value for k in DistanceReplacementKind],
    )
    parser.add_argument(
        "--policy", default="ss-performance",
        choices=[p.value for p in SearchPolicy],
    )
    parser.add_argument("--ideal", action="store_true")
    args = parser.parse_args(argv)

    trace = generate_trace(get_benchmark(args.benchmark), args.refs, seed=args.seed)
    results = []
    for config in _config_for(args):
        result = run_benchmark(
            config, args.benchmark, trace=trace, warmup_fraction=args.warmup
        )
        results.append(result)
        _print_result(result)
        print()
    if len(results) > 1:
        base = results[0]
        for other in results[1:]:
            rel = other.ipc / base.ipc
            print(f"{other.config_name} vs {base.config_name}: "
                  f"{(rel - 1) * 100:+.1f}% performance, "
                  f"{other.lower_energy_nj / base.lower_energy_nj:.2f}x L2 energy")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Array-backed fast-path replay kernel.

The legacy hot loop (:func:`repro.sim.driver._replay`) pays Python
call overhead five times per reference — ``advance_instructions``,
``hierarchy.access_data``, ``l1.access``, ``AccessResult(...)``,
``note_memory_result`` — even though >90% of references are pipelined
L1 hits whose entire architectural effect is a handful of int and
float updates.  This module fuses the whole per-reference chain into
one loop over a pre-decoded trace (:meth:`Trace.decoded`): the L1
probe indexes the flat tag array of
:class:`~repro.caches.simple.SetAssociativeCache` directly, counters
are accumulated in locals and committed once at the end, and only L1
misses drop into the (method-dispatched) lower-hierarchy walk.

Bit-identity contract
---------------------

The kernel replays the *exact* float-operation sequence of the legacy
path: ``advance_instructions`` and ``note_memory_result`` are inlined
op by op (no reassociation, no pre-multiplied constants), lower-level
caches are driven through the same ``access``/``fill`` methods at the
same ``now`` values, and integer counters are batched — which is
exact — then flushed in a ``finally`` block so a mid-replay
:class:`~repro.faults.models.UncorrectableDataError` leaves the same
counter state behind as the legacy loop.  ``python -m repro.bench
--engine-parity`` and ``tests/test_fastpath.py`` hold the two engines
to byte-identical results and telemetry reports.

When the fused loop's preconditions do not hold (an L1 fault
injector, a non-2-way L1, or an L1 whose latency/block size disagrees
with the core's constants), the kernel falls back to a generic loop
with legacy semantics, so ``engine="fast"`` is always safe to select.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import AccessResult


def replay(system, core, trace, collect: Optional[List[AccessResult]] = None) -> None:
    """Replay ``trace`` through ``system``/``core``, fast and bit-identical.

    ``collect``, if given, receives the per-reference
    :class:`AccessResult` exactly as the legacy loop would observe it
    (used by the parity tests; adds one branch per reference).
    """
    l1 = system.l1d
    params = core.params
    if (
        l1.fault_injector is not None
        or getattr(l1, "_assoc", None) != 2
        or l1.spec.latency_cycles != params.l1_hit_cycles
        or l1.spec.block_bytes != params.l1_block_bytes
    ):
        replay_generic(system, core, trace, collect)
        return

    hierarchy = system.hierarchy
    memory = system.memory
    lower = hierarchy.lower
    decoded = trace.decoded(l1.spec.block_bytes, l1.n_sets)

    # L1 state, hoisted to locals (the lists are shared in place; the
    # clock is written back on flush and synced around l1.fill calls).
    tags = l1._tags
    dirty = l1._dirty
    stamps = l1._stamps
    clock = l1._clock
    l1_lat = l1.spec.latency_cycles
    l1_lat_f = float(l1_lat)
    l1_name = l1.name
    l1_energy = l1.energy
    read_cost = l1_energy.cost(f"{l1_name}.read")
    write_cost = l1_energy.cost(f"{l1_name}.write")
    l1_telem = l1.telemetry
    l1_fill = l1.fill

    # Core state: the same scalars advance_instructions and
    # note_memory_result mutate, accumulated locally in the same order.
    ipc = core.core_ipc
    bf = core.branch_fraction
    mr = core.mispredict_rate
    mp = params.mispredict_penalty
    exposure = core.exposure
    mlp_discount = params.memory_mlp_discount
    mshr = core.mshrs
    mshr_retire = mshr.retire_completed
    mshr_lookup = mshr.lookup
    cycle = core.cycle
    instructions = core.instructions
    memory_accesses = core.memory_accesses
    bp = core.branch_penalty_cycles
    stall = core.stall_cycles
    mshr_stall = core.mshr_stall_cycles

    # Miss-path plumbing.
    stats = hierarchy.stats
    hist = hierarchy.miss_latency_hist
    first = lower[0]
    mem_lat = memory.transfer_cycles(lower[-1].block_bytes)
    lvl_names = [level.name for level in lower]
    n_lower = len(lower)

    # Batched integer counters (int batching is exact; flushed below).
    n_reads = n_writes = 0
    n_hits = n_misses = 0
    n_refs = 0
    n_l1_wb = n_l1_wb_mem = 0
    n_mem_reads = n_mem_writes = 0
    lvl_acc = [0] * n_lower
    lvl_hits = [0] * n_lower
    lvl_wb = [0] * n_lower

    try:
        for gap, address, baddr, index, is_write in zip(
            decoded.gaps,
            decoded.addresses,
            decoded.block_addrs,
            decoded.set_indices,
            decoded.writes,
        ):
            # advance_instructions, inlined (same float-op sequence).
            instructions += gap
            cycle += gap / ipc
            penalty = gap * bf * mr * mp
            bp += penalty
            cycle += penalty
            n_refs += 1
            if is_write:
                n_writes += 1
            else:
                n_reads += 1

            # Inline 2-way L1 probe on the flat tag array.
            frame = index + index
            if tags[frame] != baddr:
                if tags[frame + 1] == baddr:
                    frame += 1
                else:
                    frame = -1
            if frame >= 0:
                # L1 hit: pipelined into the core IPC — touch LRU,
                # maybe set dirty, and the reference is fully retired.
                n_hits += 1
                stamps[frame] = clock
                clock += 1
                if is_write:
                    dirty[frame] = 1
                if l1_telem is not None:
                    l1_telem.on_access(baddr, True, None, l1_lat_f)
                if collect is not None:
                    collect.append(
                        AccessResult(
                            hit=True,
                            latency=l1_lat,
                            level=l1_name,
                            energy_nj=write_cost if is_write else read_cost,
                        )
                    )
                continue

            # L1 miss: CacheHierarchy._access, inlined.
            n_misses += 1
            if l1_telem is not None:
                l1_telem.on_access(baddr, False, None, l1_lat_f)
            total_latency = l1_lat
            energy = write_cost if is_write else read_cost
            level_name = "memory"
            dgroup = None
            missed: Optional[List[int]] = None
            supplied = False
            i = 0
            for level in lower:
                r = level.access(address, is_write=False, now=cycle + total_latency)
                total_latency += r.latency
                energy += r.energy_nj
                lvl_acc[i] += 1
                if r.hit:
                    level_name = r.level or lvl_names[i]
                    dgroup = r.dgroup
                    lvl_hits[i] += 1
                    supplied = True
                    break
                if missed is None:
                    missed = [i]
                else:
                    missed.append(i)
                i += 1
            if not supplied:
                n_mem_reads += 1
                total_latency += mem_lat

            fill_time = cycle + total_latency
            if missed is not None:
                for j in reversed(missed):
                    dirty_out = lower[j].fill(address, now=fill_time, dirty=False)
                    if dirty_out:
                        n_mem_writes += dirty_out
                        lvl_wb[j] += dirty_out
            l1._clock = clock
            victim = l1_fill(address, dirty=is_write)
            clock = l1._clock
            if victim is not None and victim.dirty:
                # _writeback_from_l1, inlined.
                n_l1_wb += 1
                rw = first.access(victim.block_addr, is_write=True, now=fill_time)
                lvl_acc[0] += 1
                if rw.hit:
                    lvl_hits[0] += 1
                else:
                    n_mem_writes += 1
                    n_l1_wb_mem += 1
            if hist is not None:
                hist.record(total_latency)
            if collect is not None:
                collect.append(
                    AccessResult(
                        hit=False,
                        latency=total_latency,
                        level=level_name,
                        dgroup=dgroup,
                        energy_nj=energy,
                    )
                )

            # note_memory_result, inlined (same float-op sequence).
            beyond_l1 = total_latency - l1_lat
            if beyond_l1 <= 0:
                continue
            mshr_retire(cycle)
            if mshr.full:
                wait_until = mshr.earliest_fill()
                mshr_stall += wait_until - cycle
                cycle = wait_until
                mshr_retire(cycle)
                mshr.note_full_stall()
            exp = exposure
            if level_name == "memory":
                exp *= mlp_discount
            exposed = beyond_l1 * exp
            stall += exposed
            cycle += exposed
            fill_at = cycle + beyond_l1 * (1.0 - exposure)
            if mshr_lookup(baddr) is not None:
                mshr.merge(baddr)
            else:
                mshr.allocate(baddr, cycle, fill_at)
    finally:
        # Commit batched state.  Runs on an UncorrectableDataError too,
        # so a killed fault run leaves legacy-identical counters behind.
        l1._clock = clock
        l1.hits += n_hits
        l1.misses += n_misses
        if n_reads:
            l1_energy.charge(f"{l1_name}.read", n_reads)
        if n_writes:
            l1_energy.charge(f"{l1_name}.write", n_writes)
        core.commit_batch(
            cycle=cycle,
            instructions=instructions,
            memory_accesses=memory_accesses + n_refs,
            branch_penalty_cycles=bp,
            stall_cycles=stall,
            mshr_stall_cycles=mshr_stall,
        )
        if n_refs:
            stats.add("l1_accesses", n_refs)
        if n_hits:
            stats.add("l1_hits", n_hits)
        for i in range(n_lower):
            if lvl_acc[i]:
                stats.add(lvl_names[i] + "_accesses", lvl_acc[i])
            if lvl_hits[i]:
                stats.add(lvl_names[i] + "_hits", lvl_hits[i])
            if lvl_wb[i]:
                stats.add(lvl_names[i] + "_writebacks", lvl_wb[i])
        if n_l1_wb:
            stats.add("l1_writebacks", n_l1_wb)
        if n_l1_wb_mem:
            stats.add("l1_writebacks_to_memory", n_l1_wb_mem)
        if n_mem_reads:
            stats.add("memory_reads", n_mem_reads)
        memory.reads += n_mem_reads
        memory.writes += n_mem_writes


def replay_generic(
    system, core, trace, collect: Optional[List[AccessResult]] = None
) -> None:
    """Legacy-semantics loop for systems the fused kernel cannot take.

    Identical behaviour to the legacy engine (method dispatch per
    reference); used when the L1 carries a fault injector or deviates
    from the core's L1 constants.
    """
    hierarchy = system.hierarchy
    advance = core.advance_instructions
    note = core.note_memory_result
    access = hierarchy.access_data
    if collect is None:
        for gap, address, is_write in trace.records():
            advance(gap)
            note(address, access(address, is_write, core.cycle))
    else:
        for gap, address, is_write in trace.records():
            advance(gap)
            result = access(address, is_write, core.cycle)
            note(address, result)
            collect.append(result)

"""Simulation driver: configurations, run loop, and results.

* :mod:`repro.sim.config` — named system configurations (base L2/L3,
  D-NUCA variants, NuRAPID variants) and :func:`build_system`.
* :mod:`repro.sim.driver` — the trace-driven run loop with warmup.
* :mod:`repro.sim.results` — per-run records and suite aggregation
  (relative performance, d-group access distributions, energy).
"""

from repro.sim.config import (
    SystemConfig,
    base_config,
    build_system,
    dnuca_config,
    nurapid_config,
    sa_nuca_config,
    snuca_config,
)
from repro.sim.driver import System, run_benchmark, run_suite
from repro.sim.parallel import CellTask, execute_cell, run_cells
from repro.sim.sweep import Sweep, SweepAxis, SweepPoint
from repro.sim.results import (
    RunResult,
    SuiteResult,
    mean_distribution,
    relative_performance,
)

__all__ = [
    "CellTask",
    "RunResult",
    "Sweep",
    "SweepAxis",
    "SweepPoint",
    "SuiteResult",
    "System",
    "SystemConfig",
    "base_config",
    "build_system",
    "dnuca_config",
    "execute_cell",
    "mean_distribution",
    "run_cells",
    "nurapid_config",
    "relative_performance",
    "run_benchmark",
    "run_suite",
    "sa_nuca_config",
    "snuca_config",
]

"""Analytical fast-forward engine (``engine="approx"``).

This is the opt-in third replay tier: instead of replaying the trace
reference-by-reference through the cache models, it *computes* the run
result from reuse-distance structure, closed-form core timing, and the
same geometry (latency/energy) models the exact simulators consume.
One run costs a handful of numpy passes over the trace columns —
orders of magnitude cheaper than even the vectorized kernel — at the
price of bit identity: results match the exact engines only within the
documented tolerances that ``repro.bench --approx-accuracy`` gates.

The model
---------

* **The L1 is exact, including writebacks.**  The 2-way LRU L1 is
  evaluated with a "collapsed recency" pass: stable-sort references by
  set, collapse consecutive same-block runs, and a block hits iff it
  matches one of its set's previous two distinct blocks.  For true LRU
  with demand fills this reproduces the simulator's hit/miss sequence
  bit-for-bit (prewarmed dummies never alias real addresses, so
  cold-start behaves identically).  Victims are equally determined —
  the set's other resident block — so dirty evictions (any write since
  the victim's fill) and therefore the L1 writeback stream into the L2
  are exact too.
* **The L2 sees the exact access stream, approximate LRU.**  Demand
  misses (reads) and dirty-victim writebacks (writes) merge in program
  order and run through the same recency pass with the organization's
  geometry.  For associativity A > 2, "matches one of the last A
  distinct blocks of the set" is approximated by "matches one of the
  last A collapsed references", a strict subset of true LRU hits, so
  lower-level miss ratios are slightly *over*-estimated.
  Organization-specific replacement quirks (D-NUCA's tail-bank
  eviction, the coupled cache's slowest-group LRU, NuRAPID's distance
  replacement) are all approximated by this one LRU model.
* **The full trace feeds the model; only the measured tail counts.**
  Warmup needs no separate replay: the recency pass naturally carries
  cache state across the split point.
* **D-group placement follows each organization's policy.**  NuRAPID
  and the coupled cache place fills fastest-first and demote stale
  blocks, so a hit's d-group is modeled by the block's reuse distance:
  within the fastest group's frame count of recent traffic means
  d-group 0, and so on down the bands.  D-NUCA tail-inserts and
  promotes one bank per hit, so a hit's bank level is ``tail - (hits
  since fill)``.  S-NUCA's bank is a pure address function and is
  computed exactly.
* **Core time is closed-form.**  Pipeline and branch time are linear
  in instructions; each measured L1 miss stalls the core for
  ``exposure`` of its beyond-L1 latency (geometry hit latency per
  level, plus the 130 + 4/8B memory transfer when every level
  misses).  Port queueing and MSHR full stalls are ignored — they are
  small on these traces and the IPC tolerance absorbs them.
* **Energy is counts x the same per-operation costs** the exact
  engines charge through their EnergyBooks, with block movement
  (promotions/demotions) estimated from hit counts in slow d-groups
  and lower-level dirty evictions estimated statistically.

Telemetry and fault campaigns require per-reference simulation and are
rejected with :class:`~repro.common.errors.ConfigurationError`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.caches.memory import MainMemory
from repro.cpu.wattch import ProcessorEnergyModel
from repro.floorplan.dgroups import (
    build_dnuca_geometry,
    build_nurapid_geometry,
    build_uniform_cache_spec,
)
from repro.nuca.cache import DNUCACache
from repro.nurapid.config import PromotionPolicy
from repro.sim.results import RunResult
from repro.telemetry import runtime_registry
from repro.workloads.spec2k import BenchmarkProfile
from repro.workloads.trace import Trace

KB = 1024
MB = 1024 * 1024


# --- cached geometry (pure functions of their arguments) ---


@lru_cache(maxsize=None)
def _l1_spec():
    return build_uniform_cache_spec(
        name="L1d",
        capacity_bytes=64 * KB,
        block_bytes=32,
        associativity=2,
        latency_cycles=3,
        sequential_tag_data=False,
        energy_factor=6.4,
    )


@lru_cache(maxsize=None)
def _base_specs():
    l2 = build_uniform_cache_spec(
        name="L2", capacity_bytes=1 * MB, block_bytes=128,
        associativity=8, latency_cycles=11,
    )
    l3 = build_uniform_cache_spec(
        name="L3", capacity_bytes=8 * MB, block_bytes=128,
        associativity=8, latency_cycles=43,
    )
    return l2, l3


@lru_cache(maxsize=None)
def _nurapid_geometry(n_dgroups, capacity, block, assoc, restricted):
    return build_nurapid_geometry(
        n_dgroups=n_dgroups, capacity_bytes=capacity, block_bytes=block,
        associativity=assoc, restricted_frames=restricted,
    )


@lru_cache(maxsize=None)
def _dnuca_geometry(capacity, block, assoc, bank_bytes, chain, ss_bits):
    return build_dnuca_geometry(
        capacity_bytes=capacity, block_bytes=block, associativity=assoc,
        bank_bytes=bank_bytes, chain_length=chain, ss_partial_bits=ss_bits,
    )


# --- model primitives ---


def _l1_pass(
    set_idx: np.ndarray, blocks: np.ndarray, writes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact 2-way-LRU L1: per-access hits plus dirty-eviction events.

    Returns ``(hit, wb_pos, wb_block)``: the per-access hit mask in
    trace order, and for every dirty eviction the trace position of
    the miss that caused it and the victim's block address.

    In collapsed-recency space the cache state is fully determined:
    at rep ``t`` the set holds ``{c[t-1], c[t-2]}``, so a miss evicts
    ``c[t-2]``; the victim is dirty iff any access in its reps since
    its own last miss (its fill) was a write.
    """
    n = len(blocks)
    order = np.argsort(set_idx, kind="stable")
    s = set_idx[order]
    b = blocks[order]
    w = writes[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.logical_or(b[1:] != b[:-1], s[1:] != s[:-1], out=new[1:])
    rep = np.flatnonzero(new)
    cb = b[rep]
    cs = s[rep]
    m = len(rep)
    # Any write within each collapsed run.
    cw = np.add.reduceat(w.astype(np.int64), rep) > 0
    hit_rep = np.zeros(m, dtype=bool)
    same2 = np.zeros(m, dtype=bool)
    if m > 2:
        same2[2:] = cs[2:] == cs[:-2]
        hit_rep[2:] = same2[2:] & (cb[2:] == cb[:-2])
    # Scatter the mask back to trace order (non-rep accesses are hits).
    hits_sorted = np.ones(n, dtype=bool)
    hits_sorted[rep] = hit_rep
    hit = np.empty(n, dtype=bool)
    hit[order] = hits_sorted

    # Dirty state per rep: any write since the block's last miss.
    ordb = np.argsort(cb, kind="stable")
    miss_b = ~hit_rep[ordb]
    idx = np.arange(m)
    # Every block's first rep is a miss, so the accumulate resets
    # naturally at block boundaries.
    last_miss = np.maximum.accumulate(np.where(miss_b, idx, -1))
    cum = np.cumsum(cw[ordb].astype(np.int64))
    since_fill = cum - cum[last_miss] + cw[ordb][last_miss]
    dirty_sorted = since_fill > 0
    dirty_rep = np.empty(m, dtype=bool)
    dirty_rep[ordb] = dirty_sorted

    # Evictions: a miss rep whose set already held two blocks.
    evict = np.flatnonzero(~hit_rep & same2)
    victim = evict - 2
    dirty_evict = dirty_rep[victim]
    wb_t = evict[dirty_evict]
    wb_pos = order[rep[wb_t]]
    wb_block = cb[wb_t - 2]
    return hit, wb_pos, wb_block


def _recency_hits(set_idx: np.ndarray, blocks: np.ndarray, window: int) -> np.ndarray:
    """Per-access hit mask for an LRU cache, by collapsed recency.

    Exact when ``window`` equals the associativity of a 2-way cache;
    otherwise a recency *window*: a hit is declared iff the block
    matches one of its set's previous ``window`` collapsed references.
    ``window = assoc`` only under-counts true LRU hits (k references
    back means at most k-1 distinct blocks in between); the calibrated
    ``window = 2 * assoc`` tracks distinct-block distance closely
    because roughly half the collapsed references repeat resident
    blocks.
    """
    n = len(blocks)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(set_idx, kind="stable")
    s = set_idx[order]
    b = blocks[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.logical_or(b[1:] != b[:-1], s[1:] != s[:-1], out=new[1:])
    rep = np.flatnonzero(new)
    cb = b[rep]
    cs = s[rep]
    m = len(rep)
    hit_rep = np.zeros(m, dtype=bool)
    # k = 1 cannot match (consecutive duplicates were collapsed away).
    for k in range(2, window + 1):
        if k >= m:
            break
        hit_rep[k:] |= (cb[k:] == cb[:-k]) & (cs[k:] == cs[:-k])
    hits_sorted = np.ones(n, dtype=bool)
    hits_sorted[rep] = hit_rep
    hits = np.empty(n, dtype=bool)
    hits[order] = hits_sorted
    return hits


def _partial_false_hits(set_idx: np.ndarray, ptags: np.ndarray) -> np.ndarray:
    """Per-access mask: an earlier access of this set had the same partial tag.

    D-NUCA sets evict so rarely on the shipped workloads (capacity
    outruns the measured footprint; compare ``real_evictions``) that
    every block ever inserted is effectively still resident.  A miss
    whose low-order tag bits match *any* earlier same-set block is
    therefore nominated by the ss-array and turns into a false hit:
    the multicast cannot declare the miss until the worst bank
    responds.  Low tag bits are far from uniformly random on real
    address streams, so the mask is computed from the stream itself
    rather than from a ``2**-bits`` birthday estimate.  Only
    meaningful where the caller's full-tag hit mask is False; real
    hits trivially match their own partial tag and must be masked out
    by the caller.
    """
    n = len(ptags)
    if n == 0:
        return np.zeros(0, dtype=bool)
    key = (set_idx.astype(np.int64) << 32) | ptags.astype(np.int64)
    order = np.argsort(key, kind="stable")
    k = key[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(k[1:], k[:-1], out=first[1:])
    out = np.empty(n, dtype=bool)
    out[order] = ~first
    return out


def _reuse_distance(blocks: np.ndarray) -> np.ndarray:
    """Stream distance to each access's previous access of its block.

    First occurrences get a distance larger than any stream length.
    """
    n = len(blocks)
    order = np.argsort(blocks, kind="stable")
    bs = blocks[order]
    prev = np.full(n, -(1 << 40), dtype=np.int64)
    same = bs[1:] == bs[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return np.arange(n) - prev


def _hits_since_fill(blocks: np.ndarray, hit: np.ndarray) -> np.ndarray:
    """Per-access count of this block's hits since its last miss."""
    n = len(blocks)
    order = np.argsort(blocks, kind="stable")
    miss_b = ~hit[order]
    idx = np.arange(n)
    # First occurrence of a block is a miss, so the accumulate resets
    # at block boundaries.
    last_miss = np.maximum.accumulate(np.where(miss_b, idx, -1))
    since = idx - last_miss
    out = np.empty(n, dtype=np.int64)
    out[order] = since
    return out


def _dirty_fraction(w_fill: float, w_touch: float, touches_per_fill: float) -> float:
    """P(victim dirty): dirty at fill, or written during residency."""
    clean = (1.0 - w_fill) * (1.0 - w_touch) ** max(0.0, touches_per_fill)
    return min(1.0, max(0.0, 1.0 - clean))


def _arrivals(
    gaps: np.ndarray, cpi: float, exposure: float, beyond: np.ndarray
) -> np.ndarray:
    """Approximate core-cycle arrival time of each trace reference.

    The core advances ``gap * cpi`` per reference plus the exposed
    share of each L1 miss's beyond-L1 latency — the same terms the
    closed-form cycle count sums, so the timeline is consistent with
    it (minus queueing feedback, which only spreads bursts out).
    """
    adv = gaps.astype(np.float64) * cpi
    adv += exposure * beyond
    c = np.cumsum(adv)
    return c - adv


def _port_wait(t: np.ndarray, occ: np.ndarray) -> np.ndarray:
    """Queueing wait per request on one serially-reusable port.

    The grant recursion ``start_i = max(t_i, start_{i-1} + occ_{i-1})``
    is a max-plus prefix scan: with ``c`` the exclusive cumsum of
    occupancies, ``start_i - c_i = max_{j<=i}(t_j - c_j)``.
    """
    if len(t) == 0:
        return t
    c = np.cumsum(occ) - occ
    u = np.maximum.accumulate(t - c)
    return u + c - t


def _banked_wait(
    t: np.ndarray, occ: np.ndarray, new_seg: np.ndarray
) -> np.ndarray:
    """Per-request wait when requests are partitioned into independent
    banks; ``new_seg`` marks the first request of each bank's
    (time-ordered, contiguous) segment."""
    if len(t) == 0:
        return t
    cs = np.cumsum(occ)
    excl = cs - occ
    # Within-segment exclusive cumsum: subtract the segment's start
    # value (excl is non-decreasing, so a running max propagates it).
    base = np.maximum.accumulate(np.where(new_seg, excl, -1.0))
    c = excl - base
    seg = np.cumsum(new_seg.astype(np.int64))
    big = (float(t[-1]) + float(cs[-1]) + 1.0) * seg
    u = np.maximum.accumulate(t - c + big)
    return np.maximum(u - big + c - t, 0.0)


# --- the engine ---


def estimate(
    config,
    benchmark: str,
    profile: BenchmarkProfile,
    trace: Trace,
    warmup_fraction: float,
    energy_model: Optional[ProcessorEnergyModel] = None,
) -> RunResult:
    """Compute one run result analytically (no per-reference replay)."""
    if config.faults is not None:
        raise ConfigurationError(
            "fault injection requires an exact engine (approx has no "
            "per-reference replay to inject into)"
        )
    registry = runtime_registry()
    registry.add("approx.cells")
    registry.add("approx.refs", len(trace))

    core = config.core
    l1 = _l1_spec()
    mem = MainMemory()

    addresses = np.asarray(trace.addresses, dtype=np.int64)
    gaps = np.asarray(trace.gaps, dtype=np.int64)
    writes = np.asarray(trace.writes, dtype=bool)
    n = len(addresses)
    m0 = int(n * warmup_fraction)  # same cut as Trace.split()
    n_refs = n - m0
    if n_refs <= 0:
        raise ConfigurationError("no measured references after warmup split")

    # --- L1 (exact, including the writeback stream) ---
    l1_sets = l1.capacity_bytes // l1.block_bytes // l1.associativity
    shift1 = l1.block_bytes.bit_length() - 1
    b1 = addresses & ~np.int64(l1.block_bytes - 1)
    # uint16 set indices take numpy's radix-sort path (the stable
    # argsort over the full trace dominates the engine's runtime).
    s1 = ((addresses >> shift1) & np.int64(l1_sets - 1)).astype(np.uint16)
    l1_hit, wb_pos, wb_block = _l1_pass(s1, b1, writes)

    instructions = int(gaps[m0:].sum())
    n_writes = int(writes[m0:].sum())
    n_reads = n_refs - n_writes
    l1_hits = int(l1_hit[m0:].sum())
    l1_misses = n_refs - l1_hits
    l1_fills = l1_misses
    n_l1_wb = int((wb_pos >= m0).sum())

    # --- the L2 stream: demand misses + writebacks, program order ---
    pos_d = np.flatnonzero(~l1_hit)
    kind = config.l2_kind
    exposure = profile.exposure
    mlp = core.memory_mlp_discount

    if kind == "base":
        l2s, l3s = _base_specs()
        block2 = l2s.block_bytes
        sets2 = l2s.capacity_bytes // block2 // l2s.associativity
        assoc2 = l2s.associativity
        geo = None
        dc = None
    elif kind == "nurapid":
        nc = config.nurapid
        geo = _nurapid_geometry(
            nc.n_dgroups, nc.capacity_bytes, nc.block_bytes,
            nc.associativity, nc.restricted_frames,
        )
        block2, sets2, assoc2 = nc.block_bytes, geo.sets, nc.associativity
        dc = None
    elif kind == "sa-nuca":
        nc = None
        geo = _nurapid_geometry(4, 8 * MB, 128, 8, None)
        block2, sets2, assoc2 = 128, geo.sets, 8
        dc = None
    elif kind == "dnuca":
        dc = config.dnuca
        geo = _dnuca_geometry(
            dc.capacity_bytes, dc.block_bytes, dc.associativity,
            dc.bank_bytes, dc.chain_length, dc.ss_partial_bits,
        )
        block2, sets2, assoc2 = dc.block_bytes, geo.sets, dc.associativity
    else:  # s-nuca
        dc = None
        geo = _dnuca_geometry(8 * MB, 128, 16, 64 * KB, 8, 7)
        block2, sets2, assoc2 = 128, geo.sets, 16

    mask2 = ~np.int64(block2 - 1)
    shift2 = block2.bit_length() - 1
    # Merge demand reads and writeback writes in program order; the
    # writeback of a fill follows the demand access of the same ref.
    key_pos = np.concatenate([pos_d, wb_pos])
    key_wb = np.concatenate(
        [np.zeros(len(pos_d), np.int8), np.ones(len(wb_pos), np.int8)]
    )
    ordm = np.lexsort((key_wb, key_pos))
    pos2 = key_pos[ordm]
    wbf = key_wb[ordm].astype(bool)
    b2 = np.concatenate([b1[pos_d], wb_block])[ordm] & mask2
    s2 = (b2 >> shift2) & np.int64(sets2 - 1)

    hit2 = _recency_hits(s2, b2, 2 * assoc2)
    meas = pos2 >= m0
    demand = ~wbf
    mdem = meas & demand
    mdem_hit = mdem & hit2
    mdem_miss = mdem & ~hit2
    l2_demand = int(mdem.sum())
    l2_demand_hits = int(mdem_hit.sum())
    l2_demand_misses = l2_demand - l2_demand_hits
    wb2_hits = int((meas & wbf & hit2).sum())
    l2_accesses = l2_demand + n_l1_wb
    l2_hits_total = l2_demand_hits + wb2_hits
    fills2 = l2_demand_misses
    mem_cycles = float(mem.transfer_cycles(block2))

    # Dirty evictions out of the L2 (estimated; feeds L3/memory writes
    # and eviction-read energy only).  Prewarmed/underfilled caches
    # evict clean dummies until distinct traffic exceeds the frame
    # count, so real dirty evictions only appear past that point.
    distinct2 = len(np.unique(b2))
    real_evictions = min(fills2, max(0, distinct2 - sets2 * assoc2))
    p2 = _dirty_fraction(0.0, n_l1_wb / max(1, l2_accesses), 1.0)
    l2_writebacks = int(round(p2 * real_evictions))

    dgroup_fractions: Dict[int, float] = {}
    lower_energy = 0.0
    stall = 0.0
    # Per-instruction cycle cost for the arrival timeline.
    cpi = (
        1.0 / profile.core_ipc
        + profile.branch_fraction * profile.mispredict_rate * core.mispredict_penalty
    )

    if kind == "base":
        # L3 sees the L2's demand misses (writeback misses do not
        # allocate; they go to memory).
        pos3 = np.flatnonzero(~hit2 & demand)
        sets3 = l3s.capacity_bytes // l3s.block_bytes // l3s.associativity
        b3 = b2[pos3]
        s3 = (b3 >> shift2) & np.int64(sets3 - 1)
        hit3 = _recency_hits(s3, b3, 2 * l3s.associativity)
        meas3 = meas[pos3]
        l3_demand = int(meas3.sum())
        l3_demand_hits = int((hit3 & meas3).sum())
        l3_demand_misses = l3_demand - l3_demand_hits
        fills3 = l3_demand_misses

        lat2 = float(l2s.latency_cycles)
        lat3 = float(l3s.latency_cycles)
        stall = lat2 * l2_demand_hits * exposure
        stall += (lat2 + lat3) * l3_demand_hits * exposure
        stall += (lat2 + lat3 + mem_cycles) * l3_demand_misses * exposure * mlp

        lower_energy = (
            l2_demand * l2s.read_energy_nj
            + (n_l1_wb + fills2) * l2s.write_energy_nj
            + l3_demand * l3s.read_energy_nj
            + (l2_writebacks + fills3) * l3s.write_energy_nj
        )
        l2_stats = {
            "accesses": float(l2_accesses),
            "hits": float(l2_hits_total),
            "misses": float(l2_accesses - l2_hits_total),
            "writebacks": float(l2_writebacks),
        }
    elif kind in ("nurapid", "sa-nuca"):
        G = geo.n_dgroups
        # Distance-placement steady state: fills land in the fastest
        # d-group and stale blocks demote, so a hit's group tracks its
        # block's reuse distance measured in d-group frame capacities.
        dist = _reuse_distance(b2)
        rho = distinct2 / max(1, len(b2))  # distinct blocks per ref
        frames = geo.frames_per_dgroup
        bands = np.cumsum([frames] * (G - 1)).astype(np.float64) / max(rho, 1e-9)
        group = np.searchsorted(bands, dist.astype(np.float64), side="left")
        mhit = hit2 & meas
        gh_all = np.bincount(group[mhit], minlength=G).astype(np.int64)
        gh_dem = np.bincount(group[mdem_hit], minlength=G).astype(np.int64)
        gh_wb = gh_all - gh_dem
        ideal = kind == "nurapid" and nc.ideal_uniform
        if ideal:
            hit_lat = np.full(G, float(geo.hit_latency(0)))
        else:
            hit_lat = np.array([float(geo.hit_latency(g)) for g in range(G)])
        miss_beyond = (geo.miss_latency() + mem_cycles) * mlp
        stall = float((gh_dem * hit_lat).sum()) * exposure
        stall += miss_beyond * l2_demand_misses * exposure
        if not ideal:
            # Single-port queueing (§2.3): every hit occupies the one
            # data port.  Dirty-eviction writebacks are issued at the
            # fill time — ``now`` plus the triggering miss's *full*
            # latency, while the core clock only advances by the
            # exposed share — so a memory miss with a dirty victim
            # parks the port busy far ahead of the core clock and
            # later demand hits wait behind it.
            dem_hit = demand & hit2
            beyond = np.zeros(n)
            beyond[pos2[dem_hit]] = hit_lat[group[dem_hit]]
            beyond[pos2[demand & ~hit2]] = miss_beyond
            arrive = _arrivals(gaps, cpi, exposure, beyond)
            full_beyond = np.zeros(n)
            full_beyond[pos2[dem_hit]] = hit_lat[group[dem_hit]]
            full_beyond[pos2[demand & ~hit2]] = geo.miss_latency() + mem_cycles
            hidx = np.flatnonzero(hit2)
            hpos = pos2[hidx]
            t = arrive[hpos] + np.where(wbf[hidx], full_beyond[hpos], 0.0)
            occ_g = np.array([float(geo.data_occupancy(g)) for g in range(G)])
            wait = _port_wait(t, occ_g[group[hidx]])
            wsel = demand[hidx] & meas[hidx]
            stall += exposure * float(wait[wsel].sum())
        dgroup_fractions = {
            int(g): float(c) / l2_accesses for g, c in enumerate(gh_all) if c
        }
        dg_read = np.array([g.read_energy_nj for g in geo.dgroups])
        dg_write = np.array([g.write_energy_nj for g in geo.dgroups])
        lower_energy = (
            geo.tag_energy_nj * l2_accesses
            + float((gh_dem * dg_read).sum())
            + float((gh_wb * dg_write).sum())
            + fills2 * geo.dgroups[0].write_energy_nj
        )
        slow_hits = float(gh_all[1:].sum())
        if kind == "sa-nuca":
            # Bubble data placement: prewarmed sets are always full,
            # so every fill demotes a block through each slower group.
            promotions = slow_hits
            demotions = float(fills2) * (G - 1)
            chain_nj = sum(
                geo.swap_energy_nj(g - 1, g) for g in range(1, G)
            )
            lower_energy += fills2 * chain_nj
        else:
            # NuRAPID's distance replacement lands fills on free or
            # prewarmed-dummy frames; real demotions are rare until
            # the fastest group fills with live blocks.
            if nc.promotion is not PromotionPolicy.DEMOTION_ONLY:
                promotions = slow_hits / max(1, nc.promotion_hysteresis)
            else:
                promotions = 0.0
            demotions = 0.0
        if G > 1 and promotions:
            swap01 = geo.swap_energy_nj(0, 1) + geo.swap_energy_nj(1, 0)
            lower_energy += promotions * swap01
        l2_stats = {
            "accesses": float(l2_accesses),
            "hits": float(l2_hits_total),
            "misses": float(l2_accesses - l2_hits_total),
            "fills": float(fills2),
            "evictions": float(fills2),
            "writebacks": float(l2_writebacks),
            "dgroup_accesses": float(
                l2_hits_total + fills2 + 2.0 * (promotions + demotions)
            ),
            "promotions": promotions,
            "demotions": demotions,
        }
    elif kind == "s-nuca":
        bank_lat = np.array([b.latency_cycles for b in geo.banks], dtype=np.float64)
        bank_row = np.array([b.row for b in geo.banks], dtype=np.int64)
        bi = (s2 % geo.n_banks).astype(np.int64)
        lat_acc = bank_lat[bi]
        stall = float(lat_acc[mdem_hit].sum()) * exposure
        stall += float((lat_acc[mdem_miss] + mem_cycles).sum()) * exposure * mlp
        rows = bank_row[bi]
        mhit = hit2 & meas
        n_rows = int(bank_row.max()) + 1
        gh_all = np.bincount(rows[mhit], minlength=n_rows).astype(np.int64)
        dgroup_fractions = {
            int(g): float(c) / l2_accesses for g, c in enumerate(gh_all) if c
        }
        probe_c = np.array([b.probe_energy_nj for b in geo.banks])
        read_c = np.array([b.read_energy_nj for b in geo.banks])
        write_c = np.array([b.write_energy_nj for b in geo.banks])
        mmiss_all = meas & ~hit2
        mean_write = float(write_c[bi[meas]].mean()) if meas.any() else 0.0
        mean_read = float(read_c[bi[meas]].mean()) if meas.any() else 0.0
        lower_energy = (
            float(read_c[bi[mdem_hit]].sum())             # demand hit reads
            + float(write_c[bi[meas & wbf & hit2]].sum())  # writeback hit writes
            + float(probe_c[bi[mmiss_all]].sum())          # miss tag probes
            + fills2 * mean_write                          # fills
            + l2_writebacks * mean_read                    # dirty evictions
        )
        l2_stats = {
            "accesses": float(l2_accesses),
            "hits": float(l2_hits_total),
            "misses": float(l2_accesses - l2_hits_total),
            "fills": float(fills2),
            "evictions": float(fills2),
            "writebacks": float(l2_writebacks),
            "dgroup_accesses": float(l2_hits_total + fills2),
        }
    else:  # dnuca
        L = geo.chain_length
        cols = geo.cols
        lat_t = np.array(
            [[geo.chain_bank(c, lv).latency_cycles for c in range(cols)]
             for lv in range(L)],
            dtype=np.float64,
        )
        probe_t = np.array(
            [[geo.chain_bank(c, lv).probe_energy_nj for c in range(cols)]
             for lv in range(L)]
        )
        read_t = np.array(
            [[geo.chain_bank(c, lv).read_energy_nj for c in range(cols)]
             for lv in range(L)]
        )
        write_t = np.array(
            [[geo.chain_bank(c, lv).write_energy_nj for c in range(cols)]
             for lv in range(L)]
        )
        swap_t = np.array(
            [[geo.chain_bank(c, lv).swap_energy_nj for c in range(cols)]
             for lv in range(L)]
        )
        chain = (s2 % cols).astype(np.int64)
        # Bubble promotion: tail-inserted blocks climb one bank per
        # hit, so the h-th hit since fill lands ``h - 1`` banks up
        # from the insertion point.
        h_ord = _hits_since_fill(b2, hit2)
        start = L - 1 if dc.tail_insertion else 0
        level = np.clip(start - (h_ord - 1), 0, L - 1)
        if not dc.promote_on_hit:
            level = np.full(len(b2), start, dtype=np.int64)
        mhit = hit2 & meas
        gh_all = np.bincount(level[mhit], minlength=L).astype(np.int64)
        gh_dem = np.bincount(level[mdem_hit], minlength=L).astype(np.int64)
        ss_lat = float(geo.ss_latency_cycles)
        policy = dc.policy.value
        hit_lats = lat_t[level[mdem_hit], chain[mdem_hit]]
        if policy == "ss-performance":
            hit_beyond = hit_lats
            # Early misses pay only the ss-array lookup, but a
            # partial-tag collision with a resident block (a "false
            # hit") forces the multicast to wait for the worst bank in
            # the chain before the miss can be declared.
            pmask = (1 << dc.ss_partial_bits) - 1
            ptag = (
                b2 >> np.int64(shift2 + sets2.bit_length() - 1)
            ) & np.int64(pmask)
            false2 = _partial_false_hits(s2, ptag)
            # Prewarm dummies stay resident for the whole run and
            # contribute one partial tag per way to every set (the
            # dummy at way ``p`` of set ``i`` has tag ``T0 + p`` after
            # the exact division by n_sets).
            t0 = DNUCACache.PREWARM_BASE // block2 // sets2
            dummy_ptags = np.unique(
                np.array([(t0 + p) & pmask for p in range(assoc2)], dtype=np.int64)
            )
            false2 |= np.isin(ptag, dummy_ptags)
            worst_resp = lat_t.max(axis=0)
            miss_lat2 = np.where(false2, worst_resp[chain], ss_lat)
            miss_beyond = ss_lat
        elif policy == "ss-energy":
            hit_beyond = ss_lat + hit_lats
            miss_beyond = ss_lat
        else:  # incremental: probe the chain nearest-first
            cum = np.cumsum(lat_t, axis=0)
            hit_beyond = cum[level[mdem_hit], chain[mdem_hit]]
            miss_beyond = float(cum[-1].mean())
        stall = float(hit_beyond.sum()) * exposure
        if policy == "ss-performance":
            stall += (
                float((miss_lat2[mdem_miss] + mem_cycles).sum())
                * exposure
                * mlp
            )
        else:
            stall += (
                (miss_beyond + mem_cycles) * l2_demand_misses * exposure * mlp
            )
        if policy == "ss-performance":
            # Multicast occupies every bank of the chain on every
            # access; a hit's latency includes the queueing wait at
            # its actual bank.  (The other policies probe far fewer
            # banks; their residual waits are left to the tolerance.)
            occ_t = np.array(
                [[float(geo.chain_bank(c, lv).occupancy_cycles)
                  for c in range(cols)] for lv in range(L)]
            )
            dem_hit = demand & hit2
            beyond = np.zeros(n)
            beyond[pos2[dem_hit]] = lat_t[level[dem_hit], chain[dem_hit]]
            dmiss = demand & ~hit2
            beyond[pos2[dmiss]] = (miss_lat2[dmiss] + mem_cycles) * mlp
            arrive = _arrivals(gaps, cpi, exposure, beyond)
            full_beyond = np.zeros(n)
            full_beyond[pos2[dem_hit]] = lat_t[level[dem_hit], chain[dem_hit]]
            full_beyond[pos2[dmiss]] = miss_lat2[dmiss] + mem_cycles
            # Writebacks multicast at fill time (now + full latency).
            t_all = arrive[pos2] + np.where(wbf, full_beyond[pos2], 0.0)
            ordc = np.argsort(chain.astype(np.uint8), kind="stable")
            tc = t_all[ordc]
            chc = chain[ordc]
            new_seg = np.empty(len(tc), dtype=bool)
            new_seg[0] = True
            new_seg[1:] = chc[1:] != chc[:-1]
            lv_c = level[ordc]
            hitc = hit2[ordc]
            hit_wait = np.zeros(len(b2))
            worst_dyn = np.zeros(len(b2))
            for lv in range(L):
                occ_v = occ_t[lv, chc]
                if dc.promote_on_hit:
                    # A hit at level > 0 swaps with the next bank up:
                    # the source bank is occupied again for the read,
                    # the destination bank for the write.
                    occ_v = occ_v.copy()
                    if lv > 0:
                        occ_v[hitc & (lv_c == lv)] *= 2.0
                    occ_v[hitc & (lv_c == lv + 1)] *= 2.0
                w = _banked_wait(tc, occ_v, new_seg)
                sel = lv_c == lv
                hit_wait[ordc[sel]] = w[sel]
                resp = np.zeros(len(b2))
                resp[ordc] = w + lat_t[lv, chc]
                np.maximum(worst_dyn, resp, out=worst_dyn)
            stall += exposure * float(hit_wait[dem_hit & meas].sum())
            # A false hit's miss declaration waits for the *worst* bank
            # response, queueing wait included; the static
            # ``worst_resp`` charged above misses the wait portion.
            fsel = false2 & mdem_miss
            stall += (
                exposure
                * mlp
                * float(
                    np.maximum(worst_dyn[fsel] - worst_resp[chain[fsel]], 0.0).sum()
                )
            )
        dgroup_fractions = {
            int(g): float(c) / l2_accesses for g, c in enumerate(gh_all) if c
        }
        # Energy: every access pays the ss-array probe (except the
        # incremental policy); ss-performance multicasts a tag probe
        # to all banks of the chain, hits upgrade the actual bank's
        # probe to a full read.
        probe_chain = probe_t.sum(axis=0)
        lower_energy = 0.0
        if policy != "incremental":
            lower_energy += geo.ss_energy_nj * l2_accesses
        if policy == "ss-performance":
            lower_energy += float(probe_chain[chain[meas]].sum())
            lower_energy += float(
                (read_t - probe_t)[level[mhit], chain[mhit]].sum()
            )
        else:
            # ss-energy probes only true candidates (usually just the
            # hit bank); incremental walks the whole chain on a miss.
            lower_energy += float(read_t[level[mhit], chain[mhit]].sum())
            if policy == "incremental":
                lower_energy += float(probe_chain[chain[meas & ~hit2]].sum())
        tail = L - 1 if dc.tail_insertion else 0
        lower_energy += fills2 * float(write_t[tail].mean())
        promotions = float(gh_all[1:].sum()) if dc.promote_on_hit else 0.0
        lower_energy += promotions * 2.0 * float(swap_t.mean())
        l2_stats = {
            "accesses": float(l2_accesses),
            "hits": float(l2_hits_total),
            "misses": float(l2_accesses - l2_hits_total),
            "fills": float(fills2),
            "evictions": float(fills2),
            "writebacks": float(l2_writebacks),
            "dgroup_accesses": float(l2_hits_total + fills2),
            "promotions": promotions,
        }

    # --- core timing (closed form) ---
    t_cycles = instructions / profile.core_ipc
    p_cycles = (
        instructions
        * profile.branch_fraction
        * profile.mispredict_rate
        * core.mispredict_penalty
    )
    cycles = t_cycles + p_cycles + stall

    # --- energy ---
    l1_energy = (
        n_reads * l1.read_energy_nj
        + (n_writes + l1_fills) * l1.write_energy_nj
    )
    model = energy_model if energy_model is not None else ProcessorEnergyModel()

    extra = dict(l2_stats)
    extra["mshr_full_stalls"] = 0.0
    extra["stall_cycles"] = stall
    extra["branch_penalty_cycles"] = p_cycles
    extra["memory_accesses"] = float(n_refs)

    return RunResult(
        benchmark=benchmark,
        config_name=config.name,
        instructions=instructions,
        cycles=cycles,
        l2_accesses=int(l2_stats.get("accesses", 0)),
        l2_hits=int(l2_stats.get("hits", 0)),
        l2_misses=int(l2_stats.get("misses", 0)),
        dgroup_fractions=dgroup_fractions,
        l1_energy_nj=l1_energy,
        lower_energy_nj=lower_energy,
        core_energy_nj=model.core_energy_nj(instructions, cycles),
        stats=extra,
        telemetry=None,
    )

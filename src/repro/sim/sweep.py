"""Parameter-sweep utility over system configurations.

A thin declarative layer used by the design-space example and handy
for one-off studies: name a few axes (each a list of SystemConfig
factories or values), take their cross product, run each point over a
benchmark list with shared traces, and collect a tidy result grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.sim.config import SystemConfig
from repro.sim.driver import run_benchmark
from repro.sim.results import RunResult
from repro.workloads.spec2k import get_benchmark
from repro.workloads.trace import Trace
from repro.workloads.tracegen import generate_trace


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a name and its candidate values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")


@dataclass
class SweepPoint:
    """One point of the cross product with its per-benchmark results."""

    coordinates: Dict[str, object]
    config: SystemConfig
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def mean_ipc(self) -> float:
        if not self.runs:
            raise ConfigurationError("point has no runs")
        return sum(r.ipc for r in self.runs.values()) / len(self.runs)

    def mean_relative(self, base: "SweepPoint") -> float:
        shared = [b for b in self.runs if b in base.runs]
        if not shared:
            raise ConfigurationError("no shared benchmarks with base point")
        return sum(self.runs[b].ipc / base.runs[b].ipc for b in shared) / len(shared)


class Sweep:
    """Cross-product sweep runner with shared traces."""

    def __init__(
        self,
        axes: Sequence[SweepAxis],
        build: Callable[..., SystemConfig],
        benchmarks: Iterable[str],
        n_references: int = 200_000,
        seed: int = 1,
        warmup_fraction: float = 0.4,
    ) -> None:
        if not axes:
            raise ConfigurationError("sweep needs at least one axis")
        self.axes = list(axes)
        self.build = build
        self.benchmarks = list(benchmarks)
        if not self.benchmarks:
            raise ConfigurationError("sweep needs at least one benchmark")
        self.n_references = n_references
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self._traces: Dict[str, Trace] = {}

    def _trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            self._traces[benchmark] = generate_trace(
                get_benchmark(benchmark), self.n_references, seed=self.seed
            )
        return self._traces[benchmark]

    def points(self) -> List[SweepPoint]:
        """The un-run cross product (for inspection or custom driving)."""
        names = [axis.name for axis in self.axes]
        result = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            coordinates = dict(zip(names, combo))
            config = self.build(**coordinates)
            if not isinstance(config, SystemConfig):
                raise ConfigurationError("build() must return a SystemConfig")
            result.append(SweepPoint(coordinates=coordinates, config=config))
        return result

    def run(self) -> List[SweepPoint]:
        """Run every point over every benchmark; returns filled points."""
        points = self.points()
        for point in points:
            for benchmark in self.benchmarks:
                point.runs[benchmark] = run_benchmark(
                    point.config,
                    benchmark,
                    trace=self._trace(benchmark),
                    warmup_fraction=self.warmup_fraction,
                    seed=self.seed,
                )
        return points


def tabulate(points: Sequence[SweepPoint], metric: Callable[[SweepPoint], float]) -> str:
    """Render sweep results as an aligned text table."""
    if not points:
        raise ConfigurationError("nothing to tabulate")
    names = list(points[0].coordinates)
    header = "  ".join(f"{n:<16}" for n in names) + "  metric"
    lines = [header]
    for point in points:
        cells = "  ".join(f"{str(point.coordinates[n]):<16}" for n in names)
        lines.append(f"{cells}  {metric(point):.4f}")
    return "\n".join(lines)
